//! Free functions over `&[f64]` slices.
//!
//! These helpers are used pervasively by the clustering and metric crates
//! where embedding vectors are plain slices rather than [`crate::Matrix`]
//! rows.

/// Dot product of two equal-length slices.
///
/// The loop is unrolled by four but keeps one serial accumulator chain
/// in ascending index order — the exact operation sequence of the plain
/// fold — so results stay bit-identical to the pre-unroll version that
/// the golden fixtures pin.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let n = a.len();
    let (a, b) = (&a[..n], &b[..n]);
    let quads = n & !3;
    let mut acc = 0.0;
    let mut i = 0;
    while i < quads {
        acc += a[i] * b[i];
        acc += a[i + 1] * b[i + 1];
        acc += a[i + 2] * b[i + 2];
        acc += a[i + 3] * b[i + 3];
        i += 4;
    }
    for j in quads..n {
        acc += a[j] * b[j];
    }
    acc
}

/// ℓ2 norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Squared Euclidean distance (avoids the final `sqrt`).
///
/// Unrolled by four with a single serial accumulator chain in ascending
/// index order, matching the plain fold bit-for-bit (see [`dot`]).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean_sq length mismatch");
    let n = a.len();
    let (a, b) = (&a[..n], &b[..n]);
    let quads = n & !3;
    let mut acc = 0.0;
    let mut i = 0;
    while i < quads {
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        acc += d0 * d0;
        acc += d1 * d1;
        acc += d2 * d2;
        acc += d3 * d3;
        i += 4;
    }
    for j in quads..n {
        let d = a[j] - b[j];
        acc += d * d;
    }
    acc
}

/// Cosine similarity in `[-1, 1]`; returns `0.0` when either vector is
/// (numerically) zero.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Cosine distance `1 - cosine_similarity`, in `[0, 2]`.
///
/// This is the pairwise distance the paper feeds to MDS (§V-A).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    1.0 - cosine_similarity(a, b)
}

/// `out += alpha * x`, element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(out: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(out.len(), x.len(), "axpy length mismatch");
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o += alpha * v;
    }
}

/// Scales a slice in place.
pub fn scale(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn std_dev(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
}

/// Index of the maximum element; `None` for an empty slice. Ties resolve to
/// the first maximum.
pub fn argmax(v: &[f64]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x > v[best] {
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum element; `None` for an empty slice. Ties resolve to
/// the first minimum.
pub fn argmin(v: &[f64]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let mut best = 0;
    for (i, &x) in v.iter().enumerate().skip(1) {
        if x < v[best] {
            best = i;
        }
    }
    Some(best)
}

/// Normalizes a non-negative weight vector into a probability distribution.
///
/// Returns `None` if the sum is not positive and finite.
pub fn normalize_probs(weights: &[f64]) -> Option<Vec<f64>> {
    let total: f64 = weights.iter().sum();
    if !(total.is_finite() && total > 0.0) {
        return None;
    }
    Some(weights.iter().map(|w| w / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_euclidean_known_values() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn cosine_identical_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 5.0]).abs() < 1e-12);
        assert!((cosine_distance(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_scale_mean_std() {
        let mut out = vec![1.0, 1.0];
        axpy(&mut out, 2.0, &[1.0, 2.0]);
        assert_eq!(out, vec![3.0, 5.0]);
        scale(&mut out, 0.5);
        assert_eq!(out, vec![1.5, 2.5]);
        assert_eq!(mean(&out), 2.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn argmax_argmin_ties_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmin(&[2.0, -1.0, -1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn normalize_probs_valid_and_invalid() {
        let p = normalize_probs(&[1.0, 3.0]).unwrap();
        assert!((p[0] - 0.25).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
        assert!(normalize_probs(&[0.0, 0.0]).is_none());
        assert!(normalize_probs(&[f64::INFINITY]).is_none());
    }
}
