//! Row-major dense matrix of `f64`.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// The matrix owns its storage as a flat `Vec<f64>` of length
/// `rows * cols`. Element `(r, c)` lives at index `r * cols + c`.
///
/// # Example
///
/// ```
/// use fis_linalg::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>9.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Parallel [`Matrix::from_fn`] for pure element functions: rows are
    /// filled concurrently across the [`fis_parallel`] thread budget.
    ///
    /// Each element is still produced by exactly one `f(r, c)` call, so
    /// the result is identical to `from_fn` for any thread count.
    pub fn par_from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let mut m = Self::zeros(rows, cols);
        par_rows_mut(&mut m.data, cols, par_min_rows(cols), |r, row| {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = f(r, c);
            }
        });
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix taking ownership of a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// Output rows are computed in parallel across the [`fis_parallel`]
    /// thread budget when the product is large enough. The blocked kernel
    /// walks `k` in quads with a register-strip inner loop over `j`, but
    /// every output element still receives its additions in ascending `k`
    /// with the same zero-skip as the naive i-k-j loop, so results are
    /// bit-identical to [`Matrix::matmul_naive`] for any thread count.
    /// Set `FIS_MATMUL_NAIVE=1` to force the naive reference kernels.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        if force_naive_kernels() {
            return self.matmul_naive(rhs);
        }
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let min_rows = par_min_rows(self.cols * rhs.cols);
        let out_cols = rhs.cols;
        par_rows_mut(&mut out.data, out_cols, min_rows, |i, out_row| {
            mm_row_kernel(
                &self.data[i * self.cols..(i + 1) * self.cols],
                &rhs.data,
                out_cols,
                out_row,
            );
        });
        out
    }

    /// Naive i-k-j reference for [`Matrix::matmul`] (the pre-blocking
    /// kernel, kept as the bit-for-bit determinism reference).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let min_rows = par_min_rows(self.cols * rhs.cols);
        let out_cols = rhs.cols;
        par_rows_mut(&mut out.data, out_cols, min_rows, |i, out_row| {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * out_cols..(k + 1) * out_cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// Matrix product `self^T * rhs` without materializing the transpose.
    ///
    /// The blocked kernel processes a strip of output rows per pass so
    /// the strided column reads of `self` become one contiguous segment
    /// load per `k`; per output element the additions still run in
    /// ascending `k` with the naive zero-skip, so the result is
    /// bit-identical to [`Matrix::t_matmul_naive`] for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        if force_naive_kernels() {
            return self.t_matmul_naive(rhs);
        }
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let min_rows = par_min_rows(self.rows * rhs.cols);
        let out_cols = rhs.cols;
        // Strip of output rows small enough that the strip plus one rhs
        // row stays L1-resident while we stream over k.
        const ROW_STRIP: usize = 8;
        fis_parallel::par_row_chunks_mut(&mut out.data, out_cols, min_rows, |first_row, chunk| {
            for (s, strip) in chunk.chunks_mut(ROW_STRIP * out_cols).enumerate() {
                let r0 = first_row + s * ROW_STRIP;
                let nr = strip.len() / out_cols;
                for k in 0..self.rows {
                    let a_seg = &self.data[k * self.cols + r0..k * self.cols + r0 + nr];
                    let b_row = &rhs.data[k * out_cols..(k + 1) * out_cols];
                    for (i, &a) in a_seg.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let out_row = &mut strip[i * out_cols..(i + 1) * out_cols];
                        for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += a * b;
                        }
                    }
                }
            }
        });
        out
    }

    /// Naive strided reference for [`Matrix::t_matmul`] (the pre-blocking
    /// kernel, kept as the bit-for-bit determinism reference).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn t_matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let min_rows = par_min_rows(self.rows * rhs.cols);
        let out_cols = rhs.cols;
        par_rows_mut(&mut out.data, out_cols, min_rows, |i, out_row| {
            for k in 0..self.rows {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * out_cols..(k + 1) * out_cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// Matrix product `self * rhs^T` without materializing the transpose.
    ///
    /// The blocked kernel computes four output columns at a time with
    /// independent accumulators sharing each `self` row load; every
    /// accumulator is still one serial ascending-`k` chain, so the result
    /// is bit-identical to [`Matrix::matmul_t_naive`] for any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        if force_naive_kernels() {
            return self.matmul_t_naive(rhs);
        }
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let min_rows = par_min_rows(self.cols * rhs.rows);
        let out_cols = rhs.rows;
        par_rows_mut(&mut out.data, out_cols, min_rows, |i, out_row| {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let n = a_row.len();
            let j_quads = out_cols & !3;
            let mut j = 0;
            while j < j_quads {
                let b0 = &rhs.data[j * n..(j + 1) * n];
                let b1 = &rhs.data[(j + 1) * n..(j + 2) * n];
                let b2 = &rhs.data[(j + 2) * n..(j + 3) * n];
                let b3 = &rhs.data[(j + 3) * n..(j + 4) * n];
                let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0, 0.0, 0.0, 0.0);
                for k in 0..n {
                    let a = a_row[k];
                    acc0 += a * b0[k];
                    acc1 += a * b1[k];
                    acc2 += a * b2[k];
                    acc3 += a * b3[k];
                }
                out_row[j] = acc0;
                out_row[j + 1] = acc1;
                out_row[j + 2] = acc2;
                out_row[j + 3] = acc3;
                j += 4;
            }
            for (jj, o) in out_row.iter_mut().enumerate().skip(j_quads) {
                let b_row = &rhs.data[jj * n..(jj + 1) * n];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        out
    }

    /// Naive per-element reference for [`Matrix::matmul_t`] (the
    /// pre-blocking kernel, kept as the bit-for-bit determinism
    /// reference).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_t_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let min_rows = par_min_rows(self.cols * rhs.rows);
        let out_cols = rhs.rows;
        par_rows_mut(&mut out.data, out_cols, min_rows, |i, out_row| {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        });
        out
    }

    /// Returns the transpose as a new matrix.
    ///
    /// Copies 8x8 tiles so both the source and destination walk whole
    /// cache lines instead of one striding per element. A pure copy:
    /// trivially bit-identical to the per-element version.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        const TILE: usize = 8;
        for r0 in (0..self.rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(self.rows);
            for c0 in (0..self.cols).step_by(TILE) {
                let c1 = (c0 + TILE).min(self.cols);
                for r in r0..r1 {
                    for c in c0..c1 {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&x| f(x)).collect(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every element by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += alpha * rhs` (the BLAS `axpy` on whole matrices).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Frobenius norm (`sqrt` of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// ℓ2 norm of each row.
    pub fn row_norms(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect()
    }

    /// Normalizes each row to unit ℓ2 norm, leaving all-zero rows untouched.
    ///
    /// Rows with norm below `1e-12` are left as-is to avoid amplifying noise.
    pub fn l2_normalize_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_mut(r);
            let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for x in row {
                    *x /= norm;
                }
            }
        }
        out
    }

    /// Horizontally concatenates `self` and `rhs` (same row count).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat row count mismatch");
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertically concatenates `self` and `rhs` (same column count).
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "vcat column count mismatch");
        let mut data = Vec::with_capacity(self.data.len() + rhs.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix::from_vec(self.rows + rhs.rows, self.cols, data)
    }

    /// Gathers the given rows into a new matrix (rows may repeat).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Maximum absolute difference against another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True if every element is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Whether `FIS_MATMUL_NAIVE=1` forces the naive reference kernels.
///
/// Read once and cached: the flag is a process-lifetime A/B switch for
/// verifying the blocked kernels, not a per-call toggle.
fn force_naive_kernels() -> bool {
    use std::sync::OnceLock;
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var("FIS_MATMUL_NAIVE").as_deref() == Ok("1"))
}

/// One output row of `matmul`: `out_row += a_row * b` with `k` walked in
/// quads.
///
/// When all four `a` coefficients of a quad are nonzero, the unrolled
/// strip adds their four contributions per output element in one pass —
/// the same four additions, in the same ascending-`k` order, the naive
/// loop would perform, so the result is bit-identical. Any quad holding
/// a zero falls back to the per-`k` loop because *skipping* a zero
/// coefficient is observable: `0.0 * inf` is NaN and `-0.0 * x` can
/// flip the sign of a `-0.0` accumulator, so skipped terms must stay
/// skipped exactly as the naive kernel skips them.
fn mm_row_kernel(a_row: &[f64], b: &[f64], out_cols: usize, out_row: &mut [f64]) {
    let k_quads = a_row.len() & !3;
    let mut k = 0;
    while k < k_quads {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
            let b0 = &b[k * out_cols..(k + 1) * out_cols];
            let b1 = &b[(k + 1) * out_cols..(k + 2) * out_cols];
            let b2 = &b[(k + 2) * out_cols..(k + 3) * out_cols];
            let b3 = &b[(k + 3) * out_cols..(k + 4) * out_cols];
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut acc = *o;
                acc += a0 * b0[j];
                acc += a1 * b1[j];
                acc += a2 * b2[j];
                acc += a3 * b3[j];
                *o = acc;
            }
        } else {
            for (kk, &a) in a_row.iter().enumerate().take(k + 4).skip(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = &b[kk * out_cols..(kk + 1) * out_cols];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * bv;
                }
            }
        }
        k += 4;
    }
    for (kk, &a) in a_row.iter().enumerate().skip(k_quads) {
        if a == 0.0 {
            continue;
        }
        let b_row = &b[kk * out_cols..(kk + 1) * out_cols];
        for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
            *o += a * bv;
        }
    }
}

/// Minimum rows per thread so a parallel region amortizes its spawn
/// cost: aim for at least ~64k flops of work per worker.
fn par_min_rows(work_per_row: usize) -> usize {
    (65_536 / work_per_row.max(1)).max(1)
}

/// Runs `f(row_index, row_slice)` over every row of a flat row-major
/// buffer, splitting rows across the thread budget.
fn par_rows_mut(
    data: &mut [f64],
    cols: usize,
    min_rows_per_thread: usize,
    f: impl Fn(usize, &mut [f64]) + Sync,
) {
    fis_parallel::par_row_chunks_mut(data, cols, min_rows_per_thread, |first_row, chunk| {
        for (k, row) in chunk.chunks_mut(cols).enumerate() {
            f(first_row + k, row);
        }
    });
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_and_indexing() {
        let m = Matrix::from_fn(2, 3, |r, c| (10 * r + c) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f64 + 1.0);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.max_abs_diff(&slow) < 1e-12);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(4, 2, |r, c| (r * c) as f64 - 1.0);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, 0.25]]);
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[&[2.0, 1.0], &[3.0, 1.0]])
        );
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0], &[6.0, 8.0]]));
    }

    #[test]
    fn l2_normalize_rows_unit_norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0], &[1.0, 0.0]]);
        let n = a.l2_normalize_rows();
        let norms = n.row_norms();
        assert!((norms[0] - 1.0).abs() < 1e-12);
        assert_eq!(norms[1], 0.0); // zero row untouched
        assert!((norms[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hcat_vcat_shapes_and_content() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let h = a.hcat(&b);
        assert_eq!(h, Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        let v = a.vcat(&b);
        assert_eq!(v, Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
    }

    #[test]
    fn gather_rows_repeats_allowed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g = a.gather_rows(&[1, 1, 0]);
        assert_eq!(
            g,
            Matrix::from_rows(&[&[3.0, 4.0], &[3.0, 4.0], &[1.0, 2.0]])
        );
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_mean() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn operators_add_sub_neg() {
        let a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!(&a + &b, Matrix::filled(2, 2, 4.0));
        assert_eq!(&a - &b, Matrix::filled(2, 2, 2.0));
        assert_eq!(-&b, Matrix::filled(2, 2, -1.0));
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, Matrix::filled(2, 2, 4.0));
    }

    #[test]
    fn parallel_products_bit_identical_to_serial() {
        // Large enough to cross the parallel threshold. Serial reference
        // is obtained by forcing a budget of one thread.
        let a = Matrix::from_fn(120, 90, |r, c| ((r * 31 + c * 17) % 97) as f64 / 7.0 - 3.0);
        let b = Matrix::from_fn(90, 110, |r, c| ((r * 13 + c * 29) % 89) as f64 / 5.0 - 4.0);
        fis_parallel::set_thread_budget(1);
        let serial = (a.matmul(&b), a.t_matmul(&a), a.matmul_t(&a));
        fis_parallel::set_thread_budget(4);
        let parallel = (a.matmul(&b), a.t_matmul(&a), a.matmul_t(&a));
        fis_parallel::set_thread_budget(0);
        // Bit-identical, not merely close.
        assert_eq!(serial.0.as_slice(), parallel.0.as_slice());
        assert_eq!(serial.1.as_slice(), parallel.1.as_slice());
        assert_eq!(serial.2.as_slice(), parallel.2.as_slice());
    }

    /// Dense-ish values with zeros, `-0.0`, and a non-multiple-of-4 inner
    /// dimension: every quad fast-path and fallback branch gets exercised.
    fn adversarial(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = r * 31 + c * 17 + salt;
            match h % 11 {
                0 => 0.0,
                1 => -0.0,
                _ => (h % 97) as f64 / 7.0 - 6.0,
            }
        })
    }

    #[test]
    fn blocked_kernels_bit_identical_to_naive() {
        // Shapes chosen so k and j are NOT multiples of 4 (tail paths) and
        // cross the parallel threshold at least once.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (13, 9, 11), (70, 65, 66)] {
            let a = adversarial(m, k, 0);
            let b = adversarial(k, n, 3);
            let bt = adversarial(n, k, 5);
            let at = adversarial(k, m, 7);
            assert_eq!(
                a.matmul(&b).as_slice(),
                a.matmul_naive(&b).as_slice(),
                "matmul {m}x{k}*{k}x{n}"
            );
            assert_eq!(
                at.t_matmul(&b).as_slice(),
                at.t_matmul_naive(&b).as_slice(),
                "t_matmul ({k}x{m})^T*{k}x{n}"
            );
            assert_eq!(
                a.matmul_t(&bt).as_slice(),
                a.matmul_t_naive(&bt).as_slice(),
                "matmul_t {m}x{k}*({n}x{k})^T"
            );
            let t_naive = Matrix::from_fn(a.cols(), a.rows(), |r, c| a[(c, r)]);
            assert_eq!(a.transpose().as_slice(), t_naive.as_slice());
        }
    }

    #[test]
    fn blocked_kernels_preserve_nonfinite_semantics() {
        // A zero coefficient must SKIP its b-row: 0.0 * inf would be NaN.
        let mut a = adversarial(6, 9, 1);
        a[(0, 4)] = 0.0;
        a[(1, 0)] = f64::INFINITY;
        a[(2, 3)] = f64::NAN;
        let mut b = adversarial(9, 6, 2);
        b[(4, 0)] = f64::INFINITY;
        b[(4, 1)] = f64::NAN;
        let fast = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        // NaN != NaN, so compare bit patterns.
        let bits = |m: &Matrix| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fast), bits(&naive));
        assert_eq!(bits(&a.t_matmul(&a)), bits(&a.t_matmul_naive(&a)));
        assert_eq!(bits(&b.t_matmul(&b)), bits(&b.t_matmul_naive(&b)));
        let bt = b.transpose();
        assert_eq!(bits(&a.matmul_t(&bt)), bits(&a.matmul_t_naive(&bt)));
    }

    #[test]
    fn negative_zero_accumulators_match_naive() {
        // out starts at +0.0; products of -0.0 rows exercise signed-zero
        // accumulation in both kernels.
        let a = Matrix::from_fn(5, 8, |r, c| if (r + c) % 2 == 0 { -0.0 } else { -1.0 });
        let b = Matrix::from_fn(8, 5, |r, c| if (r * c) % 3 == 0 { 0.0 } else { 2.0 });
        let bits = |m: &Matrix| m.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.matmul(&b)), bits(&a.matmul_naive(&b)));
    }

    #[test]
    fn par_from_fn_matches_from_fn() {
        let f = |r: usize, c: usize| (r * 1000 + c) as f64 * 0.5;
        let serial = Matrix::from_fn(200, 40, f);
        let parallel = Matrix::par_from_fn(200, 40, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = Matrix::zeros(1, 2);
        assert!(a.is_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }
}
