//! Numerically stable scalar and slice-level nonlinearities.

/// Logistic sigmoid `1 / (1 + e^{-x})`, stable for large `|x|`.
///
/// # Example
///
/// ```
/// let y = fis_linalg::func::sigmoid(0.0);
/// assert!((y - 0.5).abs() < 1e-12);
/// ```
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// `log(sigmoid(x))` computed without overflow or catastrophic cancellation.
///
/// Used by the negative-sampling loss `−log σ(r_i·r_j)`.
pub fn log_sigmoid(x: f64) -> f64 {
    // log σ(x) = -log(1 + e^{-x}) = -softplus(-x)
    -softplus(-x)
}

/// Softplus `log(1 + e^x)`, stable for large `|x|`.
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Rectified linear unit.
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// Derivative of [`relu`]; by convention `relu'(0) = 0`.
pub fn relu_grad(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Log-sum-exp of a slice, stable under large magnitudes.
///
/// Returns negative infinity for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Softmax of a slice, stable under large magnitudes.
///
/// Returns an empty vector for an empty slice.
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let lse = log_sum_exp(xs);
    xs.iter().map(|x| (x - lse).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0) > 0.0 || sigmoid(-1000.0) == 0.0);
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-5.0, -1.0, 0.0, 1.0, 5.0] {
            let naive = sigmoid(x).ln();
            assert!((log_sigmoid(x) - naive).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn log_sigmoid_no_overflow() {
        assert!(log_sigmoid(-800.0).is_finite());
        assert!((log_sigmoid(-800.0) + 800.0).abs() < 1e-9);
        assert!(log_sigmoid(800.0).abs() < 1e-12);
    }

    #[test]
    fn softplus_limits() {
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) > 0.0);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_grad(-2.0), 0.0);
        assert_eq!(relu_grad(0.0), 0.0);
        assert_eq!(relu_grad(3.0), 1.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let q = softmax(&[1001.0, 1002.0, 1003.0]);
        for (a, b) in p.iter().zip(q.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn log_sum_exp_known_and_empty() {
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[1000.0, 1000.0]) - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-9);
    }
}
