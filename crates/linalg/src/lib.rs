//! Dense linear algebra kernels for the FIS-ONE reproduction.
//!
//! This crate provides the small, dependency-free numerical substrate used by
//! the rest of the workspace: a row-major dense [`Matrix`], vector helpers
//! ([`vec_ops`]), numerically stable scalar functions ([`func`]), a symmetric
//! eigendecomposition ([`eigen`]) used by classical multidimensional scaling,
//! and deterministic weight initialization ([`init`]).
//!
//! Everything operates on `f64`. Matrices are deliberately simple (no
//! expression templates, no BLAS): the models trained in this workspace are
//! tiny (two-layer GNN encoders, small autoencoders) and clarity wins.
//!
//! # Example
//!
//! ```
//! use fis_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod eigen;
pub mod func;
pub mod init;
pub mod matrix;
pub mod rng;
pub mod vec_ops;

pub use eigen::{symmetric_eigen, Eigen};
pub use matrix::Matrix;
pub use rng::SplitMix64;
