//! Deterministic weight initialization schemes.

use crate::{Matrix, SplitMix64};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Appropriate for layers followed by symmetric activations (sigmoid/tanh)
/// and the convention used for the RF-GNN weight matrices `W_k`.
///
/// # Example
///
/// ```
/// let w = fis_linalg::init::xavier_uniform(4, 8, 42);
/// assert_eq!(w.shape(), (4, 8));
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let a = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.uniform(-a, a))
}

/// He/Kaiming normal initialization: `N(0, 2/fan_in)`.
///
/// Appropriate for ReLU-activated layers (the SDCN/DAEGC autoencoders).
pub fn he_normal(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.normal() * std)
}

/// Uniform random matrix in `[lo, hi)`, used for the random initial node
/// representations `r^0_i` of RF-GNN (§III-B: "We set r0_i to a random
/// vector").
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform_matrix(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> Matrix {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds_hold() {
        let w = xavier_uniform(10, 20, 1);
        let a = (6.0f64 / 30.0).sqrt();
        assert!(w.as_slice().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn xavier_deterministic() {
        assert_eq!(xavier_uniform(3, 3, 9), xavier_uniform(3, 3, 9));
        assert_ne!(xavier_uniform(3, 3, 9), xavier_uniform(3, 3, 10));
    }

    #[test]
    fn he_normal_scale_reasonable() {
        let w = he_normal(100, 50, 2);
        let std = (w.as_slice().iter().map(|x| x * x).sum::<f64>() / w.len() as f64).sqrt();
        let expect = (2.0f64 / 100.0).sqrt();
        assert!(
            (std - expect).abs() / expect < 0.2,
            "std={std} expect={expect}"
        );
    }

    #[test]
    fn uniform_matrix_bounds() {
        let m = uniform_matrix(5, 5, -0.5, 0.5, 3);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }
}
