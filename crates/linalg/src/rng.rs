//! A tiny deterministic RNG for dependency-free weight initialization.
//!
//! The heavy-duty randomness in this workspace (corpus generation, neighbor
//! sampling) uses the `rand` + `rand_chacha` crates. This module exists only
//! so that `fis-linalg` can provide reproducible Xavier/He initialization
//! without pulling `rand` into its public API.

/// SplitMix64 pseudo-random generator.
///
/// Passes basic statistical tests, is trivially seedable, and is entirely
/// deterministic across platforms — exactly what reproducible experiment
/// initialization needs. Not cryptographically secure.
///
/// # Example
///
/// ```
/// use fis_linalg::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1)
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid log(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Rejection-free multiply-shift; bias is negligible for n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SplitMix64::new(4);
        for _ in 0..1000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_mean_roughly_zero() {
        let mut r = SplitMix64::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| r.normal()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(6);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }
}
