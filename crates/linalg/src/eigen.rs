//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Classical multidimensional scaling (the paper's MDS baseline, §V-A) needs
//! the top eigenpairs of the double-centered distance-squared matrix. The
//! matrices involved are small (`n x n` with `n` = number of signal samples
//! in a building, and the baseline subsamples), so the robust-but-cubic
//! Jacobi rotation method is the right tool: it is simple, numerically
//! stable, and produces orthonormal eigenvectors.

use crate::Matrix;

/// Result of a symmetric eigendecomposition.
///
/// `values[k]` corresponds to the eigenvector stored in column `k` of
/// `vectors`; pairs are sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Column `k` is the unit eigenvector for `values[k]`.
    pub vectors: Matrix,
}

/// Computes all eigenpairs of a symmetric matrix with the cyclic Jacobi
/// method.
///
/// Off-diagonal elements are annihilated in sweeps until the off-diagonal
/// Frobenius norm falls below `tol * ||A||_F` or `max_sweeps` is reached.
///
/// # Panics
///
/// Panics if the matrix is not square. Symmetry is assumed, not checked; the
/// strictly lower triangle is read as the mirror of the upper.
///
/// # Example
///
/// ```
/// use fis_linalg::{Matrix, symmetric_eigen};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let e = symmetric_eigen(&a, 1e-12, 50);
/// assert!((e.values[0] - 3.0).abs() < 1e-9);
/// assert!((e.values[1] - 1.0).abs() < 1e-9);
/// ```
pub fn symmetric_eigen(a: &Matrix, tol: f64, max_sweeps: usize) -> Eigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "symmetric_eigen requires a square matrix");
    // Work on a symmetrized copy so tiny asymmetries from distance
    // computations cannot break convergence.
    let mut m = Matrix::from_fn(n, n, |r, c| 0.5 * (a[(r, c)] + a[(c, r)]));
    let mut v = Matrix::identity(n);
    if n <= 1 {
        return finish(m, v);
    }
    let fro = m.frobenius_norm().max(1e-300);

    for _ in 0..max_sweeps {
        let off: f64 = {
            let mut s = 0.0;
            for r in 0..n {
                for c in (r + 1)..n {
                    s += m[(r, c)] * m[(r, c)];
                }
            }
            (2.0 * s).sqrt()
        };
        if off <= tol * fro {
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable computation of the rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation J(p, q, theta) on both sides: A <- J^T A J.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate the eigenvector rotation: V <- V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    finish(m, v)
}

fn finish(m: Matrix, v: Matrix) -> Eigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));
    let values = order.iter().map(|&i| diag[i]).collect();
    let vectors = Matrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut rng = SplitMix64::new(seed);
        let raw = Matrix::from_fn(n, n, |_, _| rng.uniform(-1.0, 1.0));
        Matrix::from_fn(n, n, |r, c| 0.5 * (raw[(r, c)] + raw[(c, r)]))
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, -1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = symmetric_eigen(&a, 1e-12, 50);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_of_random_symmetric() {
        let a = random_symmetric(8, 11);
        let e = symmetric_eigen(&a, 1e-14, 100);
        // A == V diag(lambda) V^T
        let n = a.rows();
        let mut recon = Matrix::zeros(n, n);
        for k in 0..n {
            for r in 0..n {
                for c in 0..n {
                    recon[(r, c)] += e.values[k] * e.vectors[(r, k)] * e.vectors[(c, k)];
                }
            }
        }
        assert!(
            a.max_abs_diff(&recon) < 1e-8,
            "diff={}",
            a.max_abs_diff(&recon)
        );
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(6, 22);
        let e = symmetric_eigen(&a, 1e-14, 100);
        let vtv = e.vectors.t_matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Matrix::identity(6)) < 1e-9);
    }

    #[test]
    fn values_sorted_descending() {
        let a = random_symmetric(10, 33);
        let e = symmetric_eigen(&a, 1e-12, 100);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trivial_sizes() {
        let e = symmetric_eigen(&Matrix::from_rows(&[&[5.0]]), 1e-12, 10);
        assert_eq!(e.values, vec![5.0]);
        let e0 = symmetric_eigen(&Matrix::zeros(0, 0), 1e-12, 10);
        assert!(e0.values.is_empty());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let _ = symmetric_eigen(&Matrix::zeros(2, 3), 1e-12, 10);
    }
}
