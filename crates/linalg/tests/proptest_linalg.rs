//! Property-based tests for the linear-algebra kernels.

use fis_linalg::func::{log_sigmoid, sigmoid, softmax};
use fis_linalg::vec_ops::{cosine_similarity, dot, euclidean, norm};
use fis_linalg::{symmetric_eigen, Matrix};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(small_f64(), rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        // Relative tolerance: entries can reach ~1e6.
        prop_assert!(left.max_abs_diff(&right) < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(left.max_abs_diff(&right) < 1e-6);
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn l2_normalized_rows_have_unit_or_zero_norm(a in matrix(4, 6)) {
        let n = a.l2_normalize_rows();
        for nr in n.row_norms() {
            prop_assert!((nr - 1.0).abs() < 1e-9 || nr < 1e-9);
        }
    }

    #[test]
    fn l2_normalize_idempotent(a in matrix(4, 3)) {
        let once = a.l2_normalize_rows();
        let twice = once.l2_normalize_rows();
        prop_assert!(once.max_abs_diff(&twice) < 1e-9);
    }

    #[test]
    fn dot_cauchy_schwarz(v in proptest::collection::vec(small_f64(), 8),
                          w in proptest::collection::vec(small_f64(), 8)) {
        prop_assert!(dot(&v, &w).abs() <= norm(&v) * norm(&w) + 1e-6);
    }

    #[test]
    fn euclidean_triangle_inequality(a in proptest::collection::vec(small_f64(), 5),
                                     b in proptest::collection::vec(small_f64(), 5),
                                     c in proptest::collection::vec(small_f64(), 5)) {
        prop_assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-9);
    }

    #[test]
    fn cosine_in_range(a in proptest::collection::vec(small_f64(), 6),
                       b in proptest::collection::vec(small_f64(), 6)) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn sigmoid_bounded_and_monotone(x in -50.0..50.0f64, d in 0.001..10.0f64) {
        prop_assert!((0.0..=1.0).contains(&sigmoid(x)));
        prop_assert!(sigmoid(x + d) >= sigmoid(x));
    }

    #[test]
    fn log_sigmoid_nonpositive(x in -700.0..700.0f64) {
        prop_assert!(log_sigmoid(x) <= 1e-12);
        prop_assert!(log_sigmoid(x).is_finite());
    }

    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-50.0..50.0f64, 1..10)) {
        let p = softmax(&xs);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn eigen_trace_preserved(v in proptest::collection::vec(-5.0..5.0f64, 16)) {
        let raw = Matrix::from_vec(4, 4, v);
        let a = Matrix::from_fn(4, 4, |r, c| 0.5 * (raw[(r, c)] + raw[(c, r)]));
        let e = symmetric_eigen(&a, 1e-12, 100);
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7);
    }
}
