//! The computation tape: forward ops and reverse-mode accumulation.

use std::sync::Arc;

use fis_linalg::func;
use fis_linalg::Matrix;

/// Handle to a value stored on a [`Tape`].
///
/// `Var`s are cheap indices; they are only meaningful for the tape that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Operation recorded by a tape node, referencing parent nodes by index.
#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f64),
    AddRowBroadcast(Var, Var),
    HCat(Var, Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Ln(Var),
    Square(Var),
    L2NormRows(Var),
    GatherRows(Var, Arc<Vec<usize>>),
    /// Per-output-row weighted sum of input rows:
    /// `out[i] = Σ_j w_ij * input[idx_ij]`.
    Aggregate(Var, Arc<Vec<Vec<(usize, f64)>>>),
    RowwiseDot(Var, Var),
    NegLogSigmoid(Var),
    SumAll(Var),
    MeanAll(Var),
    /// DEC-style clustering KL loss between the Student-t soft assignment of
    /// embeddings `z` to centroids `mu` and a fixed target distribution `p`.
    DecLoss(Var, Var, Arc<Matrix>),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    grad: Matrix,
    op: Op,
    /// Cached auxiliary forward result needed by some backward rules
    /// (e.g. the soft-assignment matrix Q for [`Op::DecLoss`]).
    aux: Option<Matrix>,
}

/// A single-use reverse-mode computation graph.
///
/// Typical lifecycle per training step: create a tape, insert parameters
/// with [`Tape::leaf`], build the loss, call [`Tape::backward`], read
/// parameter gradients with [`Tape::grad`], then drop the tape.
///
/// # Example
///
/// ```
/// use fis_autograd::Tape;
/// use fis_linalg::Matrix;
///
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::filled(1, 3, 2.0));
/// let y = t.square(x);
/// let s = t.sum_all(y);
/// t.backward(s);
/// assert_eq!(t.grad(x).row(0), &[4.0, 4.0, 4.0]);
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        let (r, c) = value.shape();
        self.nodes.push(Node {
            value,
            grad: Matrix::zeros(r, c),
            op,
            aux: None,
        });
        Var(self.nodes.len() - 1)
    }

    fn push_with_aux(&mut self, value: Matrix, op: Op, aux: Matrix) -> Var {
        let v = self.push(value, op);
        self.nodes[v.0].aux = Some(aux);
        v
    }

    /// Current forward value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of the last [`Tape::backward`] loss w.r.t. `v`.
    ///
    /// All-zero until `backward` has been called.
    pub fn grad(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].grad
    }

    /// Inserts an input/parameter matrix as a leaf node.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Element-wise sum of two same-shape matrices.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value + &self.nodes[b.0].value;
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value - &self.nodes[b.0].value;
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(v, Op::Mul(a, b))
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Adds a `1 x d` bias row to every row of an `n x d` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x d`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(bv.rows(), 1, "bias must have exactly one row");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut out = av.clone();
        for r in 0..out.rows() {
            fis_linalg::vec_ops::axpy(out.row_mut(r), 1.0, bv.row(0));
        }
        self.push(out, Op::AddRowBroadcast(a, bias))
    }

    /// Horizontal concatenation `[a | b]` (same row count).
    pub fn hcat(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hcat(&self.nodes[b.0].value);
        self.push(v, Op::HCat(a, b))
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(func::relu);
        self.push(v, Op::Relu(a))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(func::sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Element-wise natural logarithm.
    ///
    /// Inputs are clamped to `>= 1e-300` to keep the forward value finite;
    /// callers should still ensure logical positivity.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(1e-300).ln());
        self.push(v, Op::Ln(a))
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * x);
        self.push(v, Op::Square(a))
    }

    /// Normalizes each row to unit ℓ2 norm (rows with norm < 1e-12 pass
    /// through unchanged). This is RF-GNN's per-hop normalization
    /// `r_i := r_i / ||r_i||_2`.
    pub fn l2_normalize_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.l2_normalize_rows();
        self.push(v, Op::L2NormRows(a))
    }

    /// Gathers rows `indices` of `a` (repeats allowed) into a new matrix.
    pub fn gather_rows(&mut self, a: Var, indices: Arc<Vec<usize>>) -> Var {
        let v = self.nodes[a.0].value.gather_rows(&indices);
        self.push(v, Op::GatherRows(a, indices))
    }

    /// Weighted neighborhood aggregation: output row `i` is
    /// `Σ_j w_ij * a[idx_ij]`. This is RF-GNN's `AGGREGATE_w` with the RSS
    /// attention weights baked into `groups`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced row index is out of bounds.
    pub fn aggregate(&mut self, a: Var, groups: Arc<Vec<Vec<(usize, f64)>>>) -> Var {
        let av = &self.nodes[a.0].value;
        let d = av.cols();
        let mut out = Matrix::zeros(groups.len(), d);
        for (i, group) in groups.iter().enumerate() {
            for &(idx, w) in group {
                assert!(idx < av.rows(), "aggregate index {idx} out of bounds");
                fis_linalg::vec_ops::axpy(out.row_mut(i), w, av.row(idx));
            }
        }
        self.push(out, Op::Aggregate(a, groups))
    }

    /// Row-wise dot products of two `n x d` matrices, producing `n x 1`.
    ///
    /// Used for the skip-gram scores `r_i · r_j` of the unsupervised loss.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "rowwise_dot shape mismatch");
        let v = Matrix::from_fn(av.rows(), 1, |r, _| {
            fis_linalg::vec_ops::dot(av.row(r), bv.row(r))
        });
        self.push(v, Op::RowwiseDot(a, b))
    }

    /// Element-wise `-log σ(x)`, the building block of the negative-sampling
    /// loss `L_G` (§III-B). Computed as `softplus(-x)` for stability.
    pub fn neg_log_sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| func::softplus(-x));
        self.push(v, Op::NegLogSigmoid(a))
    }

    /// Sum of all elements, producing a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_rows(&[&[self.nodes[a.0].value.sum()]]);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements, producing a `1 x 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty.
    pub fn mean_all(&mut self, a: Var) -> Var {
        assert!(
            !self.nodes[a.0].value.is_empty(),
            "mean_all of empty matrix"
        );
        let v = Matrix::from_rows(&[&[self.nodes[a.0].value.mean()]]);
        self.push(v, Op::MeanAll(a))
    }

    /// Scalar value of a `1 x 1` variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not `1 x 1`.
    pub fn scalar(&self, v: Var) -> f64 {
        let m = &self.nodes[v.0].value;
        assert_eq!(m.shape(), (1, 1), "scalar() needs a 1x1 value");
        m[(0, 0)]
    }

    /// DEC-style clustering loss `KL(P || Q)` where
    /// `q_ij ∝ (1 + ||z_i - mu_j||²)^{-1}` is the Student-t soft assignment
    /// of embedding rows `z` to centroid rows `mu`, and `p` is the fixed
    /// target distribution. Returns a `1 x 1` loss.
    ///
    /// Gradients flow to both `z` and `mu` using the closed form from the
    /// DEC paper. This powers the self-supervised clustering modules of the
    /// SDCN and DAEGC baselines.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or `p` rows are not distributions.
    pub fn dec_loss(&mut self, z: Var, mu: Var, p: Arc<Matrix>) -> Var {
        let zv = &self.nodes[z.0].value;
        let muv = &self.nodes[mu.0].value;
        let (n, d) = zv.shape();
        let k = muv.rows();
        assert_eq!(muv.cols(), d, "centroid dimension mismatch");
        assert_eq!(p.shape(), (n, k), "target distribution shape mismatch");

        let q = student_t_assignment(zv, muv);
        let mut loss = 0.0;
        for i in 0..n {
            for j in 0..k {
                let pij = p[(i, j)];
                if pij > 0.0 {
                    loss += pij * (pij.max(1e-300).ln() - q[(i, j)].max(1e-300).ln());
                }
            }
        }
        let value = Matrix::from_rows(&[&[loss]]);
        self.push_with_aux(value, Op::DecLoss(z, mu, p), q)
    }

    /// Runs reverse-mode accumulation from scalar node `loss`.
    ///
    /// Gradients of all nodes are reset first, so a tape can be re-run
    /// against a different loss node if desired.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1 x 1` value.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss"
        );
        for node in &mut self.nodes {
            let (r, c) = node.value.shape();
            node.grad = Matrix::zeros(r, c);
        }
        self.nodes[loss.0].grad = Matrix::from_rows(&[&[1.0]]);

        for i in (0..=loss.0).rev() {
            let op = self.nodes[i].op.clone();
            let grad = self.nodes[i].grad.clone();
            if grad.as_slice().iter().all(|&g| g == 0.0) {
                continue;
            }
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = grad.matmul_t(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.t_matmul(&grad);
                    self.nodes[a.0].grad += &da;
                    self.nodes[b.0].grad += &db;
                }
                Op::Add(a, b) => {
                    self.nodes[a.0].grad += &grad;
                    self.nodes[b.0].grad += &grad;
                }
                Op::Sub(a, b) => {
                    self.nodes[a.0].grad += &grad;
                    self.nodes[b.0].grad.axpy(-1.0, &grad);
                }
                Op::Mul(a, b) => {
                    let da = grad.hadamard(&self.nodes[b.0].value);
                    let db = grad.hadamard(&self.nodes[a.0].value);
                    self.nodes[a.0].grad += &da;
                    self.nodes[b.0].grad += &db;
                }
                Op::Scale(a, s) => {
                    self.nodes[a.0].grad.axpy(s, &grad);
                }
                Op::AddRowBroadcast(a, bias) => {
                    self.nodes[a.0].grad += &grad;
                    let cols = grad.cols();
                    let mut db = Matrix::zeros(1, cols);
                    for r in 0..grad.rows() {
                        fis_linalg::vec_ops::axpy(db.row_mut(0), 1.0, grad.row(r));
                    }
                    self.nodes[bias.0].grad += &db;
                }
                Op::HCat(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    let rows = grad.rows();
                    let cb = grad.cols() - ca;
                    let mut da = Matrix::zeros(rows, ca);
                    let mut db = Matrix::zeros(rows, cb);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&grad.row(r)[..ca]);
                        db.row_mut(r).copy_from_slice(&grad.row(r)[ca..]);
                    }
                    self.nodes[a.0].grad += &da;
                    self.nodes[b.0].grad += &db;
                }
                Op::Relu(a) => {
                    let mask = self.nodes[a.0].value.map(func::relu_grad);
                    let da = grad.hadamard(&mask);
                    self.nodes[a.0].grad += &da;
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let dy = y.map(|s| s * (1.0 - s));
                    let da = grad.hadamard(&dy);
                    self.nodes[a.0].grad += &da;
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let dy = y.map(|t| 1.0 - t * t);
                    let da = grad.hadamard(&dy);
                    self.nodes[a.0].grad += &da;
                }
                Op::Ln(a) => {
                    let x = &self.nodes[a.0].value;
                    let dx = x.map(|v| 1.0 / v.max(1e-300));
                    let da = grad.hadamard(&dx);
                    self.nodes[a.0].grad += &da;
                }
                Op::Square(a) => {
                    let x = &self.nodes[a.0].value;
                    let da = grad.hadamard(&x.scale(2.0));
                    self.nodes[a.0].grad += &da;
                }
                Op::L2NormRows(a) => {
                    let x = &self.nodes[a.0].value;
                    let y = &self.nodes[i].value;
                    let mut da = Matrix::zeros(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        let norm = fis_linalg::vec_ops::norm(x.row(r));
                        if norm > 1e-12 {
                            let g = grad.row(r);
                            let yr = y.row(r);
                            let gy = fis_linalg::vec_ops::dot(g, yr);
                            for c in 0..x.cols() {
                                da[(r, c)] = (g[c] - yr[c] * gy) / norm;
                            }
                        } else {
                            // Pass-through rows were copied unchanged.
                            da.row_mut(r).copy_from_slice(grad.row(r));
                        }
                    }
                    self.nodes[a.0].grad += &da;
                }
                Op::GatherRows(a, indices) => {
                    let cols = grad.cols();
                    let mut da = Matrix::zeros(self.nodes[a.0].value.rows(), cols);
                    for (r, &idx) in indices.iter().enumerate() {
                        fis_linalg::vec_ops::axpy(da.row_mut(idx), 1.0, grad.row(r));
                    }
                    self.nodes[a.0].grad += &da;
                }
                Op::Aggregate(a, groups) => {
                    let cols = grad.cols();
                    let mut da = Matrix::zeros(self.nodes[a.0].value.rows(), cols);
                    for (r, group) in groups.iter().enumerate() {
                        for &(idx, w) in group {
                            fis_linalg::vec_ops::axpy(da.row_mut(idx), w, grad.row(r));
                        }
                    }
                    self.nodes[a.0].grad += &da;
                }
                Op::RowwiseDot(a, b) => {
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    let mut da = Matrix::zeros(av.rows(), av.cols());
                    let mut db = Matrix::zeros(av.rows(), av.cols());
                    for r in 0..av.rows() {
                        let g = grad[(r, 0)];
                        fis_linalg::vec_ops::axpy(da.row_mut(r), g, bv.row(r));
                        fis_linalg::vec_ops::axpy(db.row_mut(r), g, av.row(r));
                    }
                    self.nodes[a.0].grad += &da;
                    self.nodes[b.0].grad += &db;
                }
                Op::NegLogSigmoid(a) => {
                    // d/dx softplus(-x) = -σ(-x) = σ(x) - 1
                    let dx = self.nodes[a.0].value.map(|x| func::sigmoid(x) - 1.0);
                    let da = grad.hadamard(&dx);
                    self.nodes[a.0].grad += &da;
                }
                Op::SumAll(a) => {
                    let g = grad[(0, 0)];
                    let (r, c) = self.nodes[a.0].value.shape();
                    self.nodes[a.0].grad += &Matrix::filled(r, c, g);
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let g = grad[(0, 0)] / (r * c) as f64;
                    self.nodes[a.0].grad += &Matrix::filled(r, c, g);
                }
                Op::DecLoss(z, mu, p) => {
                    let g = grad[(0, 0)];
                    let q = self.nodes[i]
                        .aux
                        .as_ref()
                        .expect("DecLoss aux missing")
                        .clone();
                    let zv = self.nodes[z.0].value.clone();
                    let muv = self.nodes[mu.0].value.clone();
                    let (n, d) = zv.shape();
                    let k = muv.rows();
                    let mut dz = Matrix::zeros(n, d);
                    let mut dmu = Matrix::zeros(k, d);
                    // dL/dz_i = 2 Σ_j (1+||z_i-mu_j||²)^{-1} (p_ij - q_ij)(z_i - mu_j)
                    // (KL(P||Q) gradient; dmu is the negative scatter.)
                    for ii in 0..n {
                        for j in 0..k {
                            let diff: Vec<f64> =
                                (0..d).map(|c| zv[(ii, c)] - muv[(j, c)]).collect();
                            let dist_sq: f64 = diff.iter().map(|x| x * x).sum();
                            let coef = 2.0 * (p[(ii, j)] - q[(ii, j)]) / (1.0 + dist_sq) * g;
                            for c in 0..d {
                                dz[(ii, c)] += coef * diff[c];
                                dmu[(j, c)] -= coef * diff[c];
                            }
                        }
                    }
                    self.nodes[z.0].grad += &dz;
                    self.nodes[mu.0].grad += &dmu;
                }
            }
        }
    }
}

/// Student-t (df = 1) soft assignment of rows of `z` to centroid rows `mu`:
/// `q_ij ∝ (1 + ||z_i - mu_j||²)^{-1}`, rows normalized to sum to one.
///
/// Shared by [`Tape::dec_loss`] and the baselines' target-distribution
/// refresh step.
pub fn student_t_assignment(z: &Matrix, mu: &Matrix) -> Matrix {
    let n = z.rows();
    let k = mu.rows();
    let mut q = Matrix::zeros(n, k);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..k {
            let dist_sq = fis_linalg::vec_ops::euclidean_sq(z.row(i), mu.row(j));
            let val = 1.0 / (1.0 + dist_sq);
            q[(i, j)] = val;
            row_sum += val;
        }
        for j in 0..k {
            q[(i, j)] /= row_sum;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_is_send_and_sync() {
        // The tape's op payloads are Arc-shared, so whole tapes (and the
        // models built on them) can cross thread boundaries in the
        // parallel engine.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tape>();
        assert_send_sync::<Var>();
    }

    #[test]
    fn leaf_value_round_trip() {
        let mut t = Tape::new();
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let v = t.leaf(m.clone());
        assert_eq!(t.value(v), &m);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn matmul_gradients_match_formula() {
        // loss = sum(A B); dA = 1 * B^T, dB = A^T * 1
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = t.matmul(a, b);
        let loss = t.sum_all(c);
        t.backward(loss);
        assert_eq!(
            t.grad(a),
            &Matrix::from_rows(&[&[11.0, 15.0], &[11.0, 15.0]])
        );
        assert_eq!(t.grad(b), &Matrix::from_rows(&[&[4.0, 4.0], &[6.0, 6.0]]));
    }

    #[test]
    fn chain_through_sigmoid() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.0]]));
        let y = t.sigmoid(x);
        let loss = t.sum_all(y);
        t.backward(loss);
        // σ'(0) = 0.25
        assert!((t.grad(x)[(0, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn diamond_reuse_accumulates() {
        // loss = sum(x*x + x) ; dx = 2x + 1
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[3.0]]));
        let sq = t.mul(x, x);
        let s = t.add(sq, x);
        let loss = t.sum_all(s);
        t.backward(loss);
        assert!((t.grad(x)[(0, 0)] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn gather_rows_scatters_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]));
        let g = t.gather_rows(x, Arc::new(vec![0, 0, 2]));
        let loss = t.sum_all(g);
        t.backward(loss);
        assert_eq!(
            t.grad(x),
            &Matrix::from_rows(&[&[2.0, 2.0], &[0.0, 0.0], &[1.0, 1.0]])
        );
    }

    #[test]
    fn aggregate_forward_and_backward() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let groups = Arc::new(vec![vec![(0, 0.25), (1, 0.75)]]);
        let agg = t.aggregate(x, groups);
        assert_eq!(t.value(agg), &Matrix::from_rows(&[&[0.25, 0.75]]));
        let loss = t.sum_all(agg);
        t.backward(loss);
        assert_eq!(
            t.grad(x),
            &Matrix::from_rows(&[&[0.25, 0.25], &[0.75, 0.75]])
        );
    }

    #[test]
    fn rowwise_dot_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[3.0, 4.0]]));
        let d = t.rowwise_dot(a, b);
        assert_eq!(t.value(d)[(0, 0)], 11.0);
        let loss = t.sum_all(d);
        t.backward(loss);
        assert_eq!(t.grad(a), &Matrix::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(t.grad(b), &Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn neg_log_sigmoid_is_softplus_neg() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.0]]));
        let y = t.neg_log_sigmoid(x);
        assert!((t.value(y)[(0, 0)] - std::f64::consts::LN_2).abs() < 1e-12);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert!((t.grad(x)[(0, 0)] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn l2_normalize_grad_orthogonal_to_output() {
        // For unit-output y, the Jacobian projects out the y direction, so
        // grad(x) · y == 0 when upstream grad is arbitrary.
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[3.0, 4.0]]));
        let y = t.l2_normalize_rows(x);
        // loss = first component of y
        let pick = t.leaf(Matrix::from_rows(&[&[1.0], &[0.0]]));
        let first = t.matmul(y, pick);
        let loss = t.sum_all(first);
        t.backward(loss);
        let yv = t.value(y).row(0).to_vec();
        let gx = t.grad(x).row(0).to_vec();
        let dot = fis_linalg::vec_ops::dot(&yv, &gx);
        assert!(dot.abs() < 1e-12, "dot={dot}");
    }

    #[test]
    fn hcat_splits_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[2.0, 3.0]]));
        let h = t.hcat(a, b);
        let w = t.leaf(Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let y = t.matmul(h, w);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(a)[(0, 0)], 1.0);
        assert_eq!(t.grad(b), &Matrix::from_rows(&[&[10.0, 100.0]]));
    }

    #[test]
    fn add_row_broadcast_backward_sums_rows() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(3, 2));
        let b = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = t.add_row_broadcast(x, b);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(b), &Matrix::from_rows(&[&[3.0, 3.0]]));
    }

    #[test]
    fn mean_all_divides_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(2, 2, 1.0));
        let m = t.mean_all(x);
        t.backward(m);
        assert_eq!(t.grad(x), &Matrix::filled(2, 2, 0.25));
    }

    #[test]
    fn student_t_rows_are_distributions() {
        let z = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[5.0, 5.0]]);
        let mu = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0]]);
        let q = student_t_assignment(&z, &mu);
        for r in 0..3 {
            let s: f64 = q.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Nearest centroid gets the larger share.
        assert!(q[(0, 0)] > q[(0, 1)]);
        assert!(q[(2, 1)] > q[(2, 0)]);
    }

    #[test]
    fn dec_loss_zero_when_q_equals_p() {
        let mut t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[&[0.0, 0.0], &[4.0, 4.0]]));
        let mu = t.leaf(Matrix::from_rows(&[&[0.0, 0.0], &[4.0, 4.0]]));
        let q = student_t_assignment(t.value(z), t.value(mu));
        let loss = t.dec_loss(z, mu, Arc::new(q));
        assert!(t.scalar(loss).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scalar (1x1) loss")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        t.backward(x);
    }

    #[test]
    fn backward_twice_resets_grads() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[2.0]]));
        let y = t.square(x);
        let loss = t.sum_all(y);
        t.backward(loss);
        t.backward(loss);
        assert!((t.grad(x)[(0, 0)] - 4.0).abs() < 1e-12);
    }
}
