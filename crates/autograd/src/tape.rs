//! The computation tape: forward ops and reverse-mode accumulation.

use std::sync::Arc;

use fis_linalg::func;
use fis_linalg::Matrix;

/// Handle to a value stored on a [`Tape`].
///
/// `Var`s are cheap indices; they are only meaningful for the tape that
/// produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Weighted row groups for [`Tape::aggregate`], stored in a flat CSR-style
/// layout (`row i` spans `entries[offsets[i]..offsets[i + 1]]`) so building
/// one per minibatch costs two allocations instead of one per output row.
///
/// Entry order within a row is the accumulation order of the weighted sum,
/// so it is part of the deterministic-output contract.
#[derive(Debug, Clone, Default)]
pub struct RowGroups {
    offsets: Vec<u32>,
    entries: Vec<(u32, f64)>,
}

impl RowGroups {
    /// An empty group set with room for `rows` rows and `entries` total
    /// weighted references.
    pub fn with_capacity(rows: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Self {
            offsets,
            entries: Vec::with_capacity(entries),
        }
    }

    /// Appends one `(row index, weight)` entry to the row currently being
    /// built; call [`RowGroups::finish_row`] to close it.
    pub fn push_entry(&mut self, idx: usize, w: f64) {
        self.entries
            .push((u32::try_from(idx).expect("row index fits u32"), w));
    }

    /// Closes the current output row.
    pub fn finish_row(&mut self) {
        self.offsets
            .push(u32::try_from(self.entries.len()).expect("entry count fits u32"));
    }

    /// Builds from nested per-row entry lists (test/convenience path).
    pub fn from_nested(nested: &[Vec<(usize, f64)>]) -> Self {
        let total = nested.iter().map(Vec::len).sum();
        let mut g = Self::with_capacity(nested.len(), total);
        for row in nested {
            for &(idx, w) in row {
                g.push_entry(idx, w);
            }
            g.finish_row();
        }
        g
    }

    /// Number of output rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The entries of output row `i`, in accumulation order.
    fn row(&self, i: usize) -> &[(u32, f64)] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Operation recorded by a tape node, referencing parent nodes by index.
#[derive(Debug, Clone)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f64),
    AddRowBroadcast(Var, Var),
    HCat(Var, Var),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    Ln(Var),
    Square(Var),
    L2NormRows(Var),
    GatherRows(Var, Arc<Vec<usize>>),
    /// Per-output-row weighted sum of input rows:
    /// `out[i] = Σ_j w_ij * input[idx_ij]`.
    Aggregate(Var, Arc<RowGroups>),
    RowwiseDot(Var, Var),
    /// Fused `rowwise_dot(gather_rows(a, i), gather_rows(a, j))` that
    /// never materializes the gathered copies.
    GatherDot(Var, Arc<Vec<usize>>, Arc<Vec<usize>>),
    NegLogSigmoid(Var),
    SumAll(Var),
    MeanAll(Var),
    /// DEC-style clustering KL loss between the Student-t soft assignment of
    /// embeddings `z` to centroids `mu` and a fixed target distribution `p`.
    DecLoss(Var, Var, Arc<Matrix>),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    /// `None` until this node receives its first gradient contribution
    /// during [`Tape::backward`]. Keeping the untouched state implicit
    /// lets the reverse sweep skip dead branches in O(1) instead of
    /// zero-scanning (and re-zeroing) every node's gradient buffer.
    grad: Option<Matrix>,
    op: Op,
    /// Cached auxiliary forward result needed by some backward rules
    /// (e.g. the soft-assignment matrix Q for [`Op::DecLoss`]).
    aux: Option<Matrix>,
}

/// A single-use reverse-mode computation graph.
///
/// Typical lifecycle per training step: create a tape, insert parameters
/// with [`Tape::leaf`], build the loss, call [`Tape::backward`], read
/// parameter gradients with [`Tape::grad`], then drop the tape.
///
/// # Example
///
/// ```
/// use fis_autograd::Tape;
/// use fis_linalg::Matrix;
///
/// let mut t = Tape::new();
/// let x = t.leaf(Matrix::filled(1, 3, 2.0));
/// let y = t.square(x);
/// let s = t.sum_all(y);
/// t.backward(s);
/// assert_eq!(t.grad(x).row(0), &[4.0, 4.0, 4.0]);
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            aux: None,
        });
        Var(self.nodes.len() - 1)
    }

    fn push_with_aux(&mut self, value: Matrix, op: Op, aux: Matrix) -> Var {
        let v = self.push(value, op);
        self.nodes[v.0].aux = Some(aux);
        v
    }

    /// Current forward value of a variable.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of the last [`Tape::backward`] loss w.r.t. `v`.
    ///
    /// All-zero for nodes the loss does not depend on.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Tape::backward`]: gradients are not
    /// materialized until the reverse sweep runs.
    pub fn grad(&self, v: Var) -> &Matrix {
        self.nodes[v.0]
            .grad
            .as_ref()
            .expect("grad() called before backward()")
    }

    /// Inserts an input/parameter matrix as a leaf node.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::MatMul(a, b))
    }

    /// Element-wise sum of two same-shape matrices.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value + &self.nodes[b.0].value;
        self.push(v, Op::Add(a, b))
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value - &self.nodes[b.0].value;
        self.push(v, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(v, Op::Mul(a, b))
    }

    /// Multiplication by a constant scalar.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// Adds a `1 x d` bias row to every row of an `n x d` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x d`.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(bv.rows(), 1, "bias must have exactly one row");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut out = av.clone();
        for r in 0..out.rows() {
            fis_linalg::vec_ops::axpy(out.row_mut(r), 1.0, bv.row(0));
        }
        self.push(out, Op::AddRowBroadcast(a, bias))
    }

    /// Horizontal concatenation `[a | b]` (same row count).
    pub fn hcat(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hcat(&self.nodes[b.0].value);
        self.push(v, Op::HCat(a, b))
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(func::relu);
        self.push(v, Op::Relu(a))
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(func::sigmoid);
        self.push(v, Op::Sigmoid(a))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    /// Element-wise natural logarithm.
    ///
    /// Inputs are clamped to `>= 1e-300` to keep the forward value finite;
    /// callers should still ensure logical positivity.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(1e-300).ln());
        self.push(v, Op::Ln(a))
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * x);
        self.push(v, Op::Square(a))
    }

    /// Normalizes each row to unit ℓ2 norm (rows with norm < 1e-12 pass
    /// through unchanged). This is RF-GNN's per-hop normalization
    /// `r_i := r_i / ||r_i||_2`.
    pub fn l2_normalize_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.l2_normalize_rows();
        self.push(v, Op::L2NormRows(a))
    }

    /// Gathers rows `indices` of `a` (repeats allowed) into a new matrix.
    pub fn gather_rows(&mut self, a: Var, indices: Arc<Vec<usize>>) -> Var {
        let v = self.nodes[a.0].value.gather_rows(&indices);
        self.push(v, Op::GatherRows(a, indices))
    }

    /// Weighted neighborhood aggregation: output row `i` is
    /// `Σ_j w_ij * a[idx_ij]`. This is RF-GNN's `AGGREGATE_w` with the RSS
    /// attention weights baked into `groups`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced row index is out of bounds.
    pub fn aggregate(&mut self, a: Var, groups: Arc<RowGroups>) -> Var {
        let av = &self.nodes[a.0].value;
        let d = av.cols();
        let rows = av.rows();
        let flat = av.as_slice();
        let mut out = vec![0.0; groups.rows() * d];
        for i in 0..groups.rows() {
            let dst = &mut out[i * d..(i + 1) * d];
            for &(idx, w) in groups.row(i) {
                let idx = idx as usize;
                assert!(idx < rows, "aggregate index {idx} out of bounds");
                let src = &flat[idx * d..idx * d + d];
                for (o, &x) in dst.iter_mut().zip(src) {
                    *o += w * x;
                }
            }
        }
        let out = Matrix::from_vec(groups.rows(), d, out);
        self.push(out, Op::Aggregate(a, groups))
    }

    /// Row-wise dot products of two `n x d` matrices, producing `n x 1`.
    ///
    /// Used for the skip-gram scores `r_i · r_j` of the unsupervised loss.
    pub fn rowwise_dot(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(av.shape(), bv.shape(), "rowwise_dot shape mismatch");
        let v = Matrix::from_fn(av.rows(), 1, |r, _| {
            fis_linalg::vec_ops::dot(av.row(r), bv.row(r))
        });
        self.push(v, Op::RowwiseDot(a, b))
    }

    /// Fused `rowwise_dot(gather_rows(a, i_idx), gather_rows(a, j_idx))`,
    /// producing `|i_idx| x 1` scores without materializing the two
    /// gathered matrices.
    ///
    /// Forward rows are the same `dot` over the same source rows the
    /// unfused chain computes, and backward performs the j-side scatter
    /// and the i-side scatter as two separate accumulations in the order
    /// the unfused tape nodes would have run them, so results (values
    /// and gradients) are bit-identical to the three-op spelling.
    ///
    /// # Panics
    ///
    /// Panics if the index lists differ in length or any index is out of
    /// bounds.
    pub fn gathered_rowwise_dot(
        &mut self,
        a: Var,
        i_idx: Arc<Vec<usize>>,
        j_idx: Arc<Vec<usize>>,
    ) -> Var {
        assert_eq!(
            i_idx.len(),
            j_idx.len(),
            "gathered_rowwise_dot length mismatch"
        );
        let cols = self.nodes[a.0].value.cols();
        let av = self.nodes[a.0].value.as_slice();
        let data: Vec<f64> = i_idx
            .iter()
            .zip(j_idx.iter())
            .map(|(&ir, &jr)| {
                fis_linalg::vec_ops::dot(
                    &av[ir * cols..ir * cols + cols],
                    &av[jr * cols..jr * cols + cols],
                )
            })
            .collect();
        let v = Matrix::from_vec(i_idx.len(), 1, data);
        self.push(v, Op::GatherDot(a, i_idx, j_idx))
    }

    /// Element-wise `-log σ(x)`, the building block of the negative-sampling
    /// loss `L_G` (§III-B). Computed as `softplus(-x)` for stability.
    pub fn neg_log_sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| func::softplus(-x));
        self.push(v, Op::NegLogSigmoid(a))
    }

    /// Sum of all elements, producing a `1 x 1` matrix.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::from_rows(&[&[self.nodes[a.0].value.sum()]]);
        self.push(v, Op::SumAll(a))
    }

    /// Mean of all elements, producing a `1 x 1` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is empty.
    pub fn mean_all(&mut self, a: Var) -> Var {
        assert!(
            !self.nodes[a.0].value.is_empty(),
            "mean_all of empty matrix"
        );
        let v = Matrix::from_rows(&[&[self.nodes[a.0].value.mean()]]);
        self.push(v, Op::MeanAll(a))
    }

    /// Scalar value of a `1 x 1` variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not `1 x 1`.
    pub fn scalar(&self, v: Var) -> f64 {
        let m = &self.nodes[v.0].value;
        assert_eq!(m.shape(), (1, 1), "scalar() needs a 1x1 value");
        m[(0, 0)]
    }

    /// DEC-style clustering loss `KL(P || Q)` where
    /// `q_ij ∝ (1 + ||z_i - mu_j||²)^{-1}` is the Student-t soft assignment
    /// of embedding rows `z` to centroid rows `mu`, and `p` is the fixed
    /// target distribution. Returns a `1 x 1` loss.
    ///
    /// Gradients flow to both `z` and `mu` using the closed form from the
    /// DEC paper. This powers the self-supervised clustering modules of the
    /// SDCN and DAEGC baselines.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or `p` rows are not distributions.
    pub fn dec_loss(&mut self, z: Var, mu: Var, p: Arc<Matrix>) -> Var {
        let zv = &self.nodes[z.0].value;
        let muv = &self.nodes[mu.0].value;
        let (n, d) = zv.shape();
        let k = muv.rows();
        assert_eq!(muv.cols(), d, "centroid dimension mismatch");
        assert_eq!(p.shape(), (n, k), "target distribution shape mismatch");

        let q = student_t_assignment(zv, muv);
        let mut loss = 0.0;
        for i in 0..n {
            for j in 0..k {
                let pij = p[(i, j)];
                if pij > 0.0 {
                    loss += pij * (pij.max(1e-300).ln() - q[(i, j)].max(1e-300).ln());
                }
            }
        }
        let value = Matrix::from_rows(&[&[loss]]);
        self.push_with_aux(value, Op::DecLoss(z, mu, p), q)
    }

    /// Accumulates an owned gradient contribution into node `v`.
    ///
    /// The first contribution is finished with a `+ 0.0` pass so the
    /// stored bits match what the historical `zeros += contrib`
    /// accumulation produced (IEEE addition normalizes `-0.0` to `+0.0`
    /// against a `+0.0` accumulator and is commutative for finite and
    /// infinite values).
    fn accum(&mut self, v: Var, contrib: Matrix) {
        match self.nodes[v.0].grad.take() {
            Some(mut g) => {
                g += &contrib;
                self.nodes[v.0].grad = Some(g);
            }
            None => {
                let mut c = contrib;
                c.map_inplace(|x| x + 0.0);
                self.nodes[v.0].grad = Some(c);
            }
        }
    }

    /// `grad[v] += alpha * src`, without materializing zeros when `v` has
    /// no gradient yet (same bit-compat argument as [`Tape::accum`]).
    fn accum_scaled(&mut self, v: Var, alpha: f64, src: &Matrix) {
        match self.nodes[v.0].grad.take() {
            Some(mut g) => {
                g.axpy(alpha, src);
                self.nodes[v.0].grad = Some(g);
            }
            None => {
                self.nodes[v.0].grad = Some(src.map(|x| alpha * x + 0.0));
            }
        }
    }

    /// Runs reverse-mode accumulation from scalar node `loss`.
    ///
    /// Gradients of all nodes are reset first, so a tape can be re-run
    /// against a different loss node if desired. Nodes the loss does not
    /// depend on are skipped in O(1) during the sweep and receive a zero
    /// gradient at the end.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1 x 1` value.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) loss"
        );
        for node in &mut self.nodes {
            node.grad = None;
        }
        self.nodes[loss.0].grad = Some(Matrix::from_rows(&[&[1.0]]));

        for i in (0..=loss.0).rev() {
            let Some(grad) = self.nodes[i].grad.take() else {
                // The loss never reached this node: nothing to propagate.
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = grad.matmul_t(&self.nodes[b.0].value);
                    let db = self.nodes[a.0].value.t_matmul(&grad);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Add(a, b) => {
                    self.accum_scaled(a, 1.0, &grad);
                    self.accum_scaled(b, 1.0, &grad);
                }
                Op::Sub(a, b) => {
                    self.accum_scaled(a, 1.0, &grad);
                    self.accum_scaled(b, -1.0, &grad);
                }
                Op::Mul(a, b) => {
                    let da = grad.hadamard(&self.nodes[b.0].value);
                    let db = grad.hadamard(&self.nodes[a.0].value);
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Scale(a, s) => {
                    self.accum_scaled(a, s, &grad);
                }
                Op::AddRowBroadcast(a, bias) => {
                    let cols = grad.cols();
                    let mut db = Matrix::zeros(1, cols);
                    for r in 0..grad.rows() {
                        fis_linalg::vec_ops::axpy(db.row_mut(0), 1.0, grad.row(r));
                    }
                    self.accum_scaled(a, 1.0, &grad);
                    self.accum(bias, db);
                }
                Op::HCat(a, b) => {
                    let ca = self.nodes[a.0].value.cols();
                    let rows = grad.rows();
                    let cb = grad.cols() - ca;
                    let mut da = Matrix::zeros(rows, ca);
                    let mut db = Matrix::zeros(rows, cb);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&grad.row(r)[..ca]);
                        db.row_mut(r).copy_from_slice(&grad.row(r)[ca..]);
                    }
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::Relu(a) => {
                    // Fused g * relu'(x): one pass, same per-element
                    // product (including the ±0.0 of g * 0.0) as the old
                    // mask-then-hadamard pair.
                    let da = zip_map(&grad, &self.nodes[a.0].value, |g, x| g * func::relu_grad(x));
                    self.accum(a, da);
                }
                Op::Sigmoid(a) => {
                    let da = zip_map(&grad, &self.nodes[i].value, |g, s| g * (s * (1.0 - s)));
                    self.accum(a, da);
                }
                Op::Tanh(a) => {
                    let da = zip_map(&grad, &self.nodes[i].value, |g, t| g * (1.0 - t * t));
                    self.accum(a, da);
                }
                Op::Ln(a) => {
                    let da = zip_map(&grad, &self.nodes[a.0].value, |g, x| {
                        g * (1.0 / x.max(1e-300))
                    });
                    self.accum(a, da);
                }
                Op::Square(a) => {
                    let da = zip_map(&grad, &self.nodes[a.0].value, |g, x| g * (x * 2.0));
                    self.accum(a, da);
                }
                Op::L2NormRows(a) => {
                    let x = &self.nodes[a.0].value;
                    let y = &self.nodes[i].value;
                    let mut da = Matrix::zeros(x.rows(), x.cols());
                    for r in 0..x.rows() {
                        let norm = fis_linalg::vec_ops::norm(x.row(r));
                        if norm > 1e-12 {
                            let g = grad.row(r);
                            let yr = y.row(r);
                            let gy = fis_linalg::vec_ops::dot(g, yr);
                            for c in 0..x.cols() {
                                da[(r, c)] = (g[c] - yr[c] * gy) / norm;
                            }
                        } else {
                            // Pass-through rows were copied unchanged.
                            da.row_mut(r).copy_from_slice(grad.row(r));
                        }
                    }
                    self.accum(a, da);
                }
                Op::GatherRows(a, indices) => {
                    let cols = grad.cols();
                    let rows = self.nodes[a.0].value.rows();
                    let g = grad.as_slice();
                    let mut da = vec![0.0; rows * cols];
                    for (r, &idx) in indices.iter().enumerate() {
                        let src = &g[r * cols..r * cols + cols];
                        let dst = &mut da[idx * cols..idx * cols + cols];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                    self.accum(a, Matrix::from_vec(rows, cols, da));
                }
                Op::Aggregate(a, groups) => {
                    let cols = grad.cols();
                    let rows = self.nodes[a.0].value.rows();
                    let g = grad.as_slice();
                    let mut da = vec![0.0; rows * cols];
                    for r in 0..groups.rows() {
                        let src = &g[r * cols..r * cols + cols];
                        for &(idx, w) in groups.row(r) {
                            let idx = idx as usize;
                            let dst = &mut da[idx * cols..idx * cols + cols];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += w * s;
                            }
                        }
                    }
                    self.accum(a, Matrix::from_vec(rows, cols, da));
                }
                Op::RowwiseDot(a, b) => {
                    let (da, db) = {
                        let av = &self.nodes[a.0].value;
                        let bv = &self.nodes[b.0].value;
                        let mut da = Matrix::zeros(av.rows(), av.cols());
                        let mut db = Matrix::zeros(av.rows(), av.cols());
                        for r in 0..av.rows() {
                            let g = grad[(r, 0)];
                            fis_linalg::vec_ops::axpy(da.row_mut(r), g, bv.row(r));
                            fis_linalg::vec_ops::axpy(db.row_mut(r), g, av.row(r));
                        }
                        (da, db)
                    };
                    self.accum(a, da);
                    self.accum(b, db);
                }
                Op::GatherDot(a, i_idx, j_idx) => {
                    // Mirror the unfused gather→rowwise_dot chain: the
                    // j-side gather was the later tape node, so its
                    // scatter accumulates first, and the two sides stay
                    // separate accumulations to preserve the historical
                    // grouping of additions.
                    let (rows, cols) = self.nodes[a.0].value.shape();
                    // Scatter over flat slices: same `+= g * x` per-element
                    // order as the row-wise axpy formulation, minus the
                    // per-row bounds checks this loop was dominated by.
                    let g = grad.as_slice();
                    let dj = {
                        let av = self.nodes[a.0].value.as_slice();
                        let mut dj = vec![0.0; rows * cols];
                        for (r, (&ir, &jr)) in i_idx.iter().zip(j_idx.iter()).enumerate() {
                            let gv = g[r];
                            let src = &av[ir * cols..ir * cols + cols];
                            let dst = &mut dj[jr * cols..jr * cols + cols];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += gv * s;
                            }
                        }
                        Matrix::from_vec(rows, cols, dj)
                    };
                    self.accum(a, dj);
                    let di = {
                        let av = self.nodes[a.0].value.as_slice();
                        let mut di = vec![0.0; rows * cols];
                        for (r, (&ir, &jr)) in i_idx.iter().zip(j_idx.iter()).enumerate() {
                            let gv = g[r];
                            let src = &av[jr * cols..jr * cols + cols];
                            let dst = &mut di[ir * cols..ir * cols + cols];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += gv * s;
                            }
                        }
                        Matrix::from_vec(rows, cols, di)
                    };
                    self.accum(a, di);
                }
                Op::NegLogSigmoid(a) => {
                    // d/dx softplus(-x) = -σ(-x) = σ(x) - 1
                    let da = zip_map(&grad, &self.nodes[a.0].value, |g, x| {
                        g * (func::sigmoid(x) - 1.0)
                    });
                    self.accum(a, da);
                }
                Op::SumAll(a) => {
                    let g = grad[(0, 0)];
                    let (r, c) = self.nodes[a.0].value.shape();
                    self.accum(a, Matrix::filled(r, c, g));
                }
                Op::MeanAll(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let g = grad[(0, 0)] / (r * c) as f64;
                    self.accum(a, Matrix::filled(r, c, g));
                }
                Op::DecLoss(z, mu, p) => {
                    let g = grad[(0, 0)];
                    let (dz, dmu) = {
                        let q = self.nodes[i].aux.as_ref().expect("DecLoss aux missing");
                        let zv = &self.nodes[z.0].value;
                        let muv = &self.nodes[mu.0].value;
                        let (n, d) = zv.shape();
                        let k = muv.rows();
                        let mut dz = Matrix::zeros(n, d);
                        let mut dmu = Matrix::zeros(k, d);
                        // dL/dz_i = 2 Σ_j (1+||z_i-mu_j||²)^{-1} (p_ij - q_ij)(z_i - mu_j)
                        // (KL(P||Q) gradient; dmu is the negative scatter.)
                        for ii in 0..n {
                            for j in 0..k {
                                let diff: Vec<f64> =
                                    (0..d).map(|c| zv[(ii, c)] - muv[(j, c)]).collect();
                                let dist_sq: f64 = diff.iter().map(|x| x * x).sum();
                                let coef = 2.0 * (p[(ii, j)] - q[(ii, j)]) / (1.0 + dist_sq) * g;
                                for c in 0..d {
                                    dz[(ii, c)] += coef * diff[c];
                                    dmu[(j, c)] -= coef * diff[c];
                                }
                            }
                        }
                        (dz, dmu)
                    };
                    self.accum(z, dz);
                    self.accum(mu, dmu);
                }
            }
            self.nodes[i].grad = Some(grad);
        }

        // Unreached nodes still expose an all-zero gradient, matching the
        // pre-Option API.
        for node in &mut self.nodes {
            if node.grad.is_none() {
                let (r, c) = node.value.shape();
                node.grad = Some(Matrix::zeros(r, c));
            }
        }
    }
}

/// Element-wise `f(a_ij, b_ij)` over two same-shape matrices, fusing what
/// would otherwise be a map allocation followed by a hadamard pass.
fn zip_map(a: &Matrix, b: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "zip_map shape mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

/// Student-t (df = 1) soft assignment of rows of `z` to centroid rows `mu`:
/// `q_ij ∝ (1 + ||z_i - mu_j||²)^{-1}`, rows normalized to sum to one.
///
/// Shared by [`Tape::dec_loss`] and the baselines' target-distribution
/// refresh step.
pub fn student_t_assignment(z: &Matrix, mu: &Matrix) -> Matrix {
    let n = z.rows();
    let k = mu.rows();
    let mut q = Matrix::zeros(n, k);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..k {
            let dist_sq = fis_linalg::vec_ops::euclidean_sq(z.row(i), mu.row(j));
            let val = 1.0 / (1.0 + dist_sq);
            q[(i, j)] = val;
            row_sum += val;
        }
        for j in 0..k {
            q[(i, j)] /= row_sum;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_is_send_and_sync() {
        // The tape's op payloads are Arc-shared, so whole tapes (and the
        // models built on them) can cross thread boundaries in the
        // parallel engine.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tape>();
        assert_send_sync::<Var>();
    }

    #[test]
    fn leaf_value_round_trip() {
        let mut t = Tape::new();
        let m = Matrix::from_rows(&[&[1.0, 2.0]]);
        let v = t.leaf(m.clone());
        assert_eq!(t.value(v), &m);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn matmul_gradients_match_formula() {
        // loss = sum(A B); dA = 1 * B^T, dB = A^T * 1
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let c = t.matmul(a, b);
        let loss = t.sum_all(c);
        t.backward(loss);
        assert_eq!(
            t.grad(a),
            &Matrix::from_rows(&[&[11.0, 15.0], &[11.0, 15.0]])
        );
        assert_eq!(t.grad(b), &Matrix::from_rows(&[&[4.0, 4.0], &[6.0, 6.0]]));
    }

    #[test]
    fn chain_through_sigmoid() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.0]]));
        let y = t.sigmoid(x);
        let loss = t.sum_all(y);
        t.backward(loss);
        // σ'(0) = 0.25
        assert!((t.grad(x)[(0, 0)] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn diamond_reuse_accumulates() {
        // loss = sum(x*x + x) ; dx = 2x + 1
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[3.0]]));
        let sq = t.mul(x, x);
        let s = t.add(sq, x);
        let loss = t.sum_all(s);
        t.backward(loss);
        assert!((t.grad(x)[(0, 0)] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn gather_rows_scatters_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]));
        let g = t.gather_rows(x, Arc::new(vec![0, 0, 2]));
        let loss = t.sum_all(g);
        t.backward(loss);
        assert_eq!(
            t.grad(x),
            &Matrix::from_rows(&[&[2.0, 2.0], &[0.0, 0.0], &[1.0, 1.0]])
        );
    }

    #[test]
    fn aggregate_forward_and_backward() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let groups = Arc::new(RowGroups::from_nested(&[vec![(0, 0.25), (1, 0.75)]]));
        let agg = t.aggregate(x, groups);
        assert_eq!(t.value(agg), &Matrix::from_rows(&[&[0.25, 0.75]]));
        let loss = t.sum_all(agg);
        t.backward(loss);
        assert_eq!(
            t.grad(x),
            &Matrix::from_rows(&[&[0.25, 0.25], &[0.75, 0.75]])
        );
    }

    #[test]
    fn rowwise_dot_gradients() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[3.0, 4.0]]));
        let d = t.rowwise_dot(a, b);
        assert_eq!(t.value(d)[(0, 0)], 11.0);
        let loss = t.sum_all(d);
        t.backward(loss);
        assert_eq!(t.grad(a), &Matrix::from_rows(&[&[3.0, 4.0]]));
        assert_eq!(t.grad(b), &Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn neg_log_sigmoid_is_softplus_neg() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.0]]));
        let y = t.neg_log_sigmoid(x);
        assert!((t.value(y)[(0, 0)] - std::f64::consts::LN_2).abs() < 1e-12);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert!((t.grad(x)[(0, 0)] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn l2_normalize_grad_orthogonal_to_output() {
        // For unit-output y, the Jacobian projects out the y direction, so
        // grad(x) · y == 0 when upstream grad is arbitrary.
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[3.0, 4.0]]));
        let y = t.l2_normalize_rows(x);
        // loss = first component of y
        let pick = t.leaf(Matrix::from_rows(&[&[1.0], &[0.0]]));
        let first = t.matmul(y, pick);
        let loss = t.sum_all(first);
        t.backward(loss);
        let yv = t.value(y).row(0).to_vec();
        let gx = t.grad(x).row(0).to_vec();
        let dot = fis_linalg::vec_ops::dot(&yv, &gx);
        assert!(dot.abs() < 1e-12, "dot={dot}");
    }

    #[test]
    fn hcat_splits_gradient() {
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[2.0, 3.0]]));
        let h = t.hcat(a, b);
        let w = t.leaf(Matrix::from_rows(&[&[1.0], &[10.0], &[100.0]]));
        let y = t.matmul(h, w);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(a)[(0, 0)], 1.0);
        assert_eq!(t.grad(b), &Matrix::from_rows(&[&[10.0, 100.0]]));
    }

    #[test]
    fn add_row_broadcast_backward_sums_rows() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(3, 2));
        let b = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = t.add_row_broadcast(x, b);
        let loss = t.sum_all(y);
        t.backward(loss);
        assert_eq!(t.grad(b), &Matrix::from_rows(&[&[3.0, 3.0]]));
    }

    #[test]
    fn mean_all_divides_gradient() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::filled(2, 2, 1.0));
        let m = t.mean_all(x);
        t.backward(m);
        assert_eq!(t.grad(x), &Matrix::filled(2, 2, 0.25));
    }

    #[test]
    fn student_t_rows_are_distributions() {
        let z = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[5.0, 5.0]]);
        let mu = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0]]);
        let q = student_t_assignment(&z, &mu);
        for r in 0..3 {
            let s: f64 = q.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Nearest centroid gets the larger share.
        assert!(q[(0, 0)] > q[(0, 1)]);
        assert!(q[(2, 1)] > q[(2, 0)]);
    }

    #[test]
    fn dec_loss_zero_when_q_equals_p() {
        let mut t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[&[0.0, 0.0], &[4.0, 4.0]]));
        let mu = t.leaf(Matrix::from_rows(&[&[0.0, 0.0], &[4.0, 4.0]]));
        let q = student_t_assignment(t.value(z), t.value(mu));
        let loss = t.dec_loss(z, mu, Arc::new(q));
        assert!(t.scalar(loss).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scalar (1x1) loss")]
    fn backward_rejects_non_scalar() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        t.backward(x);
    }

    #[test]
    fn backward_twice_resets_grads() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[2.0]]));
        let y = t.square(x);
        let loss = t.sum_all(y);
        t.backward(loss);
        t.backward(loss);
        assert!((t.grad(x)[(0, 0)] - 4.0).abs() < 1e-12);
    }
}
