//! Finite-difference gradient verification.
//!
//! Used by this crate's tests (and downstream model tests) to confirm that
//! every backward rule matches a central-difference estimate of the true
//! derivative.

use fis_linalg::Matrix;

/// Result of a gradient check for one parameter.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric entries.
    pub max_abs_err: f64,
    /// Largest relative difference `|a - n| / max(1, |a|, |n|)`.
    pub max_rel_err: f64,
}

impl GradCheckReport {
    /// Whether both error measures fall under `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Checks the analytic gradient of a scalar function of several matrix
/// parameters against central finite differences.
///
/// `f` receives the current parameter values and must return
/// `(loss, gradients)` with one gradient per parameter, in order. The
/// function is re-evaluated `2 * Σ len(param)` times with perturbed inputs,
/// so keep parameters small in tests.
///
/// Returns one report per parameter.
///
/// # Panics
///
/// Panics if `f` returns a gradient count or shape that does not match
/// `params`.
pub fn check_gradients(
    params: &[Matrix],
    eps: f64,
    f: impl Fn(&[Matrix]) -> (f64, Vec<Matrix>),
) -> Vec<GradCheckReport> {
    let (_, analytic) = f(params);
    assert_eq!(
        analytic.len(),
        params.len(),
        "gradient count does not match parameter count"
    );
    let mut reports = Vec::with_capacity(params.len());
    for (pi, param) in params.iter().enumerate() {
        assert_eq!(
            analytic[pi].shape(),
            param.shape(),
            "gradient {pi} shape mismatch"
        );
        let mut max_abs = 0.0f64;
        let mut max_rel = 0.0f64;
        for idx in 0..param.len() {
            let mut plus = params.to_vec();
            let mut minus = params.to_vec();
            plus[pi].as_mut_slice()[idx] += eps;
            minus[pi].as_mut_slice()[idx] -= eps;
            let (lp, _) = f(&plus);
            let (lm, _) = f(&minus);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[pi].as_slice()[idx];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1.0);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
        reports.push(GradCheckReport {
            max_abs_err: max_abs,
            max_rel_err: max_rel,
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    #[test]
    fn catches_wrong_gradient() {
        let params = vec![Matrix::from_rows(&[&[2.0]])];
        let reports = check_gradients(&params, 1e-5, |p| {
            let loss = p[0][(0, 0)] * p[0][(0, 0)];
            // Deliberately wrong gradient (should be 2x).
            (loss, vec![Matrix::from_rows(&[&[1.0]])])
        });
        assert!(!reports[0].passes(1e-4));
    }

    #[test]
    fn passes_correct_gradient() {
        let params = vec![Matrix::from_rows(&[&[2.0]])];
        let reports = check_gradients(&params, 1e-5, |p| {
            let x = p[0][(0, 0)];
            (x * x, vec![Matrix::from_rows(&[&[2.0 * x]])])
        });
        assert!(reports[0].passes(1e-6));
    }

    #[test]
    fn verifies_tape_two_layer_network() {
        // loss = mean( σ(x W1) W2 ) with all parameters checked.
        let x0 = Matrix::from_rows(&[&[0.3, -0.5], &[0.1, 0.8]]);
        let w1 = Matrix::from_rows(&[&[0.2, -0.1, 0.4], &[0.7, 0.3, -0.6]]);
        let w2 = Matrix::from_rows(&[&[0.5], &[-0.2], &[0.9]]);
        let params = vec![x0, w1, w2];
        let reports = check_gradients(&params, 1e-6, |p| {
            let mut t = Tape::new();
            let x = t.leaf(p[0].clone());
            let a = t.leaf(p[1].clone());
            let b = t.leaf(p[2].clone());
            let h = t.matmul(x, a);
            let h = t.sigmoid(h);
            let y = t.matmul(h, b);
            let loss = t.mean_all(y);
            t.backward(loss);
            (
                t.scalar(loss),
                vec![t.grad(x).clone(), t.grad(a).clone(), t.grad(b).clone()],
            )
        });
        for (i, r) in reports.iter().enumerate() {
            assert!(r.passes(1e-6), "param {i}: {r:?}");
        }
    }
}
