//! Tape-based reverse-mode automatic differentiation over dense matrices.
//!
//! This crate is the training substrate for every learned model in the
//! FIS-ONE reproduction: the RF-GNN encoder (`fis-gnn`) and the SDCN / DAEGC
//! baselines (`fis-baselines`). It provides:
//!
//! - [`Tape`]: a single-use computation graph. Operations push nodes and
//!   return [`Var`] handles; [`Tape::backward`] runs reverse-mode
//!   accumulation from a scalar loss.
//! - [`optim`]: SGD (with momentum) and Adam optimizers keyed by parameter
//!   name.
//! - [`gradcheck`]: central finite-difference gradient verification used by
//!   both unit and property tests.
//!
//! The op set is deliberately tailored to the models in the paper: dense
//! matmul, elementwise nonlinearities, row gathering/scattering for
//! minibatch GNN aggregation, row-wise dot products for the skip-gram loss,
//! ℓ2 row normalization (RF-GNN normalizes each hop's representation), and a
//! DEC-style clustering-loss op for the deep-clustering baselines.
//!
//! # Example
//!
//! ```
//! use fis_autograd::Tape;
//! use fis_linalg::Matrix;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
//! let w = tape.leaf(Matrix::from_rows(&[&[0.5], &[-0.5]]));
//! let y = tape.matmul(x, w);
//! let loss = tape.sum_all(y);
//! tape.backward(loss);
//! // dloss/dw = x^T
//! assert_eq!(tape.grad(w).row(0), &[1.0]);
//! assert_eq!(tape.grad(w).row(1), &[2.0]);
//! ```

pub mod gradcheck;
pub mod optim;
pub mod tape;

pub use optim::{Adam, Sgd};
pub use tape::{Tape, Var};
