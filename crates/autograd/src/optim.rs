//! First-order optimizers keyed by parameter name.
//!
//! Parameters live outside the tape (plain [`Matrix`] values owned by the
//! model). Each training step builds a fresh [`crate::Tape`], reads the
//! gradients, and hands `(param, grad)` pairs to an optimizer.

use std::collections::HashMap;

use fis_linalg::Matrix;

/// Plain stochastic gradient descent with optional momentum.
///
/// # Example
///
/// ```
/// use fis_autograd::Sgd;
/// use fis_linalg::Matrix;
///
/// let mut opt = Sgd::new(0.1).with_momentum(0.9);
/// let mut w = Matrix::filled(1, 1, 1.0);
/// let g = Matrix::filled(1, 1, 1.0);
/// opt.step("w", &mut w, &g);
/// assert!((w[(0, 0)] - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<String, Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr` and no momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Enables classical momentum with coefficient `m` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside `[0, 1)`.
    pub fn with_momentum(mut self, m: f64) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum must be in [0, 1)");
        self.momentum = m;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Sets the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update to `param` given `grad`.
    ///
    /// # Panics
    ///
    /// Panics if `param` and `grad` shapes differ.
    pub fn step(&mut self, key: &str, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "sgd shape mismatch for {key}");
        if self.momentum == 0.0 {
            param.axpy(-self.lr, grad);
            return;
        }
        let vel = self
            .velocity
            .entry(key.to_owned())
            .or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        for (v, g) in vel.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *v = self.momentum * *v + g;
        }
        param.axpy(-self.lr, vel);
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
///
/// State (first/second moment estimates and step counters) is tracked per
/// parameter key, so a single `Adam` instance can drive a whole model.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: HashMap<String, Matrix>,
    v: HashMap<String, Matrix>,
    t: HashMap<String, u64>,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional defaults
    /// `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: HashMap::new(),
            v: HashMap::new(),
            t: HashMap::new(),
        }
    }

    /// Overrides the exponential decay rates.
    ///
    /// # Panics
    ///
    /// Panics if either beta is outside `[0, 1)`.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Sets the learning rate.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one Adam update to `param` given `grad`.
    ///
    /// # Panics
    ///
    /// Panics if `param` and `grad` shapes differ.
    pub fn step(&mut self, key: &str, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "adam shape mismatch for {key}");
        let (rows, cols) = param.shape();
        let m = self
            .m
            .entry(key.to_owned())
            .or_insert_with(|| Matrix::zeros(rows, cols));
        let v = self
            .v
            .entry(key.to_owned())
            .or_insert_with(|| Matrix::zeros(rows, cols));
        let t = self.t.entry(key.to_owned()).or_insert(0);
        *t += 1;
        let b1t = 1.0 - self.beta1.powi(*t as i32);
        let b2t = 1.0 - self.beta2.powi(*t as i32);
        for ((p, g), (mi, vi)) in param
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / b1t;
            let v_hat = *vi / b2t;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(w) = (w - 3)^2 should converge to w = 3.
    fn quadratic_grad(w: &Matrix) -> Matrix {
        w.map(|x| 2.0 * (x - 3.0))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut w = Matrix::filled(1, 1, 0.0);
        for _ in 0..100 {
            let g = quadratic_grad(&w);
            opt.step("w", &mut w, &g);
        }
        assert!((w[(0, 0)] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05).with_momentum(0.9);
        let mut w = Matrix::filled(1, 1, 0.0);
        for _ in 0..200 {
            let g = quadratic_grad(&w);
            opt.step("w", &mut w, &g);
        }
        assert!((w[(0, 0)] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let mut w = Matrix::filled(1, 1, -5.0);
        for _ in 0..300 {
            let g = quadratic_grad(&w);
            opt.step("w", &mut w, &g);
        }
        assert!((w[(0, 0)] - 3.0).abs() < 1e-3, "w={}", w[(0, 0)]);
    }

    #[test]
    fn adam_handles_multiple_params_independently() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::filled(1, 1, 0.0);
        let mut b = Matrix::filled(2, 2, 0.0);
        for _ in 0..200 {
            let ga = quadratic_grad(&a);
            let gb = quadratic_grad(&b);
            opt.step("a", &mut a, &ga);
            opt.step("b", &mut b, &gb);
        }
        assert!((a[(0, 0)] - 3.0).abs() < 1e-2);
        assert!((b[(1, 1)] - 3.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_shape_mismatch() {
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::zeros(1, 2);
        let g = Matrix::zeros(2, 1);
        opt.step("w", &mut w, &g);
    }
}
