//! Property-based finite-difference verification of every tape operation.

use std::sync::Arc;

use fis_autograd::gradcheck::check_gradients;
use fis_autograd::tape::student_t_assignment;
use fis_autograd::Tape;
use fis_linalg::Matrix;
use proptest::prelude::*;

fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0..2.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Runs a gradient check for a loss expressed over two leaf matrices.
fn check2(
    a: &Matrix,
    b: &Matrix,
    build: impl Fn(&mut Tape, fis_autograd::Var, fis_autograd::Var) -> fis_autograd::Var,
) -> bool {
    let params = vec![a.clone(), b.clone()];
    let reports = check_gradients(&params, 1e-6, |p| {
        let mut t = Tape::new();
        let x = t.leaf(p[0].clone());
        let y = t.leaf(p[1].clone());
        let out = build(&mut t, x, y);
        let loss = t.mean_all(out);
        t.backward(loss);
        (t.scalar(loss), vec![t.grad(x).clone(), t.grad(y).clone()])
    });
    reports.iter().all(|r| r.passes(1e-5))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_grad(a in mat(2, 3), b in mat(3, 2)) {
        let ok = check2(&a, &b, |t, x, y| t.matmul(x, y));
        prop_assert!(ok);
    }

    #[test]
    fn add_sub_mul_grads(a in mat(2, 2), b in mat(2, 2)) {
        let ok = check2(&a, &b, |t, x, y| t.add(x, y));
        prop_assert!(ok);
        let ok = check2(&a, &b, |t, x, y| t.sub(x, y));
        prop_assert!(ok);
        let ok = check2(&a, &b, |t, x, y| t.mul(x, y));
        prop_assert!(ok);
    }

    #[test]
    fn hcat_grad(a in mat(2, 2), b in mat(2, 3)) {
        let ok = check2(&a, &b, |t, x, y| {
            let h = t.hcat(x, y);
            t.square(h)
        });
        prop_assert!(ok);
    }

    #[test]
    fn sigmoid_tanh_relu_grads(a in mat(2, 3), b in mat(2, 3)) {
        let ok = check2(&a, &b, |t, x, y| {
            let s = t.sigmoid(x);
            let u = t.tanh(y);
            t.mul(s, u)
        });
        prop_assert!(ok);
    }

    #[test]
    fn rowwise_dot_grad(a in mat(3, 4), b in mat(3, 4)) {
        let ok = check2(&a, &b, |t, x, y| t.rowwise_dot(x, y));
        prop_assert!(ok);
    }

    #[test]
    fn neg_log_sigmoid_grad(a in mat(2, 2), b in mat(2, 2)) {
        let ok = check2(&a, &b, |t, x, y| {
            let d = t.rowwise_dot(x, y);
            t.neg_log_sigmoid(d)
        });
        prop_assert!(ok);
    }

    #[test]
    fn add_row_broadcast_grad(a in mat(3, 2), b in mat(1, 2)) {
        let ok = check2(&a, &b, |t, x, y| t.add_row_broadcast(x, y));
        prop_assert!(ok);
    }

    #[test]
    fn scale_and_square_grad(a in mat(2, 2), b in mat(2, 2)) {
        let ok = check2(&a, &b, |t, x, y| {
            let s = t.scale(x, 2.5);
            let q = t.square(y);
            t.add(s, q)
        });
        prop_assert!(ok);
    }

    #[test]
    fn aggregate_grad(a in mat(4, 3), b in mat(2, 3)) {
        let groups = Arc::new(fis_autograd::tape::RowGroups::from_nested(&[
            vec![(0usize, 0.3), (1, 0.7)],
            vec![(2usize, 0.5), (3, 0.25), (0, 0.25)],
        ]));
        let ok = check2(&a, &b, move |t, x, y| {
            let agg = t.aggregate(x, Arc::clone(&groups));
            t.mul(agg, y)
        });
        prop_assert!(ok);
    }

    #[test]
    fn gather_rows_grad(a in mat(4, 2), b in mat(3, 2)) {
        let idx = Arc::new(vec![0usize, 2, 2]);
        let ok = check2(&a, &b, move |t, x, y| {
            let g = t.gather_rows(x, Arc::clone(&idx));
            t.mul(g, y)
        });
        prop_assert!(ok);
    }
}

// ℓ2 normalization has a kink at the zero vector, so keep inputs away from it.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn l2_normalize_grad(v in proptest::collection::vec(0.5..2.0f64, 6)) {
        let a = Matrix::from_vec(2, 3, v);
        let b = Matrix::filled(2, 3, 0.7);
        let ok = check2(&a, &b, |t, x, y| {
            let n = t.l2_normalize_rows(x);
            t.mul(n, y)
        });
        prop_assert!(ok);
    }

    #[test]
    fn dec_loss_grad(zv in proptest::collection::vec(-1.5..1.5f64, 6),
                     mv in proptest::collection::vec(-1.5..1.5f64, 4)) {
        let z0 = Matrix::from_vec(3, 2, zv);
        let mu0 = Matrix::from_vec(2, 2, mv);
        // Target distribution: sharpened soft assignment at the initial point,
        // held fixed during the check (as in DEC training).
        let q = student_t_assignment(&z0, &mu0);
        let p = Arc::new(sharpen(&q));
        let params = vec![z0, mu0];
        let reports = check_gradients(&params, 1e-6, |pr| {
            let mut t = Tape::new();
            let z = t.leaf(pr[0].clone());
            let mu = t.leaf(pr[1].clone());
            let loss = t.dec_loss(z, mu, Arc::clone(&p));
            t.backward(loss);
            (t.scalar(loss), vec![t.grad(z).clone(), t.grad(mu).clone()])
        });
        for r in &reports {
            prop_assert!(r.passes(1e-4), "{r:?}");
        }
    }
}

/// DEC target distribution: `p_ij ∝ q_ij² / Σ_i q_ij`, rows renormalized.
fn sharpen(q: &Matrix) -> Matrix {
    let (n, k) = q.shape();
    let col_sums: Vec<f64> = (0..k).map(|j| (0..n).map(|i| q[(i, j)]).sum()).collect();
    let mut p = Matrix::zeros(n, k);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..k {
            let v = q[(i, j)] * q[(i, j)] / col_sums[j].max(1e-12);
            p[(i, j)] = v;
            row_sum += v;
        }
        for j in 0..k {
            p[(i, j)] /= row_sum.max(1e-12);
        }
    }
    p
}
