//! The newline-delimited JSON request/response protocol.
//!
//! One request per line in, one response per line out, in request order.
//! Every request is an object with an `"op"` field and op-specific
//! payload; an optional `"id"` field (any JSON value) is echoed verbatim
//! on the response so pipelined clients can correlate. See the crate
//! docs for the full wire reference.
//!
//! # Versioned envelope
//!
//! An optional `"v"` field selects the protocol version. A frame with no
//! `"v"` key is a **v1** frame and is answered byte-for-byte exactly as
//! before versioning existed — same fields, same error texts. `"v": 2`
//! unlocks the v2 operations (`extend`, `swap`, `metrics`) and stamps
//! `"v": 2` onto every response, success or error. Any other `"v"` is a
//! typed `protocol` error. Version gating happens at *op registration*:
//! each entry in the [op table](self) declares the first version that
//! accepts it, so a v1 client sending `extend` gets the v1 unknown-op
//! error, listing only the ops v1 knows about.
//!
//! # Trace field
//!
//! Any frame may carry an optional `"trace"` object —
//! `{"trace_id":"<16 hex>","span_id":"<16 hex>"}` — identifying the
//! distributed trace the request belongs to (injected by `fis-router`,
//! see [`fis_obs`]). The field decorates observability only:
//! it never changes the answer, is never echoed on responses, and a
//! malformed trace object is ignored rather than failing the request.
//!
//! Requests:
//!
//! ```json
//! {"op": "assign",       "building": "hq", "scan": {"id": 7, "readings": [["aa:..", -61.5]]}}
//! {"op": "assign_batch", "building": "hq", "scans": [{...}, {...}]}
//! {"op": "load",         "building": "hq"}
//! {"op": "evict",        "building": "hq"}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! {"v": 2, "op": "extend", "building": "hq", "scans": [{...}, {...}]}
//! {"v": 2, "op": "swap",   "building": "hq"}
//! {"v": 2, "op": "metrics"}
//! ```
//!
//! Responses always carry `"ok"` (and echo `"op"`/`"id"` when they were
//! readable): `{"ok":true,"op":"assign","floor":3,...}` on success,
//! `{"ok":false,"op":...,"error":{"kind":"...","message":"..."}}` on
//! failure. Malformed frames produce a `protocol` error response — never
//! a dropped connection, never a crash.

use fis_obs::TraceContext;
use fis_types::json::{FromJson, Json};
use fis_types::SignalSample;

use crate::error::ServeError;

/// The newest protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 2;

/// A decoded request operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Label one scan against one building's model.
    Assign {
        /// Registry key of the model to serve from.
        building: String,
        /// The scan to label.
        scan: SignalSample,
    },
    /// Label a batch of scans against one building's model, fanned out
    /// over the thread budget; per-scan results in input order.
    AssignBatch {
        /// Registry key of the model to serve from.
        building: String,
        /// The scans to label, order preserved in the response.
        scans: Vec<SignalSample>,
    },
    /// Eagerly load (or hot-reload) a building's artifact.
    Load {
        /// Registry key to load.
        building: String,
    },
    /// Drop a building's model from the cache (metrics survive).
    Evict {
        /// Registry key to evict.
        building: String,
    },
    /// Grow a building's model with new reference scans and atomically
    /// publish the extended artifact (v2).
    Extend {
        /// Registry key of the model to extend.
        building: String,
        /// The reference scans to append (self-labeled by the model).
        scans: Vec<SignalSample>,
    },
    /// Force the next artifact generation live now: drop the cached
    /// model (and its answer cache) and reload from disk (v2).
    Swap {
        /// Registry key to swap.
        building: String,
    },
    /// Report global + per-model serving metrics.
    Stats,
    /// Export metrics in Prometheus text format (v2).
    Metrics,
    /// Stop the daemon after responding.
    Shutdown,
}

impl Request {
    /// The wire name of this operation.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Assign { .. } => "assign",
            Request::AssignBatch { .. } => "assign_batch",
            Request::Load { .. } => "load",
            Request::Evict { .. } => "evict",
            Request::Extend { .. } => "extend",
            Request::Swap { .. } => "swap",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A decoded request frame: the operation plus the correlation id,
/// negotiated protocol version, and op string to echo.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The client's correlation id, echoed verbatim when present.
    pub id: Option<Json>,
    /// The protocol version this frame negotiated (1 when no `"v"` key).
    pub version: u8,
    /// The distributed-trace context from the optional `"trace"` field.
    /// Observability-only: never echoed, never affects the answer.
    pub trace: Option<TraceContext>,
    /// The decoded operation.
    pub request: Request,
}

/// What could be salvaged from an unparseable or invalid frame, so the
/// error response still echoes `id`/`op` when they were readable.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// Correlation id, if the frame parsed far enough to read one.
    pub id: Option<Json>,
    /// The `op` string, if the frame parsed far enough to read one.
    pub op: Option<String>,
    /// The version to answer with (1 when the frame never negotiated
    /// one, so error responses to v1 frames stay byte-identical).
    pub version: u8,
    /// The protocol error to report.
    pub error: ServeError,
}

/// One wire operation: its name, the first protocol version that
/// accepts it, and its payload parser.
///
/// The table ([`OPS`]) is the single registration point for query and
/// mutation ops alike: [`parse_frame`] dispatches through it, and the
/// unknown-op error text enumerates exactly the names the negotiated
/// version admits — so adding an op is one table row, not a scattered
/// match-arm edit.
struct OpSpec {
    name: &'static str,
    min_version: u8,
    parse: fn(&Json) -> Result<Request, ServeError>,
}

/// Declarative op registry, in wire-documentation order. v1 ops first so
/// the v1 unknown-op message renders its historical text verbatim.
const OPS: &[OpSpec] = &[
    OpSpec {
        name: "assign",
        min_version: 1,
        parse: parse_assign,
    },
    OpSpec {
        name: "assign_batch",
        min_version: 1,
        parse: parse_assign_batch,
    },
    OpSpec {
        name: "load",
        min_version: 1,
        parse: parse_load,
    },
    OpSpec {
        name: "evict",
        min_version: 1,
        parse: parse_evict,
    },
    OpSpec {
        name: "stats",
        min_version: 1,
        parse: |_| Ok(Request::Stats),
    },
    OpSpec {
        name: "shutdown",
        min_version: 1,
        parse: |_| Ok(Request::Shutdown),
    },
    OpSpec {
        name: "extend",
        min_version: 2,
        parse: parse_extend,
    },
    OpSpec {
        name: "swap",
        min_version: 2,
        parse: parse_swap,
    },
    OpSpec {
        name: "metrics",
        min_version: 2,
        parse: |_| Ok(Request::Metrics),
    },
];

/// The op names a protocol version admits, rendered as an English list
/// (`a, b, or c`) for the unknown-op error.
fn expected_ops(version: u8) -> String {
    let names: Vec<&str> = OPS
        .iter()
        .filter(|spec| spec.min_version <= version)
        .map(|spec| spec.name)
        .collect();
    match names.split_last() {
        Some((last, rest)) if !rest.is_empty() => format!("{}, or {last}", rest.join(", ")),
        Some((last, _)) => (*last).to_string(),
        None => String::new(),
    }
}

fn building_of(json: &Json) -> Result<String, ServeError> {
    let building = json
        .get("building")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::Protocol("request needs a string `building` field".into()))?;
    if building.is_empty() {
        return Err(ServeError::Protocol("`building` must be non-empty".into()));
    }
    Ok(building.to_owned())
}

fn scan_of(value: &Json) -> Result<SignalSample, ServeError> {
    SignalSample::from_json(value).map_err(|e| ServeError::Protocol(format!("bad scan: {e}")))
}

fn scans_of(json: &Json, op: &str) -> Result<Vec<SignalSample>, ServeError> {
    json.get("scans")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Protocol(format!("{op} needs a `scans` array")))
        .and_then(|arr| arr.iter().map(scan_of).collect())
}

fn parse_assign(json: &Json) -> Result<Request, ServeError> {
    Ok(Request::Assign {
        building: building_of(json)?,
        scan: json
            .get("scan")
            .ok_or_else(|| ServeError::Protocol("assign needs a `scan` object".into()))
            .and_then(scan_of)?,
    })
}

fn parse_assign_batch(json: &Json) -> Result<Request, ServeError> {
    Ok(Request::AssignBatch {
        building: building_of(json)?,
        scans: scans_of(json, "assign_batch")?,
    })
}

fn parse_load(json: &Json) -> Result<Request, ServeError> {
    Ok(Request::Load {
        building: building_of(json)?,
    })
}

fn parse_evict(json: &Json) -> Result<Request, ServeError> {
    Ok(Request::Evict {
        building: building_of(json)?,
    })
}

fn parse_extend(json: &Json) -> Result<Request, ServeError> {
    Ok(Request::Extend {
        building: building_of(json)?,
        scans: scans_of(json, "extend")?,
    })
}

fn parse_swap(json: &Json) -> Result<Request, ServeError> {
    Ok(Request::Swap {
        building: building_of(json)?,
    })
}

/// Reads the envelope version: no `"v"` key is v1, `"v": 1` / `"v": 2`
/// select explicitly, anything else is a typed protocol error.
fn version_of(json: &Json) -> Result<u8, ServeError> {
    match json.get("v") {
        None => Ok(1),
        Some(v) => match v.as_usize() {
            Some(1) => Ok(1),
            Some(2) => Ok(2),
            _ => Err(ServeError::Protocol(format!(
                "unsupported protocol version {v} (this daemon speaks 1 and {PROTOCOL_VERSION})"
            ))),
        },
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`FrameError`] carrying whatever correlation info was
/// readable plus the typed protocol error.
pub fn parse_frame(line: &str) -> Result<Frame, Box<FrameError>> {
    let json = Json::parse(line).map_err(|e| {
        Box::new(FrameError {
            id: None,
            op: None,
            version: 1,
            error: ServeError::Protocol(format!("malformed frame: {e}")),
        })
    })?;
    let id = json.get("id").cloned();
    let version = match version_of(&json) {
        Ok(version) => version,
        Err(error) => {
            return Err(Box::new(FrameError {
                id,
                op: json.get("op").and_then(Json::as_str).map(str::to_owned),
                version: 1,
                error,
            }))
        }
    };
    let fail = |op: Option<String>, error: ServeError| {
        Box::new(FrameError {
            id: id.clone(),
            op,
            version,
            error,
        })
    };
    let Some(op) = json.get("op").and_then(Json::as_str).map(str::to_owned) else {
        return Err(fail(
            None,
            ServeError::Protocol("request needs a string `op` field".into()),
        ));
    };
    let Some(spec) = OPS
        .iter()
        .find(|spec| spec.name == op && spec.min_version <= version)
    else {
        return Err(fail(
            Some(op.clone()),
            ServeError::Protocol(format!(
                "unknown op `{op}` (expected {})",
                expected_ops(version)
            )),
        ));
    };
    let request = (spec.parse)(&json).map_err(|e| fail(Some(op.clone()), e))?;
    // Observability decoration only: a malformed trace object must never
    // fail a request, so `from_json` degrading to `None` is the contract.
    let trace = json.get("trace").and_then(TraceContext::from_json);
    Ok(Frame {
        id,
        version,
        trace,
        request,
    })
}

/// One per-scan slot in an `assign_batch` response: the echoed scan id
/// plus its floor or typed per-scan error.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRow {
    /// The scan's id, echoed so clients can correlate out-of-band.
    pub scan_id: usize,
    /// The assigned floor index, or why this scan failed.
    pub result: Result<usize, ServeError>,
}

/// A typed success response. [`Response::to_json`] is the single
/// rendering point for every op's wire shape, so the v1 byte layout and
/// the v2 `"v"` stamp cannot drift between dispatch sites.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One labeled scan.
    Assign {
        /// The building served from.
        building: String,
        /// The scan's id, echoed.
        scan_id: usize,
        /// The assigned floor index.
        floor: usize,
    },
    /// A labeled batch, per-scan results in input order.
    AssignBatch {
        /// The building served from.
        building: String,
        /// Per-scan results in input order.
        rows: Vec<BatchRow>,
    },
    /// An artifact load (or cache hit).
    Load {
        /// The building loaded.
        building: String,
        /// Floors in the model.
        floors: usize,
        /// Reference scans in the model.
        scans: usize,
        /// `"hit"`, `"miss"`, or `"reload"`.
        fetch: &'static str,
    },
    /// A cache eviction.
    Evict {
        /// The building evicted.
        building: String,
        /// Whether a cached model was actually dropped.
        evicted: bool,
    },
    /// A model extension (v2): the [`fis_core::ExtensionReport`] fields
    /// plus the building, after the extended artifact was published.
    Extend {
        /// The building extended.
        building: String,
        /// Reference scans appended.
        appended: usize,
        /// Scans skipped (no overlap with the base vocabulary).
        skipped: usize,
        /// MACs added to the serving vocabulary.
        new_macs: usize,
        /// Reference scans in the model after extension.
        total_scans: usize,
        /// MACs in the model after extension.
        total_macs: usize,
    },
    /// A hot swap (v2): the freshly (re)loaded artifact's shape.
    Swap {
        /// The building swapped.
        building: String,
        /// Floors in the now-live model.
        floors: usize,
        /// Reference scans in the now-live model (including extension).
        scans: usize,
        /// Whether a cached generation was dropped to make way.
        evicted: bool,
    },
    /// The metrics payload.
    Stats {
        /// The rendered metrics object.
        stats: Json,
    },
    /// The Prometheus text-format exposition (v2).
    Metrics {
        /// The exposition body (`# TYPE` lines etc.), as one string.
        metrics: String,
    },
    /// Acknowledges shutdown.
    Shutdown,
}

impl Response {
    /// The wire name of the op this response answers.
    pub fn op(&self) -> &'static str {
        match self {
            Response::Assign { .. } => "assign",
            Response::AssignBatch { .. } => "assign_batch",
            Response::Load { .. } => "load",
            Response::Evict { .. } => "evict",
            Response::Extend { .. } => "extend",
            Response::Swap { .. } => "swap",
            Response::Stats { .. } => "stats",
            Response::Metrics { .. } => "metrics",
            Response::Shutdown => "shutdown",
        }
    }

    /// Renders the wire form for the negotiated protocol version.
    pub fn to_json(&self, version: u8, id: Option<&Json>) -> Json {
        let num = |n: usize| Json::Num(n as f64);
        let fields: Vec<(&'static str, Json)> = match self {
            Response::Assign {
                building,
                scan_id,
                floor,
            } => vec![
                ("building", Json::Str(building.clone())),
                ("scan_id", num(*scan_id)),
                ("floor", num(*floor)),
            ],
            Response::AssignBatch { building, rows } => {
                let failures = rows.iter().filter(|row| row.result.is_err()).count();
                let rendered: Vec<Json> = rows
                    .iter()
                    .map(|row| {
                        let scan_id = ("scan_id", num(row.scan_id));
                        match &row.result {
                            Ok(floor) => Json::obj([scan_id, ("floor", num(*floor))]),
                            Err(e) => Json::obj([scan_id, ("error", e.to_json())]),
                        }
                    })
                    .collect();
                vec![
                    ("building", Json::Str(building.clone())),
                    ("count", num(rendered.len())),
                    ("failures", num(failures)),
                    ("results", Json::Arr(rendered)),
                ]
            }
            Response::Load {
                building,
                floors,
                scans,
                fetch,
            } => vec![
                ("building", Json::Str(building.clone())),
                ("floors", num(*floors)),
                ("scans", num(*scans)),
                ("fetch", Json::Str((*fetch).to_owned())),
            ],
            Response::Evict { building, evicted } => vec![
                ("building", Json::Str(building.clone())),
                ("evicted", Json::Bool(*evicted)),
            ],
            Response::Extend {
                building,
                appended,
                skipped,
                new_macs,
                total_scans,
                total_macs,
            } => vec![
                ("building", Json::Str(building.clone())),
                ("appended", num(*appended)),
                ("skipped", num(*skipped)),
                ("new_macs", num(*new_macs)),
                ("total_scans", num(*total_scans)),
                ("total_macs", num(*total_macs)),
            ],
            Response::Swap {
                building,
                floors,
                scans,
                evicted,
            } => vec![
                ("building", Json::Str(building.clone())),
                ("floors", num(*floors)),
                ("scans", num(*scans)),
                ("evicted", Json::Bool(*evicted)),
            ],
            Response::Stats { stats } => vec![("stats", stats.clone())],
            Response::Metrics { metrics } => vec![("metrics", Json::Str(metrics.clone()))],
            Response::Shutdown => vec![],
        };
        ok_response(version, self.op(), id, fields)
    }
}

/// Stamps `"v": 2` onto a v2 response object; v1 responses carry no
/// version key, preserving the pre-envelope byte layout.
fn stamp_version(obj: &mut std::collections::BTreeMap<String, Json>, version: u8) {
    if version >= 2 {
        obj.insert("v".to_owned(), Json::Num(f64::from(version)));
    }
}

/// Builds a success response: `{"ok":true,"op":...}` plus `fields`,
/// echoing `id` when present and stamping `"v"` on v2+ frames. Keys are
/// sorted by the JSON writer, so the wire form is deterministic.
pub fn ok_response(
    version: u8,
    op: &str,
    id: Option<&Json>,
    fields: impl IntoIterator<Item = (&'static str, Json)>,
) -> Json {
    let mut obj = match Json::obj(fields) {
        Json::Obj(m) => m,
        _ => unreachable!("Json::obj returns Obj"),
    };
    obj.insert("ok".to_owned(), Json::Bool(true));
    obj.insert("op".to_owned(), Json::Str(op.to_owned()));
    if let Some(id) = id {
        obj.insert("id".to_owned(), id.clone());
    }
    stamp_version(&mut obj, version);
    Json::Obj(obj)
}

/// Builds an error response: `{"ok":false,"error":{...}}`, echoing
/// `op`/`id` when they were readable and stamping `"v"` on v2+ frames.
pub fn error_response(
    version: u8,
    op: Option<&str>,
    id: Option<&Json>,
    error: &ServeError,
) -> Json {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("ok".to_owned(), Json::Bool(false));
    obj.insert("error".to_owned(), error.to_json());
    if let Some(op) = op {
        obj.insert("op".to_owned(), Json::Str(op.to_owned()));
    }
    if let Some(id) = id {
        obj.insert("id".to_owned(), id.clone());
    }
    stamp_version(&mut obj, version);
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let assign = parse_frame(
            r#"{"op":"assign","building":"hq","scan":{"id":1,"readings":[["00:00:00:00:00:01",-60.0]]}}"#,
        )
        .unwrap();
        assert!(matches!(assign.request, Request::Assign { .. }));
        assert_eq!(assign.request.op(), "assign");
        assert_eq!(assign.version, 1);

        let batch = parse_frame(
            r#"{"id":9,"op":"assign_batch","building":"hq","scans":[{"id":1,"readings":[]}]}"#,
        )
        .unwrap();
        assert_eq!(batch.id, Some(Json::Num(9.0)));
        assert!(matches!(
            batch.request,
            Request::AssignBatch { ref scans, .. } if scans.len() == 1
        ));

        for (line, op) in [
            (r#"{"op":"load","building":"b"}"#, "load"),
            (r#"{"op":"evict","building":"b"}"#, "evict"),
            (r#"{"op":"stats"}"#, "stats"),
            (r#"{"op":"shutdown"}"#, "shutdown"),
            (
                r#"{"v":2,"op":"extend","building":"b","scans":[]}"#,
                "extend",
            ),
            (r#"{"v":2,"op":"swap","building":"b"}"#, "swap"),
            (r#"{"v":2,"op":"metrics"}"#, "metrics"),
        ] {
            assert_eq!(parse_frame(line).unwrap().request.op(), op);
        }
    }

    #[test]
    fn malformed_json_is_protocol_error_without_id() {
        let err = parse_frame(r#"{"op": "assign", "build"#).unwrap_err();
        assert_eq!(err.error.kind(), "protocol");
        assert_eq!(err.id, None);
        assert_eq!(err.op, None);
        assert_eq!(err.version, 1);
    }

    #[test]
    fn bad_shape_still_echoes_id_and_op() {
        let err = parse_frame(r#"{"id":"req-3","op":"assign","building":"hq"}"#).unwrap_err();
        assert_eq!(err.error.kind(), "protocol");
        assert_eq!(err.id, Some(Json::Str("req-3".into())));
        assert_eq!(err.op.as_deref(), Some("assign"));
        assert!(err.error.message().contains("scan"));
    }

    #[test]
    fn unknown_op_is_typed() {
        let err = parse_frame(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.error.kind(), "protocol");
        assert!(err.error.message().contains("frobnicate"));
    }

    #[test]
    fn v1_unknown_op_text_is_frozen() {
        // The exact pre-envelope message: v1 clients must see an
        // unchanged wire, including this string.
        let err = parse_frame(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(
            err.error.message(),
            "unknown op `frobnicate` (expected assign, assign_batch, load, evict, \
             stats, or shutdown)"
        );
    }

    #[test]
    fn v2_ops_are_invisible_to_v1_frames() {
        for op in ["extend", "swap", "metrics"] {
            let err = parse_frame(&format!(r#"{{"op":"{op}","building":"b"}}"#)).unwrap_err();
            assert_eq!(err.error.kind(), "protocol");
            assert!(
                err.error.message().contains(&format!("unknown op `{op}`")),
                "v1 must treat `{op}` as unknown: {}",
                err.error.message()
            );
            assert!(
                !err.error.message().contains("swap,"),
                "v1 error text must not advertise v2 ops"
            );
        }
    }

    #[test]
    fn v2_unknown_op_lists_v2_ops() {
        let err = parse_frame(r#"{"v":2,"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(
            err.error.message(),
            "unknown op `frobnicate` (expected assign, assign_batch, load, evict, \
             stats, shutdown, extend, swap, or metrics)"
        );
    }

    #[test]
    fn trace_field_parses_and_malformed_trace_is_ignored() {
        let framed = parse_frame(
            r#"{"op":"stats","trace":{"trace_id":"0123456789abcdef","span_id":"fedcba9876543210"}}"#,
        )
        .unwrap();
        assert_eq!(
            framed.trace,
            Some(TraceContext {
                trace_id: 0x0123_4567_89ab_cdef,
                span_id: 0xfedc_ba98_7654_3210,
            })
        );
        // v1 frames carry it too (decoration, not an op), and garbage
        // degrades to None without failing the frame.
        assert_eq!(framed.version, 1);
        for line in [
            r#"{"op":"stats","trace":{"trace_id":"zz","span_id":"00"}}"#,
            r#"{"op":"stats","trace":"not an object"}"#,
            r#"{"op":"stats"}"#,
        ] {
            let framed = parse_frame(line).unwrap();
            assert_eq!(framed.trace, None, "{line}");
            assert_eq!(framed.request, Request::Stats);
        }
    }

    #[test]
    fn unsupported_version_is_typed_and_echoes_correlation() {
        for line in [
            r#"{"v":3,"op":"stats","id":7}"#,
            r#"{"v":0,"op":"stats","id":7}"#,
            r#"{"v":"two","op":"stats","id":7}"#,
        ] {
            let err = parse_frame(line).unwrap_err();
            assert_eq!(err.error.kind(), "protocol", "line {line}");
            assert!(err.error.message().contains("version"));
            assert_eq!(err.id, Some(Json::Num(7.0)));
            assert_eq!(err.op.as_deref(), Some("stats"));
        }
    }

    #[test]
    fn explicit_v1_and_v2_both_parse_v1_ops() {
        let v1 = parse_frame(r#"{"v":1,"op":"stats"}"#).unwrap();
        assert_eq!(v1.version, 1);
        let v2 = parse_frame(r#"{"v":2,"op":"stats"}"#).unwrap();
        assert_eq!(v2.version, 2);
    }

    #[test]
    fn missing_building_is_typed() {
        let err = parse_frame(r#"{"op":"load"}"#).unwrap_err();
        assert_eq!(err.error.kind(), "protocol");
        assert!(err.error.message().contains("building"));
    }

    #[test]
    fn responses_are_deterministic_lines() {
        let ok = ok_response(
            1,
            "load",
            Some(&Json::Num(1.0)),
            [("floors", Json::Num(3.0))],
        );
        assert_eq!(
            ok.to_string(),
            r#"{"floors":3,"id":1,"ok":true,"op":"load"}"#
        );
        let err = error_response(
            1,
            Some("assign"),
            None,
            &ServeError::UnknownBuilding("no artifact for `x`".into()),
        );
        assert_eq!(
            err.to_string(),
            r#"{"error":{"kind":"unknown_building","message":"no artifact for `x`"},"ok":false,"op":"assign"}"#
        );
    }

    #[test]
    fn v2_responses_carry_the_version_stamp() {
        let ok = Response::Swap {
            building: "hq".into(),
            floors: 3,
            scans: 120,
            evicted: true,
        }
        .to_json(2, Some(&Json::Num(4.0)));
        assert_eq!(
            ok.to_string(),
            r#"{"building":"hq","evicted":true,"floors":3,"id":4,"ok":true,"op":"swap","scans":120,"v":2}"#
        );
        let err = error_response(2, Some("extend"), None, &ServeError::Model("x".into()));
        assert_eq!(err.get("v"), Some(&Json::Num(2.0)));
    }

    #[test]
    fn typed_responses_render_v1_shapes_bit_identically() {
        // The typed enum must reproduce the exact ad-hoc v1 wire forms.
        let assign = Response::Assign {
            building: "hq".into(),
            scan_id: 7,
            floor: 2,
        }
        .to_json(1, None);
        assert_eq!(
            assign.to_string(),
            r#"{"building":"hq","floor":2,"ok":true,"op":"assign","scan_id":7}"#
        );
        let batch = Response::AssignBatch {
            building: "hq".into(),
            rows: vec![
                BatchRow {
                    scan_id: 1,
                    result: Ok(0),
                },
                BatchRow {
                    scan_id: 2,
                    result: Err(ServeError::Inference("no known MAC".into())),
                },
            ],
        }
        .to_json(1, None);
        assert_eq!(
            batch.to_string(),
            r#"{"building":"hq","count":2,"failures":1,"ok":true,"op":"assign_batch","results":[{"floor":0,"scan_id":1},{"error":{"kind":"inference","message":"no known MAC"},"scan_id":2}]}"#
        );
    }
}
