//! The newline-delimited JSON request/response protocol.
//!
//! One request per line in, one response per line out, in request order.
//! Every request is an object with an `"op"` field and op-specific
//! payload; an optional `"id"` field (any JSON value) is echoed verbatim
//! on the response so pipelined clients can correlate. See the crate
//! docs for the full wire reference.
//!
//! Requests:
//!
//! ```json
//! {"op": "assign",       "building": "hq", "scan": {"id": 7, "readings": [["aa:..", -61.5]]}}
//! {"op": "assign_batch", "building": "hq", "scans": [{...}, {...}]}
//! {"op": "load",         "building": "hq"}
//! {"op": "evict",        "building": "hq"}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! Responses always carry `"ok"` (and echo `"op"`/`"id"` when they were
//! readable): `{"ok":true,"op":"assign","floor":3,...}` on success,
//! `{"ok":false,"op":...,"error":{"kind":"...","message":"..."}}` on
//! failure. Malformed frames produce a `protocol` error response — never
//! a dropped connection, never a crash.

use fis_types::json::{FromJson, Json};
use fis_types::SignalSample;

use crate::error::ServeError;

/// A decoded request operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Label one scan against one building's model.
    Assign {
        /// Registry key of the model to serve from.
        building: String,
        /// The scan to label.
        scan: SignalSample,
    },
    /// Label a batch of scans against one building's model, fanned out
    /// over the thread budget; per-scan results in input order.
    AssignBatch {
        /// Registry key of the model to serve from.
        building: String,
        /// The scans to label, order preserved in the response.
        scans: Vec<SignalSample>,
    },
    /// Eagerly load (or hot-reload) a building's artifact.
    Load {
        /// Registry key to load.
        building: String,
    },
    /// Drop a building's model from the cache (metrics survive).
    Evict {
        /// Registry key to evict.
        building: String,
    },
    /// Report global + per-model serving metrics.
    Stats,
    /// Stop the daemon after responding.
    Shutdown,
}

impl Request {
    /// The wire name of this operation.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Assign { .. } => "assign",
            Request::AssignBatch { .. } => "assign_batch",
            Request::Load { .. } => "load",
            Request::Evict { .. } => "evict",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A decoded request frame: the operation plus the correlation id and
/// op string to echo.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The client's correlation id, echoed verbatim when present.
    pub id: Option<Json>,
    /// The decoded operation.
    pub request: Request,
}

/// What could be salvaged from an unparseable or invalid frame, so the
/// error response still echoes `id`/`op` when they were readable.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// Correlation id, if the frame parsed far enough to read one.
    pub id: Option<Json>,
    /// The `op` string, if the frame parsed far enough to read one.
    pub op: Option<String>,
    /// The protocol error to report.
    pub error: ServeError,
}

fn building_of(json: &Json) -> Result<String, ServeError> {
    let building = json
        .get("building")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::Protocol("request needs a string `building` field".into()))?;
    if building.is_empty() {
        return Err(ServeError::Protocol("`building` must be non-empty".into()));
    }
    Ok(building.to_owned())
}

fn scan_of(value: &Json) -> Result<SignalSample, ServeError> {
    SignalSample::from_json(value).map_err(|e| ServeError::Protocol(format!("bad scan: {e}")))
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`FrameError`] carrying whatever correlation info was
/// readable plus the typed protocol error.
pub fn parse_frame(line: &str) -> Result<Frame, Box<FrameError>> {
    let json = Json::parse(line).map_err(|e| {
        Box::new(FrameError {
            id: None,
            op: None,
            error: ServeError::Protocol(format!("malformed frame: {e}")),
        })
    })?;
    let id = json.get("id").cloned();
    let fail = |op: Option<String>, error: ServeError| {
        Box::new(FrameError {
            id: id.clone(),
            op,
            error,
        })
    };
    let Some(op) = json.get("op").and_then(Json::as_str).map(str::to_owned) else {
        return Err(fail(
            None,
            ServeError::Protocol("request needs a string `op` field".into()),
        ));
    };
    let request = match op.as_str() {
        "assign" => {
            let building = building_of(&json).map_err(|e| fail(Some(op.clone()), e))?;
            let scan = json
                .get("scan")
                .ok_or_else(|| ServeError::Protocol("assign needs a `scan` object".into()))
                .and_then(scan_of)
                .map_err(|e| fail(Some(op.clone()), e))?;
            Request::Assign { building, scan }
        }
        "assign_batch" => {
            let building = building_of(&json).map_err(|e| fail(Some(op.clone()), e))?;
            let scans = json
                .get("scans")
                .and_then(Json::as_arr)
                .ok_or_else(|| ServeError::Protocol("assign_batch needs a `scans` array".into()))
                .and_then(|arr| arr.iter().map(scan_of).collect::<Result<Vec<_>, _>>())
                .map_err(|e| fail(Some(op.clone()), e))?;
            Request::AssignBatch { building, scans }
        }
        "load" => Request::Load {
            building: building_of(&json).map_err(|e| fail(Some(op.clone()), e))?,
        },
        "evict" => Request::Evict {
            building: building_of(&json).map_err(|e| fail(Some(op.clone()), e))?,
        },
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => {
            return Err(fail(
                Some(op.clone()),
                ServeError::Protocol(format!(
                    "unknown op `{other}` (expected assign, assign_batch, load, evict, \
                     stats, or shutdown)"
                )),
            ))
        }
    };
    Ok(Frame { id, request })
}

/// Builds a success response: `{"ok":true,"op":...}` plus `fields`,
/// echoing `id` when present. Keys are sorted by the JSON writer, so the
/// wire form is deterministic.
pub fn ok_response(
    op: &str,
    id: Option<&Json>,
    fields: impl IntoIterator<Item = (&'static str, Json)>,
) -> Json {
    let mut obj = match Json::obj(fields) {
        Json::Obj(m) => m,
        _ => unreachable!("Json::obj returns Obj"),
    };
    obj.insert("ok".to_owned(), Json::Bool(true));
    obj.insert("op".to_owned(), Json::Str(op.to_owned()));
    if let Some(id) = id {
        obj.insert("id".to_owned(), id.clone());
    }
    Json::Obj(obj)
}

/// Builds an error response: `{"ok":false,"error":{...}}`, echoing
/// `op`/`id` when they were readable.
pub fn error_response(op: Option<&str>, id: Option<&Json>, error: &ServeError) -> Json {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("ok".to_owned(), Json::Bool(false));
    obj.insert("error".to_owned(), error.to_json());
    if let Some(op) = op {
        obj.insert("op".to_owned(), Json::Str(op.to_owned()));
    }
    if let Some(id) = id {
        obj.insert("id".to_owned(), id.clone());
    }
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let assign = parse_frame(
            r#"{"op":"assign","building":"hq","scan":{"id":1,"readings":[["00:00:00:00:00:01",-60.0]]}}"#,
        )
        .unwrap();
        assert!(matches!(assign.request, Request::Assign { .. }));
        assert_eq!(assign.request.op(), "assign");

        let batch = parse_frame(
            r#"{"id":9,"op":"assign_batch","building":"hq","scans":[{"id":1,"readings":[]}]}"#,
        )
        .unwrap();
        assert_eq!(batch.id, Some(Json::Num(9.0)));
        assert!(matches!(
            batch.request,
            Request::AssignBatch { ref scans, .. } if scans.len() == 1
        ));

        for (line, op) in [
            (r#"{"op":"load","building":"b"}"#, "load"),
            (r#"{"op":"evict","building":"b"}"#, "evict"),
            (r#"{"op":"stats"}"#, "stats"),
            (r#"{"op":"shutdown"}"#, "shutdown"),
        ] {
            assert_eq!(parse_frame(line).unwrap().request.op(), op);
        }
    }

    #[test]
    fn malformed_json_is_protocol_error_without_id() {
        let err = parse_frame(r#"{"op": "assign", "build"#).unwrap_err();
        assert_eq!(err.error.kind(), "protocol");
        assert_eq!(err.id, None);
        assert_eq!(err.op, None);
    }

    #[test]
    fn bad_shape_still_echoes_id_and_op() {
        let err = parse_frame(r#"{"id":"req-3","op":"assign","building":"hq"}"#).unwrap_err();
        assert_eq!(err.error.kind(), "protocol");
        assert_eq!(err.id, Some(Json::Str("req-3".into())));
        assert_eq!(err.op.as_deref(), Some("assign"));
        assert!(err.error.message().contains("scan"));
    }

    #[test]
    fn unknown_op_is_typed() {
        let err = parse_frame(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.error.kind(), "protocol");
        assert!(err.error.message().contains("frobnicate"));
    }

    #[test]
    fn missing_building_is_typed() {
        let err = parse_frame(r#"{"op":"load"}"#).unwrap_err();
        assert_eq!(err.error.kind(), "protocol");
        assert!(err.error.message().contains("building"));
    }

    #[test]
    fn responses_are_deterministic_lines() {
        let ok = ok_response("load", Some(&Json::Num(1.0)), [("floors", Json::Num(3.0))]);
        assert_eq!(
            ok.to_string(),
            r#"{"floors":3,"id":1,"ok":true,"op":"load"}"#
        );
        let err = error_response(
            Some("assign"),
            None,
            &ServeError::UnknownBuilding("no artifact for `x`".into()),
        );
        assert_eq!(
            err.to_string(),
            r#"{"error":{"kind":"unknown_building","message":"no artifact for `x`"},"ok":false,"op":"assign"}"#
        );
    }
}
