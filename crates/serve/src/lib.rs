//! # fis-serve: the multi-tenant serving daemon
//!
//! PR 2 split the pipeline into fit-once (`fis-one fit` →
//! [`FittedModel`](fis_core::FittedModel) artifact) and serve-many
//! (`fis-one assign`), but every `assign` invocation still pays full
//! process startup and loads one model. This crate turns that split into
//! a long-running daemon: load artifacts lazily from a model directory,
//! cache them under an LRU budget, hot-reload on change, and answer a
//! newline-delimited JSON protocol over stdin/stdout or TCP.
//!
//! ```text
//! ┌────────────┐  NDJSON   ┌──────────────────────────────┐
//! │   client    │ ───────▶ │ Daemon                        │
//! │ (pipe/TCP)  │ ◀─────── │  ├─ ModelRegistry (LRU,       │
//! └────────────┘           │  │   hot reload, mtime watch) │
//!                          │  ├─ ServingMetrics (p50/p99)  │
//!                          │  └─ assign fan-out            │
//!                          │     (fis-parallel)            │
//!                          └──────────────────────────────┘
//! ```
//!
//! # Wire protocol
//!
//! One request per line, one response per line, in order. See
//! [`protocol`] for the exact shapes. Operations: `assign`,
//! `assign_batch`, `load`, `evict`, `stats`, `shutdown`, and — behind
//! the v2 envelope (`"v": 2`) — the mutation ops `extend` and `swap`.
//! Frames without a `"v"` key speak v1 and are answered byte-for-byte
//! as before versioning existed. Every failure —
//! malformed frame, unknown building, corrupt or vanished artifact,
//! failed inference, oversized batch — is a typed error response
//! (`{"ok":false,"error":{"kind":...,"message":...}}`); the daemon never
//! crashes on input.
//!
//! # Determinism contract
//!
//! The daemon adds **zero** nondeterminism on top of the PR 2 serving
//! contract: responses for `assign`/`assign_batch` are bit-identical for
//! any batch order, any thread count, and any eviction history, because
//! each scan's inference RNG is seeded from `(model seed, scan content)`
//! alone and artifacts reload byte-identically. The same contract makes
//! the optional [`registry::AssignCache`] answer cache exact: replaying
//! a stored answer for identical scan content is indistinguishable from
//! recomputing it, for any cache capacity or invalidation history. The
//! golden-fixture test `tests/serve_determinism.rs` serves the golden
//! corpus through the daemon — with a forced evict+reload in the middle
//! and at several cache capacities — and diffs against
//! `FittedModel::assign`.
//!
//! # Concurrency and scale-out
//!
//! The daemon's shared state ([`registry::SharedRegistry`] + a metrics
//! mutex) makes [`Daemon::handle_line`] a `&self` method: TCP mode
//! serves many connections at once on a bounded worker pool
//! ([`pool`]), inference running outside every lock, with graceful
//! shutdown that drains in-flight connections. One tier up,
//! [`router::Router`] (the `fis-router` bin) fronts N daemon shards
//! with a consistent-hash ring on building id, replicating each
//! building onto R shards and failing over mid-request when a shard
//! dies. Both layers preserve the determinism contract: answers are a
//! pure function of (model artifact, scan content), so any worker, any
//! replica, and any retry produces the same bytes.
//!
//! # Example
//!
//! ```
//! use fis_serve::{Daemon, DaemonConfig, RegistryConfig};
//!
//! let dir = std::env::temp_dir().join("fis_serve_doc_example");
//! std::fs::create_dir_all(&dir).unwrap();
//! let daemon = Daemon::new(DaemonConfig::new(
//!     RegistryConfig::new(&dir).max_models(4),
//! ));
//! let (response, shutdown) = daemon.handle_line(r#"{"op":"stats"}"#);
//! assert!(!shutdown);
//! assert!(response.to_string().contains("\"ok\":true"));
//! ```

pub mod error;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod router;
pub mod server;

pub use error::ServeError;
pub use metrics::{OpMetrics, ServingMetrics};
pub use pool::LineServer;
pub use protocol::{BatchRow, Frame, Request, Response, PROTOCOL_VERSION};
pub use registry::{
    AssignCache, Fetch, ModelRegistry, RegistryConfig, RegistryStats, ScanKey, SharedRegistry,
};
pub use router::{Router, RouterConfig};
pub use server::{Daemon, DaemonConfig};
