//! The serving daemon: dispatch loop, pipe mode, concurrent TCP mode.
//!
//! [`Daemon`] owns a [`SharedRegistry`] and [`ServingMetrics`] and turns
//! request lines into response lines. Three front-ends share the exact
//! same dispatch path:
//!
//! - [`Daemon::serve_connection`] — any `BufRead`/`Write` pair,
//! - [`Daemon::serve_stdio`] — pipe mode (`fis-one serve` default),
//! - [`Daemon::serve_tcp`] — a TCP listener served by a bounded
//!   worker-thread pool ([`crate::pool`]), so many connections are in
//!   flight at once and one slow or idle client no longer stalls the
//!   rest. A `shutdown` request from *any* connection drains the pool
//!   and stops the daemon; a dropped connection just frees its worker.
//!
//! Per connection, responses are written in request order and flushed
//! per line, so a pipelined client never deadlocks. Every failure is a
//! typed error response; a connection loop only exits on EOF, shutdown,
//! or a dead transport.
//!
//! Shared state is interior: [`Daemon::handle_line`] takes `&self`, the
//! registry serializes only its bookkeeping (inference runs outside the
//! lock — see [`SharedRegistry`]), and metrics sit behind their own
//! mutex. Locking order is always registry-then-metrics-free: the two
//! locks are never held at once, so the daemon cannot deadlock on
//! itself.

use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::Mutex;
use std::time::Instant;

use fis_obs::{self as obs, Level};
use fis_types::json::Json;

use crate::error::ServeError;
use crate::metrics::{RegistryGauges, ServingMetrics};
use crate::pool::{self, LineServer};
use crate::protocol::{error_response, parse_frame, BatchRow, Frame, Request, Response};
use crate::registry::{Fetch, RegistryConfig, SharedRegistry};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Model directory and cache budget.
    pub registry: RegistryConfig,
    /// Thread budget for batch fan-out (`0` = the global
    /// [`fis_parallel::thread_budget`]).
    pub threads: usize,
    /// Largest accepted `assign_batch` size (`0` = unlimited).
    pub max_batch: usize,
    /// TCP connection-pool workers (`0` = a machine-sized default,
    /// `available_parallelism` clamped to `2..=8`). Pipe mode ignores
    /// this.
    pub pool: usize,
}

impl DaemonConfig {
    /// A daemon over a model directory with default budgets.
    pub fn new(registry: RegistryConfig) -> Self {
        Self {
            registry,
            threads: 0,
            max_batch: 0,
            pool: 0,
        }
    }

    /// Sets the batch fan-out thread budget (`0` = global budget).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Caps the accepted batch size (`0` = unlimited).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the TCP worker-pool size (`0` = machine-sized default).
    pub fn pool(mut self, pool: usize) -> Self {
        self.pool = pool;
        self
    }

    /// The effective TCP pool size.
    pub fn pool_workers(&self) -> usize {
        if self.pool > 0 {
            return self.pool;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }
}

/// What one dispatched request did, for the response and the metrics.
struct RequestOutcome {
    result: Result<Response, ServeError>,
    /// Scans in an *accepted* assign/assign_batch (0 when rejected).
    attempted: u64,
    /// Scans successfully labeled.
    labeled: u64,
    /// Per-scan failures inside an otherwise-ok batch.
    scan_failures: u64,
    /// The named building resolved to a real artifact (allows a
    /// per-model metrics scope).
    tenant_exists: bool,
    shutdown: bool,
}

impl RequestOutcome {
    fn ok(response: Response) -> Self {
        Self {
            result: Ok(response),
            attempted: 0,
            labeled: 0,
            scan_failures: 0,
            tenant_exists: false,
            shutdown: false,
        }
    }

    fn rejected(error: ServeError) -> Self {
        // A `model`/`inference` failure proves the artifact exists;
        // protocol, unknown-building, and capacity rejections prove
        // nothing about the tenant.
        let tenant_exists = matches!(error, ServeError::Model(_) | ServeError::Inference(_));
        Self {
            result: Err(error),
            attempted: 0,
            labeled: 0,
            scan_failures: 0,
            tenant_exists,
            shutdown: false,
        }
    }
}

/// The multi-tenant serving daemon. See the [module docs](self).
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    registry: SharedRegistry,
    metrics: Mutex<ServingMetrics>,
    /// Serializes artifact mutations (`extend`, `swap`) against each
    /// other. Inference never takes this lock: while a mutation clones,
    /// grows, and atomically republishes an artifact, assigns keep
    /// serving the old generation; the new one goes live only when the
    /// rename lands and the cache entry is dropped.
    mutation: Mutex<()>,
}

impl Daemon {
    /// Creates a daemon with an empty cache and fresh metrics.
    pub fn new(config: DaemonConfig) -> Self {
        let registry = SharedRegistry::new(config.registry.clone());
        Self {
            config,
            registry,
            metrics: Mutex::new(ServingMetrics::new()),
            mutation: Mutex::new(()),
        }
    }

    /// The daemon's registry handle (cache state and counters).
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }

    /// The current `stats` payload (also printed on daemon exit).
    pub fn stats_json(&self) -> Json {
        let metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        self.registry.with(|reg| metrics.to_json(reg))
    }

    /// The Prometheus text exposition: every counter, latency summary,
    /// and histogram. The `metrics` op payload, also written by the CLI
    /// `--metrics FILE` dump on exit. Registry and metrics locks are
    /// taken one after the other, never nested.
    pub fn prometheus_text(&self) -> String {
        let (stats, gauges) = self.registry.with(|reg| {
            (
                reg.stats(),
                RegistryGauges {
                    loaded_models: reg.len() as u64,
                    bytes: reg.total_bytes(),
                    cache_entries: reg.assign_cache_entries() as u64,
                    cache_capacity: reg.config().assign_cache as u64,
                },
            )
        });
        let metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        metrics.to_prometheus(&stats, gauges)
    }

    /// Handles one request line and returns `(response, shutdown)`.
    /// Infallible by design: malformed input becomes a typed error
    /// response. Safe to call from many threads at once; answers are
    /// bit-identical for any interleaving.
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        let started = Instant::now();
        let frame = match parse_frame(line) {
            Ok(frame) => frame,
            Err(fe) => {
                let latency = started.elapsed().as_secs_f64() * 1e9;
                self.metrics
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .record(None, 0, 0, true, latency);
                return (
                    error_response(fe.version, fe.op.as_deref(), fe.id.as_ref(), &fe.error),
                    false,
                );
            }
        };
        let Frame {
            id,
            version,
            trace,
            request,
        } = frame;
        let op = request.op();
        let model_key = match &request {
            Request::Assign { building, .. }
            | Request::AssignBatch { building, .. }
            | Request::Load { building }
            | Request::Evict { building }
            | Request::Extend { building, .. }
            | Request::Swap { building } => Some(building.clone()),
            Request::Stats | Request::Metrics | Request::Shutdown => None,
        };
        // Request span: continue the injected trace when the frame
        // carried one (so a routed request reconstructs end-to-end from
        // the journals), else root a fresh trace on the line content.
        // Observability only — inert unless a sink is on.
        let mut span = match trace {
            Some(remote) => obs::span_in(remote, Level::Debug, "daemon", "request"),
            None => obs::span_root(Level::Debug, "daemon", "request", line.as_bytes()),
        };
        span.str("op", op);
        if let Some(building) = &model_key {
            span.str("building", building);
        }
        let outcome = self.dispatch(request);
        if let Err(e) = &outcome.result {
            span.str("error", e.kind());
        }
        drop(span);
        let latency = started.elapsed().as_secs_f64() * 1e9;
        {
            // Per-model scopes only for buildings that resolved to a
            // real artifact (or already have a scope) — a client
            // spraying made-up ids must not grow the metrics map
            // without bound.
            let mut metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
            let scope = model_key
                .as_deref()
                .filter(|b| outcome.tenant_exists || metrics.has_scope(b));
            let failed = outcome.result.is_err() || outcome.scan_failures > 0;
            metrics.record(scope, outcome.attempted, outcome.labeled, failed, latency);
        }
        let response = match outcome.result {
            Ok(typed) => typed.to_json(version, id.as_ref()),
            Err(e) => error_response(version, Some(op), id.as_ref(), &e),
        };
        (response, outcome.shutdown)
    }

    fn dispatch(&self, request: Request) -> RequestOutcome {
        match request {
            // Both assign shapes run through the single batch path
            // (`run_assign`): a lone scan is a batch of one, so caching,
            // fan-out, and per-scan error semantics cannot diverge
            // between the two ops.
            Request::Assign { building, scan } => {
                let mut results = match self.run_assign(&building, std::slice::from_ref(&scan)) {
                    Ok(results) => results,
                    Err(e) => return RequestOutcome::rejected(e),
                };
                match results.pop().expect("one scan in, one result out") {
                    Err(e) => RequestOutcome {
                        // The scan reached inference, so it counts as
                        // attempted; registry-level failures above
                        // attempted nothing.
                        attempted: 1,
                        ..RequestOutcome::rejected(ServeError::from(e))
                    },
                    Ok(floor) => RequestOutcome {
                        attempted: 1,
                        labeled: 1,
                        tenant_exists: true,
                        ..RequestOutcome::ok(Response::Assign {
                            building,
                            scan_id: scan.id().index(),
                            floor: floor.index(),
                        })
                    },
                }
            }
            Request::AssignBatch { building, scans } => {
                if self.config.max_batch > 0 && scans.len() > self.config.max_batch {
                    return RequestOutcome::rejected(ServeError::Capacity(format!(
                        "batch of {} scans exceeds the configured maximum of {}",
                        scans.len(),
                        self.config.max_batch
                    )));
                }
                let results = match self.run_assign(&building, &scans) {
                    Ok(results) => results,
                    Err(e) => return RequestOutcome::rejected(e),
                };
                let rows: Vec<BatchRow> = scans
                    .iter()
                    .zip(results)
                    .map(|(scan, result)| BatchRow {
                        scan_id: scan.id().index(),
                        result: result.map(|f| f.index()).map_err(ServeError::from),
                    })
                    .collect();
                let failures = rows.iter().filter(|r| r.result.is_err()).count() as u64;
                RequestOutcome {
                    attempted: rows.len() as u64,
                    labeled: rows.len() as u64 - failures,
                    scan_failures: failures,
                    tenant_exists: true,
                    ..RequestOutcome::ok(Response::AssignBatch { building, rows })
                }
            }
            Request::Load { building } => match self.registry.get(&building) {
                Err(e) => RequestOutcome::rejected(e),
                Ok((model, fetch)) => {
                    let fetch = match fetch {
                        Fetch::Hit => "hit",
                        Fetch::Miss => "miss",
                        Fetch::Reload => "reload",
                    };
                    RequestOutcome {
                        tenant_exists: true,
                        ..RequestOutcome::ok(Response::Load {
                            building,
                            floors: model.floors(),
                            scans: model.samples().len(),
                            fetch,
                        })
                    }
                }
            },
            Request::Evict { building } => {
                let evicted = self.registry.evict(&building);
                RequestOutcome {
                    // An entry was cached, so the tenant is real.
                    tenant_exists: evicted,
                    ..RequestOutcome::ok(Response::Evict { building, evicted })
                }
            }
            Request::Extend { building, scans } => match self.extend(&building, &scans) {
                Err(e) => RequestOutcome::rejected(e),
                Ok(response) => RequestOutcome {
                    tenant_exists: true,
                    ..RequestOutcome::ok(response)
                },
            },
            Request::Swap { building } => match self.swap(&building) {
                Err(e) => RequestOutcome::rejected(e),
                Ok(response) => RequestOutcome {
                    tenant_exists: true,
                    ..RequestOutcome::ok(response)
                },
            },
            Request::Stats => {
                let metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
                let stats = self.registry.with(|reg| metrics.to_json(reg));
                RequestOutcome::ok(Response::Stats { stats })
            }
            Request::Metrics => RequestOutcome::ok(Response::Metrics {
                metrics: self.prometheus_text(),
            }),
            Request::Shutdown => RequestOutcome {
                shutdown: true,
                ..RequestOutcome::ok(Response::Shutdown)
            },
        }
    }

    /// The single assign path both `assign` and `assign_batch` share.
    /// Content-seeded per-scan RNGs keep the fan-out on the PR 2
    /// determinism contract for any thread count or batch order, and the
    /// registry's answer cache only replays answers that contract
    /// already fixes.
    #[allow(clippy::type_complexity)]
    fn run_assign(
        &self,
        building: &str,
        scans: &[fis_types::SignalSample],
    ) -> Result<Vec<Result<fis_types::FloorId, fis_core::FisError>>, ServeError> {
        // The span opens before the registry call so the registry's
        // load / cache-lookup events nest under it (same thread).
        let mut span = obs::span(Level::Debug, "daemon", "assign");
        span.str("building", building)
            .num("scans", scans.len() as f64);
        let result = self
            .registry
            .assign_batch(building, scans, self.config.threads);
        if let Ok(results) = &result {
            span.num(
                "failures",
                results.iter().filter(|r| r.is_err()).count() as f64,
            );
        }
        result
    }

    /// The v2 `extend` op: clone the live model, grow it with the new
    /// reference scans, atomically republish the artifact (temp file +
    /// rename via [`fis_core::FittedModel::save`]), and drop the cached
    /// generation so the next request serves the extension. Holds the
    /// mutation lock throughout; concurrent assigns keep answering from
    /// the old generation and are never blocked.
    fn extend(
        &self,
        building: &str,
        scans: &[fis_types::SignalSample],
    ) -> Result<Response, ServeError> {
        let mut span = obs::span(Level::Info, "daemon", "extend");
        span.str("building", building)
            .num("scans", scans.len() as f64);
        let _mutation = self.mutation.lock().unwrap_or_else(|p| p.into_inner());
        let (model, _) = self.registry.get(building)?;
        let mut extended = (*model).clone();
        let report = extended.extend(scans).map_err(ServeError::from)?;
        let path = self.registry.with(|reg| reg.artifact_path(building));
        extended.save(&path).map_err(ServeError::from)?;
        self.registry.evict(building);
        span.num("appended", report.appended as f64);
        Ok(Response::Extend {
            building: building.to_owned(),
            appended: report.appended,
            skipped: report.skipped,
            new_macs: report.new_macs,
            total_scans: report.total_scans,
            total_macs: report.total_macs,
        })
    }

    /// The v2 `swap` op: force the on-disk artifact generation live now
    /// by dropping the cached entry (answer cache included) and
    /// reloading, instead of waiting for the registry's change
    /// detection to notice.
    fn swap(&self, building: &str) -> Result<Response, ServeError> {
        let mut span = obs::span(Level::Info, "daemon", "swap");
        span.str("building", building);
        let _mutation = self.mutation.lock().unwrap_or_else(|p| p.into_inner());
        let evicted = self.registry.evict(building);
        let (model, _) = self.registry.get(building)?;
        Ok(Response::Swap {
            building: building.to_owned(),
            floors: model.floors(),
            scans: model.total_scans(),
            evicted,
        })
    }

    /// Serves one transport to completion. Returns `Ok(true)` when a
    /// `shutdown` request ended the session, `Ok(false)` on EOF. Lines
    /// are read as raw bytes and decoded lossily, so invalid UTF-8 on
    /// the wire yields a typed `protocol` error response instead of an
    /// `InvalidData` transport error.
    ///
    /// # Errors
    ///
    /// Only transport-level I/O errors; bad requests never error here.
    pub fn serve_connection<R: BufRead, W: Write>(
        &self,
        reader: R,
        writer: W,
    ) -> std::io::Result<bool> {
        pool::serve_lines(reader, writer, self)
    }

    /// Pipe mode: serves stdin → stdout until EOF or `shutdown`.
    ///
    /// # Errors
    ///
    /// Only stdin/stdout I/O errors.
    pub fn serve_stdio(&self) -> std::io::Result<bool> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.serve_connection(stdin.lock(), stdout.lock())
    }

    /// TCP mode: serves connections concurrently on a bounded worker
    /// pool ([`DaemonConfig::pool`]) until a client sends `shutdown`;
    /// queued and in-flight connections are drained before returning.
    /// A dropped connection is not fatal, and transient accept errors
    /// (`ECONNABORTED`, fd exhaustion, …) are logged and survived.
    ///
    /// # Errors
    ///
    /// Only non-transient accept-level I/O errors.
    pub fn serve_tcp(&self, listener: &TcpListener) -> std::io::Result<()> {
        pool::serve_pooled(listener, self, self.config.pool_workers())
    }
}

impl LineServer for Daemon {
    fn handle(&self, line: &str) -> (String, bool) {
        let (response, shutdown) = self.handle_line(line);
        (response.to_string(), shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_core::{FisOne, FisOneConfig, FittedModel};
    use fis_synth::BuildingConfig;
    use fis_types::json::ToJson;
    use std::path::PathBuf;

    fn quick_fit(name: &str, seed: u64) -> (fis_types::Building, FittedModel) {
        let b = BuildingConfig::new(name, 3)
            .samples_per_floor(15)
            .aps_per_floor(8)
            .atrium_aps(0)
            .seed(seed)
            .generate();
        let model = FisOne::new(FisOneConfig::quick(seed))
            .fit(
                b.name(),
                b.samples(),
                b.floors(),
                b.bottom_anchor().unwrap(),
            )
            .unwrap();
        (b, model)
    }

    fn daemon_over(
        models: &[(&str, u64)],
        tag: &str,
    ) -> (Daemon, PathBuf, Vec<fis_types::Building>) {
        let dir = std::env::temp_dir().join(format!("fis_server_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut buildings = Vec::new();
        for &(name, seed) in models {
            let (b, model) = quick_fit(name, seed);
            model.save(dir.join(format!("{name}.json"))).unwrap();
            buildings.push(b);
        }
        let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
        (daemon, dir, buildings)
    }

    #[test]
    fn assign_via_daemon_matches_direct_assign() {
        let (daemon, dir, buildings) = daemon_over(&[("srv", 21)], "assign");
        let b = &buildings[0];
        let model = FittedModel::load(dir.join("srv.json")).unwrap();
        for scan in b.samples().iter().take(5) {
            let line = Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str("srv".into())),
                ("scan", scan.to_json()),
            ])
            .to_string();
            let (response, shutdown) = daemon.handle_line(&line);
            assert!(!shutdown);
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
            let floor = response.get("floor").unwrap().as_usize().unwrap();
            assert_eq!(floor, model.assign(scan).unwrap().index());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_results_in_input_order_with_per_scan_errors() {
        let (daemon, dir, buildings) = daemon_over(&[("batch", 22)], "batch");
        let b = &buildings[0];
        let mut scans: Vec<Json> = b.samples().iter().take(4).map(|s| s.to_json()).collect();
        // An alien scan in the middle: the batch continues around it.
        scans.insert(
            2,
            Json::parse(r#"{"id":999,"readings":[["ff:ff:ff:ff:ff:0f",-40.0]]}"#).unwrap(),
        );
        let line = Json::obj([
            ("op", Json::Str("assign_batch".into())),
            ("building", Json::Str("batch".into())),
            ("scans", Json::Arr(scans)),
        ])
        .to_string();
        let (response, _) = daemon.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("count").unwrap().as_usize(), Some(5));
        assert_eq!(response.get("failures").unwrap().as_usize(), Some(1));
        let rows = response.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[2].get("scan_id").unwrap().as_usize(), Some(999));
        assert_eq!(
            rows[2].get("error").unwrap().get("kind").unwrap().as_str(),
            Some("inference")
        );
        for (i, row) in rows.iter().enumerate() {
            if i != 2 {
                assert!(row.get("floor").is_some(), "row {i} has a floor");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_batch_is_capacity_error() {
        let dir = std::env::temp_dir().join(format!("fis_server_cap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)).max_batch(2));
        let (response, _) = daemon.handle_line(
            r#"{"op":"assign_batch","building":"x","scans":[{"id":0,"readings":[]},{"id":1,"readings":[]},{"id":2,"readings":[]}]}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            response.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("capacity")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_connection_pipeline_and_shutdown() {
        let (daemon, dir, buildings) = daemon_over(&[("pipe", 23)], "pipe");
        let scan = buildings[0].samples()[0].to_json();
        let script = format!(
            "{}\n\nnot json at all\n{}\n{}\n",
            Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str("pipe".into())),
                ("scan", scan),
                ("id", Json::Num(1.0)),
            ]),
            r#"{"op":"stats","id":2}"#,
            r#"{"op":"shutdown","id":3}"#,
        );
        let mut out = Vec::new();
        let shutdown = daemon
            .serve_connection(script.as_bytes(), &mut out)
            .unwrap();
        assert!(shutdown, "script ends in shutdown");
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 4, "blank line skipped, 4 responses");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(lines[0].get("id").unwrap().as_usize(), Some(1));
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[1].get("error").unwrap().get("kind").unwrap().as_str(),
            Some("protocol")
        );
        let stats = lines[2].get("stats").unwrap();
        assert_eq!(
            stats
                .get("global")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_usize(),
            Some(2),
            "assign + malformed recorded before stats"
        );
        assert_eq!(lines[3].get("op").unwrap().as_str(), Some("shutdown"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tcp_roundtrip_and_shutdown() {
        use std::io::{BufRead, BufReader, Write};
        let (daemon, dir, _) = daemon_over(&[("tcp", 24)], "tcp");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            daemon.serve_tcp(&listener).unwrap();
            daemon
        });
        // First connection: load then drop (daemon must keep accepting).
        {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            writeln!(stream, r#"{{"op":"load","building":"tcp"}}"#).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let json = Json::parse(line.trim()).unwrap();
            assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(json.get("fetch").unwrap().as_str(), Some("miss"));
        }
        // Second connection: the cache survived; shut the daemon down.
        {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            writeln!(stream, r#"{{"op":"load","building":"tcp"}}"#).unwrap();
            writeln!(stream, r#"{{"op":"shutdown"}}"#).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(
                Json::parse(line.trim())
                    .unwrap()
                    .get("fetch")
                    .unwrap()
                    .as_str(),
                Some("hit"),
                "model stayed cached across connections"
            );
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(
                Json::parse(line.trim())
                    .unwrap()
                    .get("op")
                    .unwrap()
                    .as_str(),
                Some("shutdown")
            );
        }
        let daemon = handle.join().unwrap();
        assert_eq!(daemon.registry().stats().hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn extend_and_swap_publish_atomically_and_keep_old_answers() {
        let (daemon, dir, buildings) = daemon_over(&[("ext", 26)], "extend");
        let b = &buildings[0];
        let assign_line = |scan: &fis_types::SignalSample| {
            Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str("ext".into())),
                ("scan", scan.to_json()),
            ])
            .to_string()
        };
        let before: Vec<Json> = b
            .samples()
            .iter()
            .take(5)
            .map(|s| daemon.handle_line(&assign_line(s)).0)
            .collect();

        // A v1 frame must not see the v2 mutation ops at all.
        let (v1, _) = daemon.handle_line(r#"{"op":"extend","building":"ext","scans":[]}"#);
        assert_eq!(v1.get("ok"), Some(&Json::Bool(false)));
        assert!(v1
            .get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown op `extend`"));

        let scans: Vec<Json> = b.samples().iter().take(3).map(|s| s.to_json()).collect();
        let line = Json::obj([
            ("v", Json::Num(2.0)),
            ("op", Json::Str("extend".into())),
            ("building", Json::Str("ext".into())),
            ("scans", Json::Arr(scans)),
        ])
        .to_string();
        let (resp, _) = daemon.handle_line(&line);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "extend: {resp}");
        assert_eq!(resp.get("v"), Some(&Json::Num(2.0)));
        assert_eq!(resp.get("appended").unwrap().as_usize(), Some(3));
        assert_eq!(resp.get("total_scans").unwrap().as_usize(), Some(48));

        // The on-disk artifact is the extended generation now, and the
        // daemon serves it — with old-vocabulary answers bit-identical.
        let published = FittedModel::load(dir.join("ext.json")).unwrap();
        assert!(published.is_extended());
        for (scan, old) in b.samples().iter().take(5).zip(&before) {
            assert_eq!(&daemon.handle_line(&assign_line(scan)).0, old);
        }

        let (swap, _) = daemon.handle_line(r#"{"v":2,"op":"swap","building":"ext"}"#);
        assert_eq!(swap.get("ok"), Some(&Json::Bool(true)), "swap: {swap}");
        assert_eq!(swap.get("evicted"), Some(&Json::Bool(true)));
        assert_eq!(swap.get("scans").unwrap().as_usize(), Some(48));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn extend_of_unknown_building_is_typed_and_publishes_nothing() {
        let dir = std::env::temp_dir().join(format!("fis_server_extnone_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
        let (resp, _) =
            daemon.handle_line(r#"{"v":2,"op":"extend","building":"ghost","scans":[]}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            resp.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("unknown_building")
        );
        assert_eq!(resp.get("v"), Some(&Json::Num(2.0)));
        assert!(!dir.join("ghost.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_utf8_line_is_typed_protocol_error_not_transport_death() {
        let (daemon, dir, buildings) = daemon_over(&[("bytes", 25)], "bytes");
        let scan = buildings[0].samples()[0].to_json();
        let assign = Json::obj([
            ("op", Json::Str("assign".into())),
            ("building", Json::Str("bytes".into())),
            ("scan", scan),
        ])
        .to_string();
        // A raw 0xFF byte mid-stream previously surfaced as an
        // InvalidData error from read_line and killed the connection.
        let mut script = Vec::new();
        script.extend_from_slice(b"{\"op\":\"stats\",\xff\xfe}\n");
        script.extend_from_slice(assign.as_bytes());
        script.extend_from_slice(b"\n{\"op\":\"shutdown\"}\n");
        let mut out = Vec::new();
        let shutdown = daemon.serve_connection(&script[..], &mut out).unwrap();
        assert!(shutdown, "connection survived to the shutdown line");
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 3, "every line answered");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[0].get("error").unwrap().get("kind").unwrap().as_str(),
            Some("protocol"),
            "non-UTF-8 frame must be a typed protocol error"
        );
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(true)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
