//! The serving daemon: dispatch loop, pipe mode, concurrent TCP mode.
//!
//! [`Daemon`] owns a [`SharedRegistry`] and [`ServingMetrics`] and turns
//! request lines into response lines. Three front-ends share the exact
//! same dispatch path:
//!
//! - [`Daemon::serve_connection`] — any `BufRead`/`Write` pair,
//! - [`Daemon::serve_stdio`] — pipe mode (`fis-one serve` default),
//! - [`Daemon::serve_tcp`] — a TCP listener served by a bounded
//!   worker-thread pool ([`crate::pool`]), so many connections are in
//!   flight at once and one slow or idle client no longer stalls the
//!   rest. A `shutdown` request from *any* connection drains the pool
//!   and stops the daemon; a dropped connection just frees its worker.
//!
//! Per connection, responses are written in request order and flushed
//! per line, so a pipelined client never deadlocks. Every failure is a
//! typed error response; a connection loop only exits on EOF, shutdown,
//! or a dead transport.
//!
//! Shared state is interior: [`Daemon::handle_line`] takes `&self`, the
//! registry serializes only its bookkeeping (inference runs outside the
//! lock — see [`SharedRegistry`]), and metrics sit behind their own
//! mutex. Locking order is always registry-then-metrics-free: the two
//! locks are never held at once, so the daemon cannot deadlock on
//! itself.

use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::sync::Mutex;
use std::time::Instant;

use fis_types::json::Json;

use crate::error::ServeError;
use crate::metrics::ServingMetrics;
use crate::pool::{self, LineServer};
use crate::protocol::{error_response, ok_response, parse_frame, Frame, Request};
use crate::registry::{Fetch, RegistryConfig, SharedRegistry};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Model directory and cache budget.
    pub registry: RegistryConfig,
    /// Thread budget for batch fan-out (`0` = the global
    /// [`fis_parallel::thread_budget`]).
    pub threads: usize,
    /// Largest accepted `assign_batch` size (`0` = unlimited).
    pub max_batch: usize,
    /// TCP connection-pool workers (`0` = a machine-sized default,
    /// `available_parallelism` clamped to `2..=8`). Pipe mode ignores
    /// this.
    pub pool: usize,
}

impl DaemonConfig {
    /// A daemon over a model directory with default budgets.
    pub fn new(registry: RegistryConfig) -> Self {
        Self {
            registry,
            threads: 0,
            max_batch: 0,
            pool: 0,
        }
    }

    /// Sets the batch fan-out thread budget (`0` = global budget).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Caps the accepted batch size (`0` = unlimited).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the TCP worker-pool size (`0` = machine-sized default).
    pub fn pool(mut self, pool: usize) -> Self {
        self.pool = pool;
        self
    }

    /// The effective TCP pool size.
    pub fn pool_workers(&self) -> usize {
        if self.pool > 0 {
            return self.pool;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }
}

/// What one dispatched request did, for the response and the metrics.
struct RequestOutcome {
    result: Result<Json, ServeError>,
    /// Scans in an *accepted* assign/assign_batch (0 when rejected).
    attempted: u64,
    /// Scans successfully labeled.
    labeled: u64,
    /// Per-scan failures inside an otherwise-ok batch.
    scan_failures: u64,
    /// The named building resolved to a real artifact (allows a
    /// per-model metrics scope).
    tenant_exists: bool,
    shutdown: bool,
}

impl RequestOutcome {
    fn ok(json: Json) -> Self {
        Self {
            result: Ok(json),
            attempted: 0,
            labeled: 0,
            scan_failures: 0,
            tenant_exists: false,
            shutdown: false,
        }
    }

    fn rejected(error: ServeError) -> Self {
        // A `model`/`inference` failure proves the artifact exists;
        // protocol, unknown-building, and capacity rejections prove
        // nothing about the tenant.
        let tenant_exists = matches!(error, ServeError::Model(_) | ServeError::Inference(_));
        Self {
            result: Err(error),
            attempted: 0,
            labeled: 0,
            scan_failures: 0,
            tenant_exists,
            shutdown: false,
        }
    }
}

/// The multi-tenant serving daemon. See the [module docs](self).
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    registry: SharedRegistry,
    metrics: Mutex<ServingMetrics>,
}

impl Daemon {
    /// Creates a daemon with an empty cache and fresh metrics.
    pub fn new(config: DaemonConfig) -> Self {
        let registry = SharedRegistry::new(config.registry.clone());
        Self {
            config,
            registry,
            metrics: Mutex::new(ServingMetrics::new()),
        }
    }

    /// The daemon's registry handle (cache state and counters).
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }

    /// The current `stats` payload (also printed on daemon exit).
    pub fn stats_json(&self) -> Json {
        let metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        self.registry.with(|reg| metrics.to_json(reg))
    }

    /// Handles one request line and returns `(response, shutdown)`.
    /// Infallible by design: malformed input becomes a typed error
    /// response. Safe to call from many threads at once; answers are
    /// bit-identical for any interleaving.
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        let started = Instant::now();
        let frame = match parse_frame(line) {
            Ok(frame) => frame,
            Err(fe) => {
                let latency = started.elapsed().as_secs_f64() * 1e9;
                self.metrics
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .record(None, 0, 0, true, latency);
                return (
                    error_response(fe.op.as_deref(), fe.id.as_ref(), &fe.error),
                    false,
                );
            }
        };
        let Frame { id, request } = frame;
        let op = request.op();
        let model_key = match &request {
            Request::Assign { building, .. }
            | Request::AssignBatch { building, .. }
            | Request::Load { building }
            | Request::Evict { building } => Some(building.clone()),
            Request::Stats | Request::Shutdown => None,
        };
        let outcome = self.dispatch(request, id.as_ref());
        let latency = started.elapsed().as_secs_f64() * 1e9;
        {
            // Per-model scopes only for buildings that resolved to a
            // real artifact (or already have a scope) — a client
            // spraying made-up ids must not grow the metrics map
            // without bound.
            let mut metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
            let scope = model_key
                .as_deref()
                .filter(|b| outcome.tenant_exists || metrics.has_scope(b));
            let failed = outcome.result.is_err() || outcome.scan_failures > 0;
            metrics.record(scope, outcome.attempted, outcome.labeled, failed, latency);
        }
        let response = match outcome.result {
            Ok(json) => json,
            Err(e) => error_response(Some(op), id.as_ref(), &e),
        };
        (response, outcome.shutdown)
    }

    fn dispatch(&self, request: Request, id: Option<&Json>) -> RequestOutcome {
        match request {
            // The registry's cached assign path: exact answers whether
            // they replay from the cache or compute fresh.
            Request::Assign { building, scan } => match self.registry.assign(&building, &scan) {
                Err(e) => {
                    // An inference failure proves the model loaded and
                    // the scan was attempted; registry-level failures
                    // attempted nothing.
                    let attempted = u64::from(matches!(e, ServeError::Inference(_)));
                    RequestOutcome {
                        attempted,
                        ..RequestOutcome::rejected(e)
                    }
                }
                Ok(floor) => RequestOutcome {
                    attempted: 1,
                    labeled: 1,
                    tenant_exists: true,
                    ..RequestOutcome::ok(ok_response(
                        "assign",
                        id,
                        [
                            ("building", Json::Str(building.clone())),
                            ("scan_id", Json::Num(scan.id().index() as f64)),
                            ("floor", Json::Num(floor.index() as f64)),
                        ],
                    ))
                },
            },
            Request::AssignBatch { building, scans } => self.assign_batch(&building, &scans, id),
            Request::Load { building } => match self.registry.get(&building) {
                Err(e) => RequestOutcome::rejected(e),
                Ok((model, fetch)) => {
                    let fetch = match fetch {
                        Fetch::Hit => "hit",
                        Fetch::Miss => "miss",
                        Fetch::Reload => "reload",
                    };
                    RequestOutcome {
                        tenant_exists: true,
                        ..RequestOutcome::ok(ok_response(
                            "load",
                            id,
                            [
                                ("building", Json::Str(building.clone())),
                                ("floors", Json::Num(model.floors() as f64)),
                                ("scans", Json::Num(model.samples().len() as f64)),
                                ("fetch", Json::Str(fetch.to_owned())),
                            ],
                        ))
                    }
                }
            },
            Request::Evict { building } => {
                let evicted = self.registry.evict(&building);
                RequestOutcome {
                    // An entry was cached, so the tenant is real.
                    tenant_exists: evicted,
                    ..RequestOutcome::ok(ok_response(
                        "evict",
                        id,
                        [
                            ("building", Json::Str(building)),
                            ("evicted", Json::Bool(evicted)),
                        ],
                    ))
                }
            }
            Request::Stats => {
                let metrics = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
                let stats = self.registry.with(|reg| metrics.to_json(reg));
                RequestOutcome::ok(ok_response("stats", id, [("stats", stats)]))
            }
            Request::Shutdown => RequestOutcome {
                shutdown: true,
                ..RequestOutcome::ok(ok_response("shutdown", id, []))
            },
        }
    }

    fn assign_batch(
        &self,
        building: &str,
        scans: &[fis_types::SignalSample],
        id: Option<&Json>,
    ) -> RequestOutcome {
        if self.config.max_batch > 0 && scans.len() > self.config.max_batch {
            return RequestOutcome::rejected(ServeError::Capacity(format!(
                "batch of {} scans exceeds the configured maximum of {}",
                scans.len(),
                self.config.max_batch
            )));
        }
        // Content-seeded per-scan RNGs: the fan-out preserves the PR 2
        // determinism contract for any thread count or batch order, and
        // the registry's answer cache only replays answers that contract
        // already fixes.
        let results = match self
            .registry
            .assign_batch(building, scans, self.config.threads)
        {
            Ok(results) => results,
            Err(e) => return RequestOutcome::rejected(e),
        };
        let mut failures = 0u64;
        let rows: Vec<Json> = scans
            .iter()
            .zip(results)
            .map(|(scan, result)| {
                let scan_id = ("scan_id", Json::Num(scan.id().index() as f64));
                match result {
                    Ok(floor) => Json::obj([scan_id, ("floor", Json::Num(floor.index() as f64))]),
                    Err(e) => {
                        failures += 1;
                        Json::obj([scan_id, ("error", ServeError::from(e).to_json())])
                    }
                }
            })
            .collect();
        let response = ok_response(
            "assign_batch",
            id,
            [
                ("building", Json::Str(building.to_owned())),
                ("count", Json::Num(rows.len() as f64)),
                ("failures", Json::Num(failures as f64)),
                ("results", Json::Arr(rows)),
            ],
        );
        RequestOutcome {
            attempted: scans.len() as u64,
            labeled: scans.len() as u64 - failures,
            scan_failures: failures,
            tenant_exists: true,
            ..RequestOutcome::ok(response)
        }
    }

    /// Serves one transport to completion. Returns `Ok(true)` when a
    /// `shutdown` request ended the session, `Ok(false)` on EOF. Lines
    /// are read as raw bytes and decoded lossily, so invalid UTF-8 on
    /// the wire yields a typed `protocol` error response instead of an
    /// `InvalidData` transport error.
    ///
    /// # Errors
    ///
    /// Only transport-level I/O errors; bad requests never error here.
    pub fn serve_connection<R: BufRead, W: Write>(
        &self,
        reader: R,
        writer: W,
    ) -> std::io::Result<bool> {
        pool::serve_lines(reader, writer, self)
    }

    /// Pipe mode: serves stdin → stdout until EOF or `shutdown`.
    ///
    /// # Errors
    ///
    /// Only stdin/stdout I/O errors.
    pub fn serve_stdio(&self) -> std::io::Result<bool> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.serve_connection(stdin.lock(), stdout.lock())
    }

    /// TCP mode: serves connections concurrently on a bounded worker
    /// pool ([`DaemonConfig::pool`]) until a client sends `shutdown`;
    /// queued and in-flight connections are drained before returning.
    /// A dropped connection is not fatal, and transient accept errors
    /// (`ECONNABORTED`, fd exhaustion, …) are logged and survived.
    ///
    /// # Errors
    ///
    /// Only non-transient accept-level I/O errors.
    pub fn serve_tcp(&self, listener: &TcpListener) -> std::io::Result<()> {
        pool::serve_pooled(listener, self, self.config.pool_workers())
    }
}

impl LineServer for Daemon {
    fn handle(&self, line: &str) -> (String, bool) {
        let (response, shutdown) = self.handle_line(line);
        (response.to_string(), shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_core::{FisOne, FisOneConfig, FittedModel};
    use fis_synth::BuildingConfig;
    use fis_types::json::ToJson;
    use std::path::PathBuf;

    fn quick_fit(name: &str, seed: u64) -> (fis_types::Building, FittedModel) {
        let b = BuildingConfig::new(name, 3)
            .samples_per_floor(15)
            .aps_per_floor(8)
            .atrium_aps(0)
            .seed(seed)
            .generate();
        let model = FisOne::new(FisOneConfig::quick(seed))
            .fit(
                b.name(),
                b.samples(),
                b.floors(),
                b.bottom_anchor().unwrap(),
            )
            .unwrap();
        (b, model)
    }

    fn daemon_over(
        models: &[(&str, u64)],
        tag: &str,
    ) -> (Daemon, PathBuf, Vec<fis_types::Building>) {
        let dir = std::env::temp_dir().join(format!("fis_server_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut buildings = Vec::new();
        for &(name, seed) in models {
            let (b, model) = quick_fit(name, seed);
            model.save(dir.join(format!("{name}.json"))).unwrap();
            buildings.push(b);
        }
        let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
        (daemon, dir, buildings)
    }

    #[test]
    fn assign_via_daemon_matches_direct_assign() {
        let (daemon, dir, buildings) = daemon_over(&[("srv", 21)], "assign");
        let b = &buildings[0];
        let model = FittedModel::load(dir.join("srv.json")).unwrap();
        for scan in b.samples().iter().take(5) {
            let line = Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str("srv".into())),
                ("scan", scan.to_json()),
            ])
            .to_string();
            let (response, shutdown) = daemon.handle_line(&line);
            assert!(!shutdown);
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
            let floor = response.get("floor").unwrap().as_usize().unwrap();
            assert_eq!(floor, model.assign(scan).unwrap().index());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_results_in_input_order_with_per_scan_errors() {
        let (daemon, dir, buildings) = daemon_over(&[("batch", 22)], "batch");
        let b = &buildings[0];
        let mut scans: Vec<Json> = b.samples().iter().take(4).map(|s| s.to_json()).collect();
        // An alien scan in the middle: the batch continues around it.
        scans.insert(
            2,
            Json::parse(r#"{"id":999,"readings":[["ff:ff:ff:ff:ff:0f",-40.0]]}"#).unwrap(),
        );
        let line = Json::obj([
            ("op", Json::Str("assign_batch".into())),
            ("building", Json::Str("batch".into())),
            ("scans", Json::Arr(scans)),
        ])
        .to_string();
        let (response, _) = daemon.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("count").unwrap().as_usize(), Some(5));
        assert_eq!(response.get("failures").unwrap().as_usize(), Some(1));
        let rows = response.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[2].get("scan_id").unwrap().as_usize(), Some(999));
        assert_eq!(
            rows[2].get("error").unwrap().get("kind").unwrap().as_str(),
            Some("inference")
        );
        for (i, row) in rows.iter().enumerate() {
            if i != 2 {
                assert!(row.get("floor").is_some(), "row {i} has a floor");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_batch_is_capacity_error() {
        let dir = std::env::temp_dir().join(format!("fis_server_cap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)).max_batch(2));
        let (response, _) = daemon.handle_line(
            r#"{"op":"assign_batch","building":"x","scans":[{"id":0,"readings":[]},{"id":1,"readings":[]},{"id":2,"readings":[]}]}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            response.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("capacity")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_connection_pipeline_and_shutdown() {
        let (daemon, dir, buildings) = daemon_over(&[("pipe", 23)], "pipe");
        let scan = buildings[0].samples()[0].to_json();
        let script = format!(
            "{}\n\nnot json at all\n{}\n{}\n",
            Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str("pipe".into())),
                ("scan", scan),
                ("id", Json::Num(1.0)),
            ]),
            r#"{"op":"stats","id":2}"#,
            r#"{"op":"shutdown","id":3}"#,
        );
        let mut out = Vec::new();
        let shutdown = daemon
            .serve_connection(script.as_bytes(), &mut out)
            .unwrap();
        assert!(shutdown, "script ends in shutdown");
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 4, "blank line skipped, 4 responses");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(lines[0].get("id").unwrap().as_usize(), Some(1));
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[1].get("error").unwrap().get("kind").unwrap().as_str(),
            Some("protocol")
        );
        let stats = lines[2].get("stats").unwrap();
        assert_eq!(
            stats
                .get("global")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_usize(),
            Some(2),
            "assign + malformed recorded before stats"
        );
        assert_eq!(lines[3].get("op").unwrap().as_str(), Some("shutdown"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tcp_roundtrip_and_shutdown() {
        use std::io::{BufRead, BufReader, Write};
        let (daemon, dir, _) = daemon_over(&[("tcp", 24)], "tcp");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            daemon.serve_tcp(&listener).unwrap();
            daemon
        });
        // First connection: load then drop (daemon must keep accepting).
        {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            writeln!(stream, r#"{{"op":"load","building":"tcp"}}"#).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let json = Json::parse(line.trim()).unwrap();
            assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
            assert_eq!(json.get("fetch").unwrap().as_str(), Some("miss"));
        }
        // Second connection: the cache survived; shut the daemon down.
        {
            let mut stream = std::net::TcpStream::connect(addr).unwrap();
            writeln!(stream, r#"{{"op":"load","building":"tcp"}}"#).unwrap();
            writeln!(stream, r#"{{"op":"shutdown"}}"#).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(
                Json::parse(line.trim())
                    .unwrap()
                    .get("fetch")
                    .unwrap()
                    .as_str(),
                Some("hit"),
                "model stayed cached across connections"
            );
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(
                Json::parse(line.trim())
                    .unwrap()
                    .get("op")
                    .unwrap()
                    .as_str(),
                Some("shutdown")
            );
        }
        let daemon = handle.join().unwrap();
        assert_eq!(daemon.registry().stats().hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_utf8_line_is_typed_protocol_error_not_transport_death() {
        let (daemon, dir, buildings) = daemon_over(&[("bytes", 25)], "bytes");
        let scan = buildings[0].samples()[0].to_json();
        let assign = Json::obj([
            ("op", Json::Str("assign".into())),
            ("building", Json::Str("bytes".into())),
            ("scan", scan),
        ])
        .to_string();
        // A raw 0xFF byte mid-stream previously surfaced as an
        // InvalidData error from read_line and killed the connection.
        let mut script = Vec::new();
        script.extend_from_slice(b"{\"op\":\"stats\",\xff\xfe}\n");
        script.extend_from_slice(assign.as_bytes());
        script.extend_from_slice(b"\n{\"op\":\"shutdown\"}\n");
        let mut out = Vec::new();
        let shutdown = daemon.serve_connection(&script[..], &mut out).unwrap();
        assert!(shutdown, "connection survived to the shutdown line");
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 3, "every line answered");
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            lines[0].get("error").unwrap().get("kind").unwrap().as_str(),
            Some("protocol"),
            "non-UTF-8 frame must be a typed protocol error"
        );
        assert_eq!(lines[1].get("ok"), Some(&Json::Bool(true)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
