//! Multi-tenant model registry: lazy load, LRU eviction, hot reload.
//!
//! The registry maps building ids onto [`FittedModel`]s backed by a
//! model directory: the artifact for building `hq` lives at
//! `<dir>/hq.json` (exactly what `fis-one fit --out` writes). Models are
//! loaded lazily on first request and cached under a configurable budget:
//!
//! - **LRU eviction** — when loading a model would exceed
//!   [`RegistryConfig::max_models`] or [`RegistryConfig::max_bytes`]
//!   (artifact bytes on disk as the memory proxy), the least recently
//!   used other model is dropped first. The model being served is never
//!   evicted to make room for itself.
//! - **Hot reload** — every access re-stats the artifact; if its
//!   `(mtime, len)` changed since load, the model is reloaded before
//!   serving. Swapping a new artifact into the directory takes effect on
//!   the next request, no restart. [`FittedModel::save`] writes
//!   atomically (temp file + rename), so refitting over a live serving
//!   directory never exposes a half-written artifact; other writers
//!   should do the same.
//! - **Racy-clean verification** — a rewrite that keeps both mtime and
//!   byte length identical (possible within the filesystem's mtime
//!   granularity) is invisible to the stat fingerprint — the classic
//!   stat-cache race. Each entry therefore keeps the FNV-1a hash of its
//!   artifact bytes: while the artifact's mtime is close enough to the
//!   last verification that a same-fingerprint rewrite is possible
//!   (within [`MTIME_GRANULARITY`]), a fingerprint "hit" re-reads the
//!   file and compares hashes, reloading on mismatch. Once the mtime is
//!   safely older than a verification, hits go back to stat-only — the
//!   hash check self-retires, so steady-state serving never re-reads.
//!   Conversely, a fingerprint *change* with an unchanged hash (e.g. a
//!   `touch`) just refreshes the fingerprint instead of reloading, so
//!   answer caches survive metadata-only rewrites.
//! - **Deletion detection** — if the artifact vanished after load, the
//!   cached model is dropped and the request fails with a typed `model`
//!   error rather than serving from a file that no longer exists.
//!
//! Eviction history cannot change responses: artifacts load
//! byte-identically and [`FittedModel::assign`] is deterministic in
//! `(model, scan)` alone, so evict → reload → assign is bit-identical to
//! assign on the original load. `tests/serve_determinism.rs` enforces
//! this against the golden fixtures.
//!
//! # Assign answer cache
//!
//! With [`RegistryConfig::assign_cache`] > 0, every cached model carries
//! a bounded scan-content → floor answer cache, served through
//! [`ModelRegistry::assign`] / [`ModelRegistry::assign_batch`]. The
//! determinism contract is what makes this *exact* rather than
//! approximate: an assignment is a pure function of `(model, scan
//! content)` — the per-scan inference RNG is seeded from content alone —
//! so replaying a cached answer is bit-identical to recomputing it.
//! Three design points keep that airtight:
//!
//! - **Collision-proof keys** — [`ScanKey`] hashes by the FNV-1a of the
//!   scan's readings but compares by the *full* content, so two scans
//!   that collide on the 64-bit hash can never alias each other's
//!   answers.
//! - **Per-entry lifetime** — the cache lives inside the registry
//!   `Entry` next to its model, so eviction, hot reload, and deletion
//!   detection drop it automatically: a cached answer can never outlive
//!   the exact artifact generation that produced it.
//! - **Bounded FIFO** — at most `assign_cache` answers per model,
//!   oldest-inserted dropped first (deterministic, no clock). Only
//!   successful answers are cached; errors are recomputed (and are
//!   deterministic anyway).
//!
//! Counters accumulate registry-lifetime in
//! [`RegistryStats::assign_cache`] (a [`fis_metrics::CacheCounters`])
//! and surface through the daemon's `stats` op.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use fis_core::{FisError, FittedModel};
use fis_metrics::CacheCounters;
use fis_obs::{self as obs, Level};
use fis_types::{FloorId, SignalSample};

use crate::error::ServeError;

/// Registry configuration.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Directory holding `<building>.json` artifacts.
    pub dir: PathBuf,
    /// Maximum cached models (`0` = unlimited).
    pub max_models: usize,
    /// Maximum total artifact bytes cached (`0` = unlimited).
    pub max_bytes: u64,
    /// Per-model assign answer-cache capacity (`0` = cache disabled).
    pub assign_cache: usize,
}

impl RegistryConfig {
    /// A registry over `dir` with no cache budget and the answer cache
    /// disabled.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            max_models: 0,
            max_bytes: 0,
            assign_cache: 0,
        }
    }

    /// Caps the cached model count (`0` = unlimited).
    pub fn max_models(mut self, n: usize) -> Self {
        self.max_models = n;
        self
    }

    /// Caps the cached artifact bytes (`0` = unlimited).
    pub fn max_bytes(mut self, n: u64) -> Self {
        self.max_bytes = n;
        self
    }

    /// Sets the per-model assign answer-cache capacity (`0` = disabled).
    pub fn assign_cache(mut self, n: usize) -> Self {
        self.assign_cache = n;
        self
    }
}

/// Content identity of one scan for answer-cache keying.
///
/// Hashes by the 64-bit FNV-1a of the readings (cheap bucketing) but
/// compares by the full `(MAC, RSSI-bits)` sequence, so a hash collision
/// degrades to a cache miss — never to a wrong answer. The sample *id*
/// is deliberately excluded: the inference seed (`scan_seed`) is derived
/// from the readings alone, so two scans with identical readings receive
/// bit-identical answers regardless of id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanKey {
    fnv: u64,
    /// `(mac.to_u64(), rssi.dbm().to_bits())` per reading, in the
    /// sample's canonical (MAC-sorted) iteration order.
    readings: Arc<[(u64, u64)]>,
}

impl ScanKey {
    /// Derives the key from a scan's content.
    pub fn of(scan: &SignalSample) -> Self {
        const PRIME: u64 = 0x100_0000_01b3;
        let readings: Vec<(u64, u64)> = scan
            .iter()
            .map(|(mac, rssi)| (mac.to_u64(), rssi.dbm().to_bits()))
            .collect();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &(mac, rssi) in &readings {
            for b in mac.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
            for b in rssi.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(PRIME);
            }
        }
        Self {
            fnv: h,
            readings: readings.into(),
        }
    }

    /// The FNV-1a content hash (the `Hash` value).
    pub fn fnv(&self) -> u64 {
        self.fnv
    }
}

impl Hash for ScanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The precomputed content hash alone; `Eq` still compares the
        // full readings, so colliding keys land in one bucket but never
        // alias.
        state.write_u64(self.fnv);
    }
}

/// A bounded FIFO scan-content → floor cache for one model generation.
/// See the [module docs](self) for why replaying answers is exact.
#[derive(Debug)]
pub struct AssignCache {
    capacity: usize,
    map: HashMap<ScanKey, FloorId>,
    /// Insertion order; the front is the next FIFO victim.
    order: VecDeque<ScanKey>,
}

impl AssignCache {
    /// An empty cache holding at most `capacity` answers (`0` = always
    /// empty).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cached answers right now.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no answers are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up the answer for a scan key.
    pub fn get(&self, key: &ScanKey) -> Option<FloorId> {
        self.map.get(key).copied()
    }

    /// Stores an answer, evicting the oldest insertion if over capacity.
    /// Re-inserting a cached key is a no-op (the answer cannot differ).
    pub fn insert(&mut self, key: ScanKey, floor: FloorId, counters: &mut CacheCounters) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        self.map.insert(key.clone(), floor);
        self.order.push_back(key);
        counters.insertion();
        while self.map.len() > self.capacity {
            if let Some(victim) = self.order.pop_front() {
                self.map.remove(&victim);
                counters.eviction();
            }
        }
    }
}

/// Cache counters, exact over the registry's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to load from disk.
    pub misses: u64,
    /// Models dropped by the LRU budget or an explicit `evict`.
    pub evictions: u64,
    /// Models reloaded because the artifact changed on disk.
    pub reloads: u64,
    /// Loads that failed (missing, corrupt, or mismatched artifacts).
    pub load_failures: u64,
    /// Assign answer-cache counters, summed across all tenants.
    pub assign_cache: CacheCounters,
}

/// The coarsest artifact-mtime granularity the registry defends
/// against: a rewrite within this window of the last content
/// verification can leave the `(mtime, len)` fingerprint unchanged, so
/// fingerprint hits inside the window are re-verified by content hash.
pub const MTIME_GRANULARITY: std::time::Duration = std::time::Duration::from_secs(2);

#[derive(Debug)]
struct Entry {
    model: Arc<FittedModel>,
    /// Artifact size on disk: the byte-budget proxy, and — together
    /// with `mtime` — the change-detection fingerprint.
    bytes: u64,
    mtime: Option<SystemTime>,
    /// FNV-1a over the artifact bytes as loaded: the ground truth the
    /// fingerprint is only a proxy for.
    content_hash: u64,
    /// When the cached model was last proven to match the file content
    /// (load, reload, or an explicit hash check). A fingerprint hit is
    /// trusted without re-reading only once the artifact's mtime is at
    /// least [`MTIME_GRANULARITY`] older than this.
    verified_at: SystemTime,
    last_used: u64,
    /// Answers for exactly this model generation; dropped with the
    /// entry on evict/reload, so invalidation is structural.
    cache: AssignCache,
}

/// A cached, loaded model plus how it got there (for metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetch {
    /// Served from the cache.
    Hit,
    /// Loaded from disk for the first time (or after an eviction).
    Miss,
    /// Reloaded because the artifact changed on disk.
    Reload,
}

/// The lazy, budgeted, hot-reloading model cache. See the
/// [module docs](self).
#[derive(Debug)]
pub struct ModelRegistry {
    config: RegistryConfig,
    entries: HashMap<String, Entry>,
    tick: u64,
    stats: RegistryStats,
}

impl ModelRegistry {
    /// Creates an empty registry over the configured model directory.
    pub fn new(config: RegistryConfig) -> Self {
        Self {
            config,
            entries: HashMap::new(),
            tick: 0,
            stats: RegistryStats::default(),
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Lifetime cache counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total artifact bytes currently cached.
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// The cached building ids with their artifact sizes, sorted by id
    /// (deterministic for the `stats` op).
    pub fn loaded(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .entries
            .iter()
            .map(|(k, e)| (k.clone(), e.bytes))
            .collect();
        v.sort();
        v
    }

    /// The artifact path for a building id.
    pub fn artifact_path(&self, building: &str) -> PathBuf {
        self.config.dir.join(format!("{building}.json"))
    }

    /// Fetches the model for `building`, loading/reloading as needed.
    /// Returns the model and whether this was a hit, miss, or reload.
    ///
    /// # Errors
    ///
    /// - [`ServeError::Protocol`] for ids that cannot name an artifact
    ///   (path separators, `.` / `..`),
    /// - [`ServeError::UnknownBuilding`] when no artifact exists,
    /// - [`ServeError::Model`] when the artifact vanished after load, is
    ///   corrupt, or was fitted for a different building id.
    pub fn get(&mut self, building: &str) -> Result<(Arc<FittedModel>, Fetch), ServeError> {
        validate_building_id(building)?;
        let path = self.artifact_path(building);
        let meta = match std::fs::metadata(&path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if self.entries.remove(building).is_some() {
                    // Loaded earlier, artifact deleted since: drop the
                    // cache entry and fail loudly instead of serving a
                    // model whose backing file is gone.
                    self.stats.evictions += 1;
                    return Err(ServeError::Model(format!(
                        "artifact {} was deleted after load; evicted `{building}`",
                        path.display()
                    )));
                }
                return Err(ServeError::UnknownBuilding(format!(
                    "no artifact for `{building}` (expected {})",
                    path.display()
                )));
            }
            Err(e) => {
                return Err(ServeError::Model(format!(
                    "stat {} failed: {e}",
                    path.display()
                )))
            }
        };
        let mtime = meta.modified().ok();
        let bytes = meta.len();

        self.tick += 1;
        // Stat-only fast path: the fingerprint matches AND the artifact
        // mtime is old enough that a same-fingerprint rewrite since the
        // last content verification is impossible.
        let fresh_hit = match self.entries.get(building) {
            Some(entry) if entry.mtime == mtime && entry.bytes == bytes => match mtime {
                Some(m) => m
                    .checked_add(MTIME_GRANULARITY)
                    .is_some_and(|edge| edge < entry.verified_at),
                // No readable mtime: the fingerprint is length alone,
                // too weak to ever trust without a hash check.
                None => false,
            },
            _ => false,
        };
        if fresh_hit {
            let entry = self.entries.get_mut(building).expect("checked fresh above");
            entry.last_used = self.tick;
            self.stats.hits += 1;
            return Ok((Arc::clone(&entry.model), Fetch::Hit));
        }

        // Anything else needs the file content: first load, changed
        // fingerprint, or a fingerprint hit still inside the racy
        // window. One read serves both the hash check and the parse.
        let cached = self.entries.contains_key(building);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Vanished between stat and read: same handling as a
                // missing artifact at stat time.
                if self.entries.remove(building).is_some() {
                    self.stats.evictions += 1;
                    return Err(ServeError::Model(format!(
                        "artifact {} was deleted after load; evicted `{building}`",
                        path.display()
                    )));
                }
                return Err(ServeError::UnknownBuilding(format!(
                    "no artifact for `{building}` (expected {})",
                    path.display()
                )));
            }
            Err(e) => {
                return Err(ServeError::Model(format!(
                    "read {} failed: {e}",
                    path.display()
                )))
            }
        };
        let content_hash = fnv1a(text.as_bytes());
        if let Some(entry) = self.entries.get_mut(building) {
            if entry.content_hash == content_hash {
                // Content unchanged — either a racy-window verification
                // or a metadata-only rewrite (e.g. touch). Refresh the
                // fingerprint and keep the model and its answer cache.
                entry.mtime = mtime;
                entry.bytes = bytes;
                entry.verified_at = SystemTime::now();
                entry.last_used = self.tick;
                self.stats.hits += 1;
                return Ok((Arc::clone(&entry.model), Fetch::Hit));
            }
        }

        // Cache miss, or the artifact content really changed (hot
        // reload — including a same-fingerprint rewrite the stat cache
        // alone would have missed). A failed reload drops the stale
        // entry — serving the old model after the artifact was replaced
        // would silently violate the hot-reload contract.
        let fetch = if cached { Fetch::Reload } else { Fetch::Miss };
        let model = match self.load_artifact(building, &path, &text) {
            Ok(model) => Arc::new(model),
            Err(e) => {
                if self.entries.remove(building).is_some() {
                    self.stats.evictions += 1;
                }
                return Err(e);
            }
        };
        match fetch {
            Fetch::Reload => self.stats.reloads += 1,
            _ => self.stats.misses += 1,
        }
        self.entries.insert(
            building.to_owned(),
            Entry {
                model: Arc::clone(&model),
                bytes,
                mtime,
                content_hash,
                verified_at: SystemTime::now(),
                last_used: self.tick,
                cache: AssignCache::new(self.config.assign_cache),
            },
        );
        self.enforce_budget(building);
        Ok((model, fetch))
    }

    /// Labels one scan through the answer cache: a content hit replays
    /// the stored floor (bit-identical to recomputing, see the
    /// [module docs](self)); a miss runs [`FittedModel::assign`] and
    /// caches a successful answer. With the cache disabled this is
    /// exactly `get` + `assign`.
    ///
    /// # Errors
    ///
    /// The [`ModelRegistry::get`] errors, plus [`ServeError::Inference`]
    /// when the scan cannot be embedded. Errors are never cached.
    pub fn assign(&mut self, building: &str, scan: &SignalSample) -> Result<FloorId, ServeError> {
        let (model, _) = self.get(building)?;
        if self.config.assign_cache == 0 {
            return model.assign(scan).map_err(ServeError::from);
        }
        let key = ScanKey::of(scan);
        if let Some(floor) = self
            .entries
            .get(building)
            .and_then(|entry| entry.cache.get(&key))
        {
            self.stats.assign_cache.hit();
            return Ok(floor);
        }
        self.stats.assign_cache.miss();
        let floor = model.assign(scan).map_err(ServeError::from)?;
        if let Some(entry) = self.entries.get_mut(building) {
            entry.cache.insert(key, floor, &mut self.stats.assign_cache);
        }
        Ok(floor)
    }

    /// Labels a batch through the answer cache, preserving
    /// [`FittedModel::assign_stream`] semantics: results in input order,
    /// per-scan failures in their slot. Cached and in-batch-duplicate
    /// scans are counted as hits and skip recomputation; only the unique
    /// missing scans fan out over `threads` workers. Because every
    /// answer is a pure function of `(model, scan content)`, the output
    /// is bit-identical to the uncached fan-out for any mix of hits,
    /// misses, and duplicates.
    ///
    /// # Errors
    ///
    /// Only the [`ModelRegistry::get`] errors; per-scan failures land in
    /// their result slot.
    #[allow(clippy::type_complexity)]
    pub fn assign_batch(
        &mut self,
        building: &str,
        scans: &[SignalSample],
        threads: usize,
    ) -> Result<Vec<Result<FloorId, FisError>>, ServeError> {
        let (model, _) = self.get(building)?;
        if self.config.assign_cache == 0 {
            return Ok(model.assign_stream(scans, threads));
        }
        let keys: Vec<ScanKey> = scans.iter().map(ScanKey::of).collect();
        let mut results: Vec<Option<Result<FloorId, FisError>>> = vec![None; scans.len()];
        // Upfront lookups in input order: cached answers fill their
        // slots; the first occurrence of each missing content computes,
        // later duplicates replay it (a hit — no computation).
        let mut first_of: HashMap<&ScanKey, usize> = HashMap::new();
        let mut missing: Vec<usize> = Vec::new();
        let cache = self.entries.get(building).map(|e| &e.cache);
        for (i, key) in keys.iter().enumerate() {
            if let Some(floor) = cache.and_then(|c| c.get(key)) {
                self.stats.assign_cache.hit();
                results[i] = Some(Ok(floor));
            } else if first_of.contains_key(key) {
                self.stats.assign_cache.hit();
            } else {
                self.stats.assign_cache.miss();
                first_of.insert(key, i);
                missing.push(i);
            }
        }
        let subset: Vec<SignalSample> = missing.iter().map(|&i| scans[i].clone()).collect();
        let computed = model.assign_stream(&subset, threads);
        if let Some(entry) = self.entries.get_mut(building) {
            for (&i, result) in missing.iter().zip(&computed) {
                if let Ok(floor) = result {
                    entry
                        .cache
                        .insert(keys[i].clone(), *floor, &mut self.stats.assign_cache);
                }
            }
        }
        for (&i, result) in missing.iter().zip(computed) {
            results[i] = Some(result);
        }
        // In-batch duplicates replay the first occurrence's answer (same
        // content ⇒ same answer, ok or error); the first occurrence is
        // always at a lower index, so its slot is already filled.
        for i in 0..results.len() {
            if results[i].is_none() {
                let first = first_of[&keys[i]];
                results[i] = results[first].clone();
            }
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every slot resolved"))
            .collect())
    }

    /// Answers cached across all resident models right now.
    pub fn assign_cache_entries(&self) -> usize {
        self.entries.values().map(|e| e.cache.len()).sum()
    }

    /// Peeks the answer cache without touching the counters. Used by
    /// [`SharedRegistry`], which holds the registry lock only around the
    /// lookup and accounts for hits/misses itself.
    pub fn cached_answer(&self, building: &str, key: &ScanKey) -> Option<FloorId> {
        self.entries
            .get(building)
            .and_then(|entry| entry.cache.get(key))
    }

    /// The assign answer-cache counters, for callers that replay or
    /// dedupe answers outside [`ModelRegistry::assign`].
    pub fn assign_counters_mut(&mut self) -> &mut CacheCounters {
        &mut self.stats.assign_cache
    }

    /// Stores an answer that was computed *outside* the registry lock —
    /// but only if the cached entry still holds exactly the model that
    /// produced it. If the entry was evicted or hot-reloaded in the
    /// meantime, the answer is silently dropped: caching it against a
    /// different model generation could serve a stale floor after the
    /// artifact changed.
    pub fn store_answer(
        &mut self,
        building: &str,
        model: &Arc<FittedModel>,
        key: ScanKey,
        floor: FloorId,
    ) {
        if let Some(entry) = self.entries.get_mut(building) {
            if Arc::ptr_eq(&entry.model, model) {
                entry.cache.insert(key, floor, &mut self.stats.assign_cache);
            }
        }
    }

    /// Drops a cached model; returns whether it was cached. The artifact
    /// stays on disk and the next request reloads it.
    pub fn evict(&mut self, building: &str) -> bool {
        let evicted = self.entries.remove(building).is_some();
        if evicted {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Parses an artifact from its already-read text (the caller reads
    /// the file once for both hashing and parsing) and validates the
    /// building-id pairing.
    fn load_artifact(
        &mut self,
        building: &str,
        path: &Path,
        text: &str,
    ) -> Result<FittedModel, ServeError> {
        let model = FittedModel::from_json_str(text.trim_end_matches('\n')).map_err(|e| {
            self.stats.load_failures += 1;
            ServeError::from(e)
        })?;
        if model.building() != building {
            self.stats.load_failures += 1;
            return Err(ServeError::Model(format!(
                "artifact {} was fitted for building `{}`, not `{building}`; \
                 registry files must be named after the building they serve",
                path.display(),
                model.building()
            )));
        }
        Ok(model)
    }

    /// Evicts least-recently-used models until the budget holds, never
    /// touching `keep` (the model being served right now).
    fn enforce_budget(&mut self, keep: &str) {
        loop {
            let over_count =
                self.config.max_models > 0 && self.entries.len() > self.config.max_models;
            let over_bytes =
                self.config.max_bytes > 0 && self.total_bytes() > self.config.max_bytes;
            if !over_count && !over_bytes {
                return;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| k.as_str() != keep)
                // Tie-break on the id so eviction order is deterministic
                // even if two entries share a tick (they cannot today).
                .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.stats.evictions += 1;
                }
                // Only the active model is left; keep serving it even if
                // it alone exceeds the byte budget.
                None => return,
            }
        }
    }
}

/// A thread-safe handle over one [`ModelRegistry`], cheap to clone.
///
/// The registry itself stays single-threaded behind a mutex; what makes
/// this scale is that the lock is held only for *bookkeeping* — fetching
/// the `Arc<FittedModel>`, consulting the answer cache, storing results —
/// while the actual inference (`FittedModel::assign` /
/// `assign_stream`) always runs **outside** the lock. Many connections
/// can therefore label scans concurrently against the same or different
/// models; they serialize only on cache lookups and disk loads.
///
/// Determinism is unaffected by any interleaving: an assignment is a
/// pure function of `(model, scan content)`, so the lock acquisition
/// order can reorder *when* answers are computed or cached, never *what*
/// they are. The one race that could matter — caching an answer after
/// the model it came from was hot-reloaded — is closed by
/// [`ModelRegistry::store_answer`]'s same-`Arc` guard.
#[derive(Debug, Clone)]
pub struct SharedRegistry {
    inner: Arc<std::sync::Mutex<ModelRegistry>>,
    /// Copied out of the (immutable) config so the hot path can check it
    /// without taking the lock.
    assign_cache: usize,
}

impl SharedRegistry {
    /// Wraps a fresh registry over the configured model directory.
    pub fn new(config: RegistryConfig) -> Self {
        let assign_cache = config.assign_cache;
        Self {
            inner: Arc::new(std::sync::Mutex::new(ModelRegistry::new(config))),
            assign_cache,
        }
    }

    /// Runs `f` under the registry lock. Keep the closure short — every
    /// connection serializes on this lock — and never run inference
    /// inside it.
    pub fn with<R>(&self, f: impl FnOnce(&mut ModelRegistry) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut guard)
    }

    /// Fetches the model for `building` (see [`ModelRegistry::get`]).
    ///
    /// # Errors
    ///
    /// The [`ModelRegistry::get`] errors.
    pub fn get(&self, building: &str) -> Result<(Arc<FittedModel>, Fetch), ServeError> {
        let result = self.with(|reg| reg.get(building));
        // Recorded on the request thread, after the lock: cache hits at
        // trace, disk traffic at info, failures at warn — each event
        // inherits the enclosing request/assign span.
        match &result {
            Ok((_, Fetch::Hit)) => obs::event(Level::Trace, "registry", "load")
                .str("building", building)
                .str("fetch", "hit")
                .emit(),
            Ok((_, fetch)) => obs::event(Level::Info, "registry", "load")
                .str("building", building)
                .str(
                    "fetch",
                    match fetch {
                        Fetch::Reload => "reload",
                        _ => "miss",
                    },
                )
                .emit(),
            Err(e) => obs::event(Level::Warn, "registry", "load_error")
                .str("building", building)
                .str("kind", e.kind())
                .emit(),
        }
        result
    }

    /// Labels one scan, replaying the answer cache when enabled; the
    /// inference itself runs outside the registry lock. Bit-identical to
    /// [`ModelRegistry::assign`] for any thread interleaving.
    ///
    /// # Errors
    ///
    /// The [`ModelRegistry::get`] errors, plus [`ServeError::Inference`]
    /// when the scan cannot be embedded.
    pub fn assign(&self, building: &str, scan: &SignalSample) -> Result<FloorId, ServeError> {
        if self.assign_cache == 0 {
            let (model, _) = self.get(building)?;
            return model.assign(scan).map_err(ServeError::from);
        }
        let key = ScanKey::of(scan);
        let model = self.with(|reg| -> Result<_, ServeError> {
            let (model, _) = reg.get(building)?;
            if let Some(floor) = reg.cached_answer(building, &key) {
                reg.assign_counters_mut().hit();
                return Ok(Err(floor));
            }
            reg.assign_counters_mut().miss();
            Ok(Ok(model))
        })?;
        let hit = model.is_err();
        obs::event(Level::Trace, "registry", "cache_lookup")
            .str("building", building)
            .num("scans", 1.0)
            .num("hits", if hit { 1.0 } else { 0.0 })
            .num("computed", if hit { 0.0 } else { 1.0 })
            .emit();
        let model = match model {
            Err(cached) => return Ok(cached),
            Ok(model) => model,
        };
        let floor = model.assign(scan).map_err(ServeError::from)?;
        self.with(|reg| reg.store_answer(building, &model, key, floor));
        Ok(floor)
    }

    /// Labels a batch with the same semantics as
    /// [`ModelRegistry::assign_batch`] — results in input order, cached
    /// and in-batch-duplicate scans replayed, only unique missing scans
    /// fanned out over `threads` — but with the fan-out outside the
    /// registry lock, so concurrent batches against different models
    /// overlap fully.
    ///
    /// # Errors
    ///
    /// Only the [`ModelRegistry::get`] errors; per-scan failures land in
    /// their result slot.
    #[allow(clippy::type_complexity)]
    pub fn assign_batch(
        &self,
        building: &str,
        scans: &[SignalSample],
        threads: usize,
    ) -> Result<Vec<Result<FloorId, FisError>>, ServeError> {
        if self.assign_cache == 0 {
            let (model, _) = self.get(building)?;
            return Ok(model.assign_stream(scans, threads));
        }
        let keys: Vec<ScanKey> = scans.iter().map(ScanKey::of).collect();
        let mut results: Vec<Option<Result<FloorId, FisError>>> = vec![None; scans.len()];
        let mut first_of: HashMap<&ScanKey, usize> = HashMap::new();
        let mut missing: Vec<usize> = Vec::new();
        // One lock hold for the whole lookup phase: model fetch plus the
        // per-scan cache peek (hits fill their slots, the first
        // occurrence of each missing content queues for compute).
        let model = self.with(|reg| -> Result<_, ServeError> {
            let (model, _) = reg.get(building)?;
            for (i, key) in keys.iter().enumerate() {
                if let Some(floor) = reg.cached_answer(building, key) {
                    reg.assign_counters_mut().hit();
                    results[i] = Some(Ok(floor));
                } else if first_of.contains_key(key) {
                    reg.assign_counters_mut().hit();
                } else {
                    reg.assign_counters_mut().miss();
                    first_of.insert(key, i);
                    missing.push(i);
                }
            }
            Ok(model)
        })?;
        obs::event(Level::Trace, "registry", "cache_lookup")
            .str("building", building)
            .num("scans", scans.len() as f64)
            .num("hits", (scans.len() - missing.len()) as f64)
            .num("computed", missing.len() as f64)
            .emit();
        let subset: Vec<SignalSample> = missing.iter().map(|&i| scans[i].clone()).collect();
        let computed = model.assign_stream(&subset, threads);
        self.with(|reg| {
            for (&i, result) in missing.iter().zip(&computed) {
                if let Ok(floor) = result {
                    reg.store_answer(building, &model, keys[i].clone(), *floor);
                }
            }
        });
        for (&i, result) in missing.iter().zip(computed) {
            results[i] = Some(result);
        }
        for i in 0..results.len() {
            if results[i].is_none() {
                let first = first_of[&keys[i]];
                results[i] = results[first].clone();
            }
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("every slot resolved"))
            .collect())
    }

    /// Drops a cached model (see [`ModelRegistry::evict`]).
    pub fn evict(&self, building: &str) -> bool {
        let evicted = self.with(|reg| reg.evict(building));
        obs::event(Level::Info, "registry", "evict")
            .str("building", building)
            .field("evicted", fis_types::json::Json::Bool(evicted))
            .emit();
        evicted
    }

    /// Lifetime cache counters.
    pub fn stats(&self) -> RegistryStats {
        self.with(|reg| reg.stats())
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.with(|reg| reg.len())
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.with(|reg| reg.is_empty())
    }

    /// Answers cached across all resident models right now.
    pub fn assign_cache_entries(&self) -> usize {
        self.with(|reg| reg.assign_cache_entries())
    }
}

/// FNV-1a over a byte slice, used as the artifact content hash for
/// racy-clean verification (same constants as [`ScanKey`]'s reading
/// hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

fn validate_building_id(building: &str) -> Result<(), ServeError> {
    if building.is_empty()
        || building == "."
        || building == ".."
        || building.contains('/')
        || building.contains('\\')
        || building.contains('\0')
    {
        return Err(ServeError::Protocol(format!(
            "building id `{}` cannot name an artifact file",
            building.escape_default()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_core::{FisOne, FisOneConfig};
    use fis_synth::BuildingConfig;

    fn quick_model(name: &str, samples: usize, seed: u64) -> FittedModel {
        let b = BuildingConfig::new(name, 3)
            .samples_per_floor(samples)
            .aps_per_floor(8)
            .atrium_aps(0)
            .seed(seed)
            .generate();
        FisOne::new(FisOneConfig::quick(seed))
            .fit(
                b.name(),
                b.samples(),
                b.floors(),
                b.bottom_anchor().unwrap(),
            )
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fis_registry_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lazy_load_then_hit() {
        let dir = temp_dir("lazy");
        let model = quick_model("alpha", 15, 1);
        model.save(dir.join("alpha.json")).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let (m1, f1) = reg.get("alpha").unwrap();
        assert_eq!(f1, Fetch::Miss);
        let (m2, f2) = reg.get("alpha").unwrap();
        assert_eq!(f2, Fetch::Hit);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(reg.stats().hits, 1);
        assert_eq!(reg.stats().misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_building_is_typed() {
        let dir = temp_dir("unknown");
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let err = reg.get("ghost").unwrap_err();
        assert_eq!(err.kind(), "unknown_building");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_ids_are_rejected_before_touching_disk() {
        let dir = temp_dir("hostile");
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        for id in ["", ".", "..", "../etc/passwd", "a/b", "a\\b", "nul\0"] {
            assert_eq!(reg.get(id).unwrap_err().kind(), "protocol", "id {id:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_artifact_name_is_model_error() {
        let dir = temp_dir("mismatch");
        quick_model("real-name", 15, 2)
            .save(dir.join("wrong-name.json"))
            .unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let err = reg.get("wrong-name").unwrap_err();
        assert_eq!(err.kind(), "model");
        assert!(err.message().contains("real-name"));
        assert_eq!(reg.stats().load_failures, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_is_model_error() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("bad.json"), "{\"schema\": \"nope\"").unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        assert_eq!(reg.get("bad").unwrap_err().kind(), "model");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_artifact_evicts_and_errors() {
        let dir = temp_dir("deleted");
        let path = dir.join("gone.json");
        quick_model("gone", 15, 3).save(&path).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        reg.get("gone").unwrap();
        std::fs::remove_file(&path).unwrap();
        let err = reg.get("gone").unwrap_err();
        assert_eq!(err.kind(), "model");
        assert!(err.message().contains("deleted"));
        assert_eq!(reg.len(), 0);
        // A later request (still missing) is a plain unknown building.
        assert_eq!(reg.get("gone").unwrap_err().kind(), "unknown_building");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_eviction_under_model_budget() {
        let dir = temp_dir("lru");
        for (name, seed) in [("a", 4), ("b", 5), ("c", 6)] {
            quick_model(name, 15, seed)
                .save(dir.join(format!("{name}.json")))
                .unwrap();
        }
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).max_models(2));
        reg.get("a").unwrap();
        reg.get("b").unwrap();
        reg.get("a").unwrap(); // a is now more recent than b
        reg.get("c").unwrap(); // evicts b (LRU)
        let loaded: Vec<String> = reg.loaded().into_iter().map(|(k, _)| k).collect();
        assert_eq!(loaded, ["a", "c"]);
        assert_eq!(reg.stats().evictions, 1);
        // b reloads on demand — a fresh miss, identical model.
        let (_, fetch) = reg.get("b").unwrap();
        assert_eq!(fetch, Fetch::Miss);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_budget_never_evicts_the_active_model() {
        let dir = temp_dir("bytes");
        quick_model("solo", 15, 7)
            .save(dir.join("solo.json"))
            .unwrap();
        // 1-byte budget: the lone active model still serves.
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).max_bytes(1));
        let (model, _) = reg.get("solo").unwrap();
        assert_eq!(model.building(), "solo");
        assert_eq!(reg.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hot_reload_on_artifact_change() {
        let dir = temp_dir("reload");
        let path = dir.join("hot.json");
        quick_model("hot", 15, 8).save(&path).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let (old, _) = reg.get("hot").unwrap();
        // Replace with a differently sized artifact (more scans), so the
        // (mtime, len) check trips even on coarse-mtime filesystems.
        quick_model("hot", 20, 9).save(&path).unwrap();
        let (new, fetch) = reg.get("hot").unwrap();
        assert_eq!(fetch, Fetch::Reload);
        assert_eq!(reg.stats().reloads, 1);
        assert_ne!(old.samples().len(), new.samples().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_length_same_mtime_rewrite_is_caught_by_content_hash() {
        let dir = temp_dir("racy");
        let path = dir.join("racy.json");
        quick_model("racy", 15, 30).save(&path).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        reg.get("racy").unwrap();
        let mtime = std::fs::metadata(&path).unwrap().modified().unwrap();
        // Rewrite with identical byte length, then pin the mtime back to
        // the original — the same fingerprint a same-tick rewrite leaves
        // on a coarse-mtime filesystem. The stale stat cache used to
        // serve the old model here; the content hash must notice.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .set_modified(mtime)
            .unwrap();
        let err = reg.get("racy").unwrap_err();
        assert_eq!(
            err.kind(),
            "model",
            "a same-fingerprint rewrite must never serve the stale model"
        );
        assert_eq!(reg.stats().load_failures, 1);
        assert_eq!(reg.len(), 0, "the stale entry was dropped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metadata_only_rewrite_keeps_model_and_answer_cache() {
        let dir = temp_dir("touch");
        let path = dir.join("touch.json");
        let model = quick_model("touch", 15, 31);
        model.save(&path).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).assign_cache(8));
        let scan = model.samples()[0].clone();
        reg.assign("touch", &scan).unwrap();
        assert_eq!(reg.assign_cache_entries(), 1);
        // A fingerprint change with identical content (a `touch`) must
        // refresh the fingerprint, not reload: the answer cache and the
        // loaded generation survive.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .set_modified(SystemTime::now() - std::time::Duration::from_secs(30))
            .unwrap();
        let (_, fetch) = reg.get("touch").unwrap();
        assert_eq!(fetch, Fetch::Hit);
        assert_eq!(reg.stats().reloads, 0);
        assert_eq!(reg.assign_cache_entries(), 1, "answer cache survived");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_key_ignores_id_but_not_content() {
        let model = quick_model("keys", 15, 20);
        let scan = &model.samples()[0];
        let twin = {
            let mut b = fis_types::SignalSample::builder(9999);
            for (mac, rssi) in scan.iter() {
                b = b.reading(mac, rssi);
            }
            b.build()
        };
        assert_eq!(
            ScanKey::of(scan),
            ScanKey::of(&twin),
            "identical readings under a different id must share a key"
        );
        assert_ne!(ScanKey::of(scan), ScanKey::of(&model.samples()[1]));
    }

    #[test]
    fn answer_cache_replays_hits_identically() {
        let dir = temp_dir("ans_hit");
        let model = quick_model("hits", 15, 21);
        model.save(dir.join("hits.json")).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).assign_cache(64));
        let scan = model.samples()[0].clone();
        let direct = model.assign(&scan).unwrap();
        let first = reg.assign("hits", &scan).unwrap();
        let second = reg.assign("hits", &scan).unwrap();
        assert_eq!(first, direct);
        assert_eq!(second, direct);
        let c = reg.stats().assign_cache;
        assert_eq!((c.hits, c.misses, c.insertions), (1, 1, 1));
        assert_eq!(reg.assign_cache_entries(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn answer_cache_capacity_zero_disables_caching() {
        let dir = temp_dir("ans_zero");
        let model = quick_model("zero", 15, 22);
        model.save(dir.join("zero.json")).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let scan = model.samples()[0].clone();
        for _ in 0..3 {
            assert_eq!(
                reg.assign("zero", &scan).unwrap(),
                model.assign(&scan).unwrap()
            );
        }
        assert_eq!(reg.stats().assign_cache, CacheCounters::default());
        assert_eq!(reg.assign_cache_entries(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn answer_cache_fifo_eviction_at_capacity_one() {
        let dir = temp_dir("ans_fifo");
        let model = quick_model("fifo", 15, 23);
        model.save(dir.join("fifo.json")).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).assign_cache(1));
        let a = model.samples()[0].clone();
        let b = model.samples()[1].clone();
        // a miss, b miss (evicts a), a miss (evicts b), a hit.
        reg.assign("fifo", &a).unwrap();
        reg.assign("fifo", &b).unwrap();
        reg.assign("fifo", &a).unwrap();
        reg.assign("fifo", &a).unwrap();
        let c = reg.stats().assign_cache;
        assert_eq!((c.hits, c.misses), (1, 3));
        assert_eq!((c.insertions, c.evictions), (3, 2));
        assert_eq!(reg.assign_cache_entries(), 1);
        // Every answer — cached or not — matches the direct path.
        assert_eq!(reg.assign("fifo", &b).unwrap(), model.assign(&b).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn answer_cache_dropped_on_evict_and_reload() {
        let dir = temp_dir("ans_inval");
        let path = dir.join("inv.json");
        let model = quick_model("inv", 15, 24);
        model.save(&path).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).assign_cache(64));
        let scan = model.samples()[0].clone();
        reg.assign("inv", &scan).unwrap();
        assert_eq!(reg.assign_cache_entries(), 1);
        // Explicit evict drops the answers with the model.
        reg.evict("inv");
        assert_eq!(reg.assign_cache_entries(), 0);
        reg.assign("inv", &scan).unwrap();
        assert_eq!(
            reg.stats().assign_cache.misses,
            2,
            "evict forced a recompute"
        );
        // Hot reload (differently sized artifact) drops them too.
        quick_model("inv", 20, 25).save(&path).unwrap();
        let (_, fetch) = reg.get("inv").unwrap();
        assert_eq!(fetch, Fetch::Reload);
        assert_eq!(reg.assign_cache_entries(), 0, "reload kept stale answers");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn assign_batch_dedupes_and_matches_uncached_fanout() {
        let dir = temp_dir("ans_batch");
        let model = quick_model("batch", 15, 26);
        model.save(dir.join("batch.json")).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).assign_cache(64));
        // Batch with an in-batch duplicate and an alien (error) scan.
        let alien = fis_types::SignalSample::builder(777)
            .reading(
                fis_types::MacAddr::from_u64(0xFFFF_FFFF_FF02),
                fis_types::Rssi::new(-44.0).unwrap(),
            )
            .build();
        let scans = vec![
            model.samples()[0].clone(),
            model.samples()[1].clone(),
            model.samples()[0].clone(), // duplicate of slot 0
            alien,
        ];
        let cached = reg.assign_batch("batch", &scans, 2).unwrap();
        let uncached = model.assign_stream(&scans, 2);
        assert_eq!(cached.len(), uncached.len());
        for (c, u) in cached.iter().zip(&uncached) {
            match (c, u) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                other => panic!("outcomes diverged: {other:?}"),
            }
        }
        let c = reg.stats().assign_cache;
        assert_eq!(c.hits, 1, "the in-batch duplicate is a hit");
        assert_eq!(c.misses, 3);
        assert_eq!(c.insertions, 2, "the error answer is not cached");
        // Replaying the whole batch is now all hits except the error.
        let replay = reg.assign_batch("batch", &scans, 2).unwrap();
        for (r, u) in replay.iter().zip(&uncached) {
            assert_eq!(r.is_ok(), u.is_ok());
        }
        assert_eq!(reg.stats().assign_cache.hits, 1 + 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_then_reload_is_bit_identical() {
        let dir = temp_dir("roundtrip");
        quick_model("rt", 15, 10).save(dir.join("rt.json")).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let (first, _) = reg.get("rt").unwrap();
        assert!(reg.evict("rt"));
        assert!(!reg.evict("rt"));
        let (second, fetch) = reg.get("rt").unwrap();
        assert_eq!(fetch, Fetch::Miss);
        assert_eq!(first.to_json_string(), second.to_json_string());
        std::fs::remove_dir_all(&dir).ok();
    }
}
