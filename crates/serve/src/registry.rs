//! Multi-tenant model registry: lazy load, LRU eviction, hot reload.
//!
//! The registry maps building ids onto [`FittedModel`]s backed by a
//! model directory: the artifact for building `hq` lives at
//! `<dir>/hq.json` (exactly what `fis-one fit --out` writes). Models are
//! loaded lazily on first request and cached under a configurable budget:
//!
//! - **LRU eviction** — when loading a model would exceed
//!   [`RegistryConfig::max_models`] or [`RegistryConfig::max_bytes`]
//!   (artifact bytes on disk as the memory proxy), the least recently
//!   used other model is dropped first. The model being served is never
//!   evicted to make room for itself.
//! - **Hot reload** — every access re-stats the artifact; if its
//!   `(mtime, len)` changed since load, the model is reloaded before
//!   serving. Swapping a new artifact into the directory takes effect on
//!   the next request, no restart. [`FittedModel::save`] writes
//!   atomically (temp file + rename), so refitting over a live serving
//!   directory never exposes a half-written artifact; other writers
//!   should do the same. (A rewrite that keeps both mtime and byte
//!   length identical is indistinguishable and will be missed — the
//!   standard stat-cache caveat.)
//! - **Deletion detection** — if the artifact vanished after load, the
//!   cached model is dropped and the request fails with a typed `model`
//!   error rather than serving from a file that no longer exists.
//!
//! Eviction history cannot change responses: artifacts load
//! byte-identically and [`FittedModel::assign`] is deterministic in
//! `(model, scan)` alone, so evict → reload → assign is bit-identical to
//! assign on the original load. `tests/serve_determinism.rs` enforces
//! this against the golden fixtures.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use fis_core::FittedModel;

use crate::error::ServeError;

/// Registry configuration.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Directory holding `<building>.json` artifacts.
    pub dir: PathBuf,
    /// Maximum cached models (`0` = unlimited).
    pub max_models: usize,
    /// Maximum total artifact bytes cached (`0` = unlimited).
    pub max_bytes: u64,
}

impl RegistryConfig {
    /// A registry over `dir` with no cache budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            max_models: 0,
            max_bytes: 0,
        }
    }

    /// Caps the cached model count (`0` = unlimited).
    pub fn max_models(mut self, n: usize) -> Self {
        self.max_models = n;
        self
    }

    /// Caps the cached artifact bytes (`0` = unlimited).
    pub fn max_bytes(mut self, n: u64) -> Self {
        self.max_bytes = n;
        self
    }
}

/// Cache counters, exact over the registry's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to load from disk.
    pub misses: u64,
    /// Models dropped by the LRU budget or an explicit `evict`.
    pub evictions: u64,
    /// Models reloaded because the artifact changed on disk.
    pub reloads: u64,
    /// Loads that failed (missing, corrupt, or mismatched artifacts).
    pub load_failures: u64,
}

#[derive(Debug)]
struct Entry {
    model: Arc<FittedModel>,
    /// Artifact size on disk: the byte-budget proxy, and — together
    /// with `mtime` — the change-detection fingerprint.
    bytes: u64,
    mtime: Option<SystemTime>,
    last_used: u64,
}

/// A cached, loaded model plus how it got there (for metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetch {
    /// Served from the cache.
    Hit,
    /// Loaded from disk for the first time (or after an eviction).
    Miss,
    /// Reloaded because the artifact changed on disk.
    Reload,
}

/// The lazy, budgeted, hot-reloading model cache. See the
/// [module docs](self).
#[derive(Debug)]
pub struct ModelRegistry {
    config: RegistryConfig,
    entries: HashMap<String, Entry>,
    tick: u64,
    stats: RegistryStats,
}

impl ModelRegistry {
    /// Creates an empty registry over the configured model directory.
    pub fn new(config: RegistryConfig) -> Self {
        Self {
            config,
            entries: HashMap::new(),
            tick: 0,
            stats: RegistryStats::default(),
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    /// Lifetime cache counters.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total artifact bytes currently cached.
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// The cached building ids with their artifact sizes, sorted by id
    /// (deterministic for the `stats` op).
    pub fn loaded(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .entries
            .iter()
            .map(|(k, e)| (k.clone(), e.bytes))
            .collect();
        v.sort();
        v
    }

    /// The artifact path for a building id.
    pub fn artifact_path(&self, building: &str) -> PathBuf {
        self.config.dir.join(format!("{building}.json"))
    }

    /// Fetches the model for `building`, loading/reloading as needed.
    /// Returns the model and whether this was a hit, miss, or reload.
    ///
    /// # Errors
    ///
    /// - [`ServeError::Protocol`] for ids that cannot name an artifact
    ///   (path separators, `.` / `..`),
    /// - [`ServeError::UnknownBuilding`] when no artifact exists,
    /// - [`ServeError::Model`] when the artifact vanished after load, is
    ///   corrupt, or was fitted for a different building id.
    pub fn get(&mut self, building: &str) -> Result<(Arc<FittedModel>, Fetch), ServeError> {
        validate_building_id(building)?;
        let path = self.artifact_path(building);
        let meta = match std::fs::metadata(&path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if self.entries.remove(building).is_some() {
                    // Loaded earlier, artifact deleted since: drop the
                    // cache entry and fail loudly instead of serving a
                    // model whose backing file is gone.
                    self.stats.evictions += 1;
                    return Err(ServeError::Model(format!(
                        "artifact {} was deleted after load; evicted `{building}`",
                        path.display()
                    )));
                }
                return Err(ServeError::UnknownBuilding(format!(
                    "no artifact for `{building}` (expected {})",
                    path.display()
                )));
            }
            Err(e) => {
                return Err(ServeError::Model(format!(
                    "stat {} failed: {e}",
                    path.display()
                )))
            }
        };
        let mtime = meta.modified().ok();
        let bytes = meta.len();

        self.tick += 1;
        let cached = match self.entries.get_mut(building) {
            Some(entry) if entry.mtime == mtime && entry.bytes == bytes => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                return Ok((Arc::clone(&entry.model), Fetch::Hit));
            }
            cached => cached.is_some(),
        };

        // Cache miss, or the artifact changed on disk (hot reload). A
        // failed reload drops the stale entry — serving the old model
        // after the artifact was replaced would silently violate mtime
        // semantics.
        let fetch = if cached { Fetch::Reload } else { Fetch::Miss };
        let model = match self.load_artifact(building, &path) {
            Ok(model) => Arc::new(model),
            Err(e) => {
                if self.entries.remove(building).is_some() {
                    self.stats.evictions += 1;
                }
                return Err(e);
            }
        };
        match fetch {
            Fetch::Reload => self.stats.reloads += 1,
            _ => self.stats.misses += 1,
        }
        self.entries.insert(
            building.to_owned(),
            Entry {
                model: Arc::clone(&model),
                bytes,
                mtime,
                last_used: self.tick,
            },
        );
        self.enforce_budget(building);
        Ok((model, fetch))
    }

    /// Drops a cached model; returns whether it was cached. The artifact
    /// stays on disk and the next request reloads it.
    pub fn evict(&mut self, building: &str) -> bool {
        let evicted = self.entries.remove(building).is_some();
        if evicted {
            self.stats.evictions += 1;
        }
        evicted
    }

    fn load_artifact(&mut self, building: &str, path: &Path) -> Result<FittedModel, ServeError> {
        let model = FittedModel::load(path).map_err(|e| {
            self.stats.load_failures += 1;
            ServeError::from(e)
        })?;
        if model.building() != building {
            self.stats.load_failures += 1;
            return Err(ServeError::Model(format!(
                "artifact {} was fitted for building `{}`, not `{building}`; \
                 registry files must be named after the building they serve",
                path.display(),
                model.building()
            )));
        }
        Ok(model)
    }

    /// Evicts least-recently-used models until the budget holds, never
    /// touching `keep` (the model being served right now).
    fn enforce_budget(&mut self, keep: &str) {
        loop {
            let over_count =
                self.config.max_models > 0 && self.entries.len() > self.config.max_models;
            let over_bytes =
                self.config.max_bytes > 0 && self.total_bytes() > self.config.max_bytes;
            if !over_count && !over_bytes {
                return;
            }
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| k.as_str() != keep)
                // Tie-break on the id so eviction order is deterministic
                // even if two entries share a tick (they cannot today).
                .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.stats.evictions += 1;
                }
                // Only the active model is left; keep serving it even if
                // it alone exceeds the byte budget.
                None => return,
            }
        }
    }
}

fn validate_building_id(building: &str) -> Result<(), ServeError> {
    if building.is_empty()
        || building == "."
        || building == ".."
        || building.contains('/')
        || building.contains('\\')
        || building.contains('\0')
    {
        return Err(ServeError::Protocol(format!(
            "building id `{}` cannot name an artifact file",
            building.escape_default()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_core::{FisOne, FisOneConfig};
    use fis_synth::BuildingConfig;

    fn quick_model(name: &str, samples: usize, seed: u64) -> FittedModel {
        let b = BuildingConfig::new(name, 3)
            .samples_per_floor(samples)
            .aps_per_floor(8)
            .atrium_aps(0)
            .seed(seed)
            .generate();
        FisOne::new(FisOneConfig::quick(seed))
            .fit(
                b.name(),
                b.samples(),
                b.floors(),
                b.bottom_anchor().unwrap(),
            )
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fis_registry_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lazy_load_then_hit() {
        let dir = temp_dir("lazy");
        let model = quick_model("alpha", 15, 1);
        model.save(dir.join("alpha.json")).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let (m1, f1) = reg.get("alpha").unwrap();
        assert_eq!(f1, Fetch::Miss);
        let (m2, f2) = reg.get("alpha").unwrap();
        assert_eq!(f2, Fetch::Hit);
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(reg.stats().hits, 1);
        assert_eq!(reg.stats().misses, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_building_is_typed() {
        let dir = temp_dir("unknown");
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let err = reg.get("ghost").unwrap_err();
        assert_eq!(err.kind(), "unknown_building");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_ids_are_rejected_before_touching_disk() {
        let dir = temp_dir("hostile");
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        for id in ["", ".", "..", "../etc/passwd", "a/b", "a\\b", "nul\0"] {
            assert_eq!(reg.get(id).unwrap_err().kind(), "protocol", "id {id:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_artifact_name_is_model_error() {
        let dir = temp_dir("mismatch");
        quick_model("real-name", 15, 2)
            .save(dir.join("wrong-name.json"))
            .unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let err = reg.get("wrong-name").unwrap_err();
        assert_eq!(err.kind(), "model");
        assert!(err.message().contains("real-name"));
        assert_eq!(reg.stats().load_failures, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_is_model_error() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join("bad.json"), "{\"schema\": \"nope\"").unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        assert_eq!(reg.get("bad").unwrap_err().kind(), "model");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deleted_artifact_evicts_and_errors() {
        let dir = temp_dir("deleted");
        let path = dir.join("gone.json");
        quick_model("gone", 15, 3).save(&path).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        reg.get("gone").unwrap();
        std::fs::remove_file(&path).unwrap();
        let err = reg.get("gone").unwrap_err();
        assert_eq!(err.kind(), "model");
        assert!(err.message().contains("deleted"));
        assert_eq!(reg.len(), 0);
        // A later request (still missing) is a plain unknown building.
        assert_eq!(reg.get("gone").unwrap_err().kind(), "unknown_building");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_eviction_under_model_budget() {
        let dir = temp_dir("lru");
        for (name, seed) in [("a", 4), ("b", 5), ("c", 6)] {
            quick_model(name, 15, seed)
                .save(dir.join(format!("{name}.json")))
                .unwrap();
        }
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).max_models(2));
        reg.get("a").unwrap();
        reg.get("b").unwrap();
        reg.get("a").unwrap(); // a is now more recent than b
        reg.get("c").unwrap(); // evicts b (LRU)
        let loaded: Vec<String> = reg.loaded().into_iter().map(|(k, _)| k).collect();
        assert_eq!(loaded, ["a", "c"]);
        assert_eq!(reg.stats().evictions, 1);
        // b reloads on demand — a fresh miss, identical model.
        let (_, fetch) = reg.get("b").unwrap();
        assert_eq!(fetch, Fetch::Miss);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_budget_never_evicts_the_active_model() {
        let dir = temp_dir("bytes");
        quick_model("solo", 15, 7)
            .save(dir.join("solo.json"))
            .unwrap();
        // 1-byte budget: the lone active model still serves.
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir).max_bytes(1));
        let (model, _) = reg.get("solo").unwrap();
        assert_eq!(model.building(), "solo");
        assert_eq!(reg.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hot_reload_on_artifact_change() {
        let dir = temp_dir("reload");
        let path = dir.join("hot.json");
        quick_model("hot", 15, 8).save(&path).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let (old, _) = reg.get("hot").unwrap();
        // Replace with a differently sized artifact (more scans), so the
        // (mtime, len) check trips even on coarse-mtime filesystems.
        quick_model("hot", 20, 9).save(&path).unwrap();
        let (new, fetch) = reg.get("hot").unwrap();
        assert_eq!(fetch, Fetch::Reload);
        assert_eq!(reg.stats().reloads, 1);
        assert_ne!(old.samples().len(), new.samples().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evict_then_reload_is_bit_identical() {
        let dir = temp_dir("roundtrip");
        quick_model("rt", 15, 10).save(dir.join("rt.json")).unwrap();
        let mut reg = ModelRegistry::new(RegistryConfig::new(&dir));
        let (first, _) = reg.get("rt").unwrap();
        assert!(reg.evict("rt"));
        assert!(!reg.evict("rt"));
        let (second, fetch) = reg.get("rt").unwrap();
        assert_eq!(fetch, Fetch::Miss);
        assert_eq!(first.to_json_string(), second.to_json_string());
        std::fs::remove_dir_all(&dir).ok();
    }
}
