//! Hand-rolled concurrent TCP serving: a bounded thread-per-connection
//! worker pool over a blocking accept loop (we are offline — no tokio).
//!
//! Both line-oriented servers in this crate — the [`Daemon`](crate::Daemon)
//! and the [`Router`](crate::router::Router) — speak the same
//! one-request-line-in / one-response-line-out protocol, so they share
//! this machinery through the [`LineServer`] trait:
//!
//! - [`serve_lines`] drives one blocking transport (pipe mode, in-memory
//!   tests) to completion;
//! - [`serve_pooled`] accepts TCP connections and fans them out over a
//!   fixed pool of worker threads, so one slow or idle client can no
//!   longer stall every other connection.
//!
//! # Robustness rules
//!
//! - **Bytes, not UTF-8.** Lines are read with `read_until(b'\n')` and
//!   decoded lossily: a stray non-UTF-8 byte on the wire yields a typed
//!   `protocol` error *response* (the replacement character breaks the
//!   JSON parse), never an `InvalidData` transport error that kills the
//!   connection.
//! - **Transient accept errors don't kill the daemon.** `ECONNABORTED`
//!   (client gave up mid-handshake), `ECONNRESET`, `EINTR`, timeouts,
//!   and fd exhaustion (`EMFILE`/`ENFILE`) are logged and the loop keeps
//!   accepting; only bind-level failures propagate.
//! - **Graceful shutdown drains in-flight work.** A `shutdown` request
//!   raises a flag and wakes the acceptor (by dialing the listener);
//!   queued connections are still served, in-flight connections finish
//!   the requests already sent and close at their next idle read
//!   timeout, and the pool joins before [`serve_pooled`] returns.
//!
//! None of this can move an answer: responses are pure functions of the
//! request (see the crate docs), so connection interleaving, worker
//! scheduling, and shutdown timing only reorder *when* lines are
//! answered, never *what* they say.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use fis_obs::{self as obs, Level};

/// How long a pooled connection blocks in `read` before re-checking the
/// shutdown flag. Latency of the *graceful-shutdown path* only; requests
/// are answered as soon as their line arrives.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// A server that turns one request line into one response line.
/// `handle` returns the response plus whether the line asked the whole
/// process to shut down. Implementations must be safe to call from many
/// worker threads at once.
pub trait LineServer: Sync {
    /// Answers one (already trimmed, non-empty) request line.
    fn handle(&self, line: &str) -> (String, bool);
}

/// Classifies accept-loop errors: transient failures (a client aborting
/// its own half-open connection, an interrupted syscall, momentary fd
/// exhaustion) are logged and survived; anything else — a dead listener,
/// a bad bind — stays fatal.
pub fn is_transient_accept_error(e: &std::io::Error) -> bool {
    if matches!(
        e.kind(),
        ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionRefused
            | ErrorKind::Interrupted
            | ErrorKind::TimedOut
            | ErrorKind::WouldBlock
    ) {
        return true;
    }
    // EMFILE (24) / ENFILE (23) on unix-likes: the process or system ran
    // out of file descriptors. Backing off and continuing beats dying —
    // fds free up as connections close.
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// Reads request lines with `read_until(b'\n')` + lossy decode and
/// answers each through `server`, until EOF or a shutdown request.
/// Returns `Ok(true)` when a shutdown request ended the session.
///
/// # Errors
///
/// Only transport-level I/O errors; malformed input (including invalid
/// UTF-8) becomes a typed error *response*.
pub fn serve_lines<R: BufRead, W: Write>(
    mut reader: R,
    mut writer: W,
    server: &impl LineServer,
) -> std::io::Result<bool> {
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            return Ok(false);
        }
        if answer_buffered_line(&buf, &mut writer, server)? {
            return Ok(true);
        }
    }
}

/// Decodes and answers one buffered line (which may lack its trailing
/// newline at EOF). Returns whether the line requested shutdown.
fn answer_buffered_line<W: Write>(
    buf: &[u8],
    writer: &mut W,
    server: &impl LineServer,
) -> std::io::Result<bool> {
    // Lossy decode: a non-UTF-8 byte becomes U+FFFD, which fails JSON
    // parsing and produces a typed `protocol` error response — the
    // connection survives.
    let line = String::from_utf8_lossy(buf);
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(false);
    }
    let (response, shutdown) = server.handle(trimmed);
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    Ok(shutdown)
}

/// Serves one pooled TCP connection: like [`serve_lines`], but reads
/// under [`IDLE_POLL`] so the connection notices `shutdown` (raised by
/// *any* connection) while idle. Partial lines survive poll timeouts —
/// the buffer accumulates across reads until the newline arrives.
fn serve_tcp_connection(
    stream: TcpStream,
    server: &impl LineServer,
    shutdown: &AtomicBool,
) -> std::io::Result<bool> {
    // Request/response frames are small; Nagle + delayed ACK would add
    // ~40ms per round-trip.
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut buf = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF; a final unterminated line is still answered.
                if !buf.is_empty() {
                    answer_buffered_line(&buf, &mut writer, server)?;
                }
                return Ok(false);
            }
            Ok(_) => {
                if buf.last() != Some(&b'\n') {
                    // EOF mid-line: answer it, then the next read
                    // returns Ok(0) and closes cleanly.
                    continue;
                }
                if answer_buffered_line(&buf, &mut writer, server)? {
                    return Ok(true);
                }
                buf.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle poll tick: a draining daemon closes idle
                // connections; otherwise keep waiting (any partial line
                // stays buffered).
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The address to dial to wake an acceptor blocked on `listener` —
/// loopback when the listener is bound to a wildcard address.
fn wake_addr(local: SocketAddr) -> SocketAddr {
    let ip = match local.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, local.port())
}

/// Accepts connections and serves each on a bounded pool of `workers`
/// threads until some connection requests shutdown. Queued connections
/// (bounded at `workers` beyond the ones being served) are drained
/// before returning; see the [module docs](self) for the full lifecycle.
///
/// # Errors
///
/// Only non-transient accept-level I/O errors.
pub fn serve_pooled(
    listener: &TcpListener,
    server: &impl LineServer,
    workers: usize,
) -> std::io::Result<()> {
    let workers = workers.max(1);
    let shutdown = AtomicBool::new(false);
    let wake = listener.local_addr().map(wake_addr);
    // Bounded hand-off: when every worker is busy and the backlog is
    // full, the acceptor itself blocks — natural backpressure instead of
    // an unbounded queue.
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers);
    let rx = Mutex::new(rx);
    let mut accept_error = None;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Holding the lock while blocked in recv is fine: only
                // idle workers compete for it.
                let stream = match rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
                    Ok(stream) => stream,
                    Err(_) => return, // acceptor gone, queue drained
                };
                let peer = stream
                    .peer_addr()
                    .map_or_else(|_| "client".to_owned(), |p| p.to_string());
                match serve_tcp_connection(stream, server, &shutdown) {
                    Ok(true) => {
                        // This connection asked for shutdown: raise the
                        // flag and wake the (possibly blocked) acceptor.
                        shutdown.store(true, Ordering::SeqCst);
                        if let Ok(addr) = wake {
                            TcpStream::connect_timeout(&addr, Duration::from_secs(1)).ok();
                        }
                    }
                    Ok(false) => {}
                    Err(e) => obs::event(Level::Error, "pool", "connection_failed")
                        .str("peer", peer.to_string())
                        .str("error", e.to_string())
                        .emit(),
                }
            });
        }
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Re-check after a (possibly wake-up) accept so a
                    // drained daemon stops taking on new work.
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if is_transient_accept_error(&e) => {
                    obs::event(Level::Warn, "pool", "transient_accept_error")
                        .str("error", e.to_string())
                        .emit();
                    // Fd exhaustion clears only as connections close;
                    // don't spin at full speed while it does.
                    if matches!(e.raw_os_error(), Some(23) | Some(24)) {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
                Err(e) => {
                    accept_error = Some(e);
                    break;
                }
            }
        }
        // Closing the channel lets workers drain the queued connections
        // and exit; the scope then joins them all.
        drop(tx);
    });
    match accept_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl LineServer for Echo {
        fn handle(&self, line: &str) -> (String, bool) {
            (format!("echo:{line}"), line == "quit")
        }
    }

    #[test]
    fn transient_accept_errors_are_classified() {
        for kind in [
            ErrorKind::ConnectionAborted,
            ErrorKind::ConnectionReset,
            ErrorKind::Interrupted,
            ErrorKind::TimedOut,
            ErrorKind::WouldBlock,
        ] {
            assert!(
                is_transient_accept_error(&std::io::Error::new(kind, "x")),
                "{kind:?} must be survivable"
            );
        }
        // fd exhaustion by raw errno (EMFILE/ENFILE).
        assert!(is_transient_accept_error(
            &std::io::Error::from_raw_os_error(24)
        ));
        assert!(is_transient_accept_error(
            &std::io::Error::from_raw_os_error(23)
        ));
        // Bind-level / programmer errors stay fatal.
        for kind in [
            ErrorKind::AddrInUse,
            ErrorKind::PermissionDenied,
            ErrorKind::InvalidInput,
            ErrorKind::NotFound,
        ] {
            assert!(
                !is_transient_accept_error(&std::io::Error::new(kind, "x")),
                "{kind:?} must stay fatal"
            );
        }
    }

    #[test]
    fn serve_lines_answers_non_utf8_with_a_response() {
        // An invalid byte mid-line must produce a response line (the
        // lossy-decoded text), not an InvalidData transport error.
        let input: &[u8] = b"hello\n\xff\xfe!\nquit\n";
        let mut out = Vec::new();
        let shutdown = serve_lines(input, &mut out, &Echo).unwrap();
        assert!(shutdown);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "every line answered: {text}");
        assert_eq!(lines[0], "echo:hello");
        assert!(lines[1].starts_with("echo:"), "lossy-decoded: {}", lines[1]);
        assert_eq!(lines[2], "echo:quit");
    }

    #[test]
    fn serve_lines_answers_final_unterminated_line() {
        let input: &[u8] = b"one\ntwo"; // no trailing newline
        let mut out = Vec::new();
        let shutdown = serve_lines(input, &mut out, &Echo).unwrap();
        assert!(!shutdown);
        assert_eq!(String::from_utf8(out).unwrap(), "echo:one\necho:two\n");
    }

    #[test]
    fn pooled_connections_are_served_concurrently_and_drain_on_shutdown() {
        use std::io::{BufRead, BufReader, Write};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve_pooled(&listener, &Echo, 3));

        // An idle connection that never sends a byte must not block the
        // others (this deadlocked under the old sequential accept loop).
        let idle = TcpStream::connect(addr).unwrap();

        let mut streams: Vec<TcpStream> =
            (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for (i, s) in streams.iter_mut().enumerate() {
            writeln!(s, "ping-{i}").unwrap();
        }
        for (i, s) in streams.iter().enumerate() {
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), format!("echo:ping-{i}"));
        }
        // Close the answered connections to free their workers (the
        // idle one stays open through shutdown).
        drop(streams);

        // Shutdown from a fresh connection; the pool must drain and join
        // even though `idle` is still open.
        let mut quitter = TcpStream::connect(addr).unwrap();
        writeln!(quitter, "quit").unwrap();
        let mut line = String::new();
        BufReader::new(quitter.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert_eq!(line.trim(), "echo:quit");
        handle.join().unwrap().unwrap();
        drop(idle);
    }
}
