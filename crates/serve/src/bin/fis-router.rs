//! `fis-router`: the sharding front tier for a fleet of `fis-serve`
//! daemons. See [`fis_serve::router`] for the routing/failover design.
//!
//! ```text
//! fis-router --listen 127.0.0.1:9100 \
//!     --shards 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 \
//!     [--replicas R] [--pool W] [--trace FILE]
//! ```
//!
//! The router speaks the daemon's NDJSON protocol on `--listen` and
//! places each building on `R` of the shards via consistent hashing,
//! failing over between replicas when a shard dies. A client `shutdown`
//! is broadcast to every shard before the router exits.

use std::process::ExitCode;

use fis_serve::{Router, RouterConfig};

const USAGE: &str = "usage:
  fis-router --listen HOST:PORT --shards HOST:PORT[,HOST:PORT...] \
[--replicas R] [--pool W] [--trace FILE]

Fronts N fis-serve TCP daemons with consistent hashing on building id.
Each building lives on R shards (default 2, clamped to the shard
count); assign/assign_batch/load fail over between its replicas,
evict hits all of them, stats aggregates every shard, and shutdown is
broadcast before the router stops. All shards must serve the same
model directory so failover is answer-preserving. --pool W bounds the
front-side worker threads (default: one per core, clamped to 2..=8).
--trace FILE records dispatch spans and failover events to an
in-memory ring journal and flushes them to FILE (JSONL) on shutdown;
forwarded frames then carry a `trace` context so shard journals join
the same trace. Stderr verbosity is controlled by FIS_LOG
(error|warn|info|debug|trace, default warn).";

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{USAGE}");
        return Ok(());
    }
    let mut listen = None;
    let mut shards: Vec<String> = Vec::new();
    let mut replicas = 2usize;
    let mut pool = 0usize;
    let mut trace: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |key: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag --{key} needs a value"))
        };
        match flag.as_str() {
            "--listen" => listen = Some(value("listen")?),
            "--shards" => {
                shards = value("shards")?
                    .split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--replicas" => {
                replicas = value("replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}"))?;
            }
            "--pool" => {
                pool = value("pool")?.parse().map_err(|e| format!("--pool: {e}"))?;
            }
            "--trace" => trace = Some(value("trace")?),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let listen = listen.ok_or_else(|| format!("missing required flag --listen\n{USAGE}"))?;
    if shards.is_empty() {
        return Err(format!("missing required flag --shards\n{USAGE}"));
    }
    let listener =
        std::net::TcpListener::bind(&listen).map_err(|e| format!("binding `{listen}`: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("resolving local address: {e}"))?;
    let router = Router::new(
        RouterConfig::new(shards.clone())
            .replicas(replicas)
            .pool(pool),
    );
    eprintln!(
        "# fis-router: listening on {local}, {} shard(s) [{}], {} replica(s) per building",
        shards.len(),
        shards.join(", "),
        replicas.clamp(1, shards.len())
    );
    if trace.is_some() {
        fis_obs::journal::start(fis_obs::journal::DEFAULT_JOURNAL_CAPACITY);
    }
    router
        .serve_tcp(&listener)
        .map_err(|e| format!("serving {local}: {e}"))?;
    if let Some(path) = &trace {
        let written = fis_obs::journal::flush_to(std::path::Path::new(path))
            .map_err(|e| format!("writing trace journal `{path}`: {e}"))?;
        eprintln!("# fis-router: wrote {written} trace event(s) to {path}");
    }
    eprintln!("# fis-router: stopped");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
