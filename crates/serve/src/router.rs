//! `fis-router`: a sharding front tier over N daemon backends.
//!
//! The router speaks the exact daemon wire protocol on its front side
//! and forwards each request over TCP to one of N `fis-serve` shards.
//! Placement is a consistent-hash ring on the **building id** (FNV-1a
//! over virtual nodes), so one building's traffic — and therefore its
//! model residency and answer cache — concentrates on a stable shard
//! subset, and adding a shard only remaps `1/N` of the keyspace.
//!
//! Every building is replicated onto the first `replicas` distinct
//! shards clockwise from its hash. Replication is what makes failover
//! *answer-preserving* rather than best-effort: shards serve from the
//! same artifact directory and assignment is a pure function of
//! (artifact bytes, scan content), so when a shard dies mid-request the
//! router retries the next replica and the client receives the
//! bit-identical response the dead shard would have sent. A replica
//! that errors at the transport level is marked down and skipped on
//! later requests, but remains a last-resort candidate so a restarted
//! shard is rediscovered without any clock-based probing (probing on
//! timers would make routing order depend on wall time; counters and
//! request order keep the router's behavior reproducible).
//!
//! Per-op forwarding:
//!
//! - `assign` / `assign_batch` / `load`: first healthy replica in ring
//!   order, failing over across replicas; the shard's response line is
//!   relayed **verbatim** (the router never re-serializes answers).
//! - `evict`: applied to *every* reachable replica (all replica caches
//!   must drop the model together), answering with the first replica's
//!   response.
//! - `stats`: fans out to all shards and wraps per-shard payloads plus
//!   the router's own counters.
//! - `shutdown`: broadcast to all shards, then the router itself
//!   drains and exits.
//!
//! Frames that fail to parse are answered locally with the same typed
//! `protocol` error a daemon would send — no shard round-trip.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use fis_obs::{self as obs, Level, TraceContext};
use fis_types::json::Json;

use crate::error::ServeError;
use crate::pool::{self, LineServer};
use crate::protocol::{error_response, ok_response, parse_frame, Frame, Request};

/// Virtual nodes per shard on the hash ring: enough to spread buildings
/// evenly across small fleets without making ring construction slow.
const VNODES: usize = 64;

/// Ring hash: FNV-1a (the same cheap stable hash the registry's answer
/// cache uses) plus a 64-bit avalanche finalizer. Raw FNV-1a clusters
/// similar keys — building ids sharing a prefix and differing in a
/// digit land on the same arc, starving shards — so the finalizer
/// spreads them before they are placed on the ring.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// Rewrites a request frame to carry `ctx` as its `"trace"` field so
/// shard-side spans join the router's trace. Safe for determinism:
/// `Json` renders keys in sorted order and round-trips `f64` values
/// bit-exactly, shards treat `trace` as pure decoration, and responses
/// are relayed verbatim — so client-visible bytes are unchanged. A line
/// that does not re-parse as an object (already rejected by
/// `parse_frame` upstream) is forwarded untouched.
fn inject_trace(line: &str, ctx: TraceContext) -> String {
    match Json::parse(line) {
        Ok(Json::Obj(mut map)) => {
            map.insert("trace".to_owned(), ctx.to_json());
            Json::Obj(map).to_string()
        }
        _ => line.to_owned(),
    }
}

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend shard addresses (`host:port`), order-significant: ring
    /// positions are derived from the address strings.
    pub shards: Vec<String>,
    /// Replicas per building (clamped to `1..=shards.len()`).
    pub replicas: usize,
    /// Front-side worker-pool size (`0` = machine-sized default, as
    /// [`crate::DaemonConfig::pool`]).
    pub pool: usize,
}

impl RouterConfig {
    /// A router over the given shard addresses, 2 replicas by default.
    pub fn new(shards: Vec<String>) -> Self {
        Self {
            shards,
            replicas: 2,
            pool: 0,
        }
    }

    /// Sets the replication factor (clamped to the shard count).
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the front-side worker-pool size (`0` = default).
    pub fn pool(mut self, pool: usize) -> Self {
        self.pool = pool;
        self
    }

    fn effective_replicas(&self) -> usize {
        self.replicas.clamp(1, self.shards.len().max(1))
    }

    fn pool_workers(&self) -> usize {
        if self.pool > 0 {
            return self.pool;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8)
    }
}

/// One pooled backend connection: a write half plus a buffered reader
/// over a clone of the same socket.
#[derive(Debug)]
struct ShardConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ShardConn {
    fn connect(addr: &str) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// One request/response round trip. Shards answer exactly one line
    /// per line, so a clean EOF here means the shard died mid-request.
    fn exchange(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard closed the connection before answering",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

/// One backend shard: its address, a pool of idle connections, and a
/// health flag maintained purely from request outcomes.
#[derive(Debug)]
struct Shard {
    addr: String,
    idle: Mutex<Vec<ShardConn>>,
    down: AtomicBool,
}

impl Shard {
    fn new(addr: String) -> Self {
        Self {
            addr,
            idle: Mutex::new(Vec::new()),
            down: AtomicBool::new(false),
        }
    }

    fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// Sends `line` and returns the shard's response line. A pooled
    /// connection that fails is retired and the call retried once on a
    /// fresh socket, so an idle-timeout or daemon restart between
    /// requests doesn't surface as a shard failure. Success clears the
    /// down flag; failure sets it.
    fn call(&self, line: &str) -> std::io::Result<String> {
        let pooled = self.idle.lock().unwrap_or_else(|p| p.into_inner()).pop();
        let fresh = match pooled {
            Some(mut conn) => match conn.exchange(line) {
                Ok(response) => {
                    self.finish(conn);
                    return Ok(response);
                }
                // The pooled socket was stale; fall through to a fresh
                // dial before judging the shard.
                Err(_) => ShardConn::connect(&self.addr),
            },
            None => ShardConn::connect(&self.addr),
        };
        let result = fresh.and_then(|mut conn| {
            let response = conn.exchange(line)?;
            self.finish(conn);
            Ok(response)
        });
        if let Err(e) = &result {
            // Only the down *transition* is warn-worthy; repeat failures
            // against an already-down shard stay at debug.
            if !self.down.swap(true, Ordering::Relaxed) {
                obs::event(Level::Warn, "router", "shard_down")
                    .str("addr", &self.addr)
                    .str("error", e.to_string())
                    .emit();
            } else {
                obs::event(Level::Debug, "router", "shard_call_failed")
                    .str("addr", &self.addr)
                    .str("error", e.to_string())
                    .emit();
            }
        }
        result
    }

    fn finish(&self, conn: ShardConn) {
        if self.down.swap(false, Ordering::Relaxed) {
            obs::event(Level::Info, "router", "shard_up")
                .str("addr", &self.addr)
                .emit();
        }
        let mut idle = self.idle.lock().unwrap_or_else(|p| p.into_inner());
        // A tiny cap: the front pool bounds concurrency anyway; beyond
        // that, parked sockets are just fd pressure.
        if idle.len() < 8 {
            idle.push(conn);
        }
    }
}

/// Router-side counters, reported under `"router"` in `stats`.
#[derive(Debug, Default)]
struct RouterMetrics {
    /// Requests handled on the front side (including local errors).
    requests: AtomicU64,
    /// Requests answered by a replica other than the primary.
    failovers: AtomicU64,
    /// Requests for which every replica was unreachable.
    unavailable: AtomicU64,
}

/// The sharding router. See the [module docs](self).
#[derive(Debug)]
pub struct Router {
    config: RouterConfig,
    shards: Vec<Shard>,
    /// The consistent-hash ring: `(position, shard index)` sorted by
    /// position. Built once; routing is a binary search + short walk.
    ring: Vec<(u64, usize)>,
    metrics: RouterMetrics,
}

impl Router {
    /// Builds the ring over `config.shards`.
    pub fn new(config: RouterConfig) -> Self {
        let shards: Vec<Shard> = config.shards.iter().cloned().map(Shard::new).collect();
        let mut ring = Vec::with_capacity(shards.len() * VNODES);
        for (i, shard) in shards.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((fnv1a(format!("{}#{v}", shard.addr).as_bytes()), i));
            }
        }
        ring.sort_unstable();
        Self {
            config,
            shards,
            ring,
            metrics: RouterMetrics::default(),
        }
    }

    /// The replica set for `building`: the first `replicas` distinct
    /// shards clockwise from its ring position. Pure function of the
    /// configuration — placement never depends on load or health.
    pub fn route(&self, building: &str) -> Vec<usize> {
        let replicas = self.config.effective_replicas();
        let mut order = Vec::with_capacity(replicas);
        if self.ring.is_empty() {
            return order;
        }
        let key = fnv1a(building.as_bytes());
        let start = self.ring.partition_point(|&(pos, _)| pos < key);
        for step in 0..self.ring.len() {
            let (_, shard) = self.ring[(start + step) % self.ring.len()];
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == replicas {
                    break;
                }
            }
        }
        order
    }

    /// Forwards `line` to the replica set in placement order, healthy
    /// shards first, down shards as last resort. Returns the winning
    /// replica's response verbatim plus whether a failover happened.
    fn forward(&self, building: &str, line: &str) -> Result<(String, bool), ServeError> {
        let order = self.route(building);
        let attempt_rounds: [&dyn Fn(&Shard) -> bool; 2] =
            [&|s: &Shard| !s.is_down(), &|s: &Shard| s.is_down()];
        for (round, eligible) in attempt_rounds.iter().enumerate() {
            for (rank, &i) in order.iter().enumerate() {
                let shard = &self.shards[i];
                if !eligible(shard) {
                    continue;
                }
                if let Ok(response) = shard.call(line) {
                    return Ok((response, rank > 0 || round > 0));
                }
            }
        }
        Err(ServeError::Unavailable(format!(
            "no reachable replica for building `{building}` \
             ({} candidates tried)",
            order.len()
        )))
    }

    /// Applies `line` to every reachable replica of `building` (used
    /// for `evict` and the v2 mutations `extend`/`swap`, which must hit
    /// all replica caches), returning the first successful response.
    fn forward_all(&self, building: &str, line: &str) -> Result<(String, bool), ServeError> {
        let order = self.route(building);
        let mut first: Option<(String, bool)> = None;
        for (rank, &i) in order.iter().enumerate() {
            if let Ok(response) = self.shards[i].call(line) {
                if first.is_none() {
                    first = Some((response, rank > 0));
                }
            }
        }
        first.ok_or_else(|| {
            ServeError::Unavailable(format!(
                "no reachable replica for building `{building}` \
                 ({} candidates tried)",
                order.len()
            ))
        })
    }

    /// `stats`: the router's own counters plus each shard's payload
    /// (or its error) keyed by shard address.
    fn stats_response(&self, version: u8, id: Option<&Json>) -> Json {
        let mut per_shard = BTreeMap::new();
        for shard in &self.shards {
            let value = match shard.call(r#"{"op":"stats"}"#) {
                Ok(line) => match Json::parse(&line) {
                    Ok(json) => json.get("stats").cloned().unwrap_or(json),
                    Err(e) => {
                        ServeError::Protocol(format!("unparseable shard stats: {e}")).to_json()
                    }
                },
                Err(e) => ServeError::Unavailable(format!("shard unreachable: {e}")).to_json(),
            };
            per_shard.insert(shard.addr.clone(), value);
        }
        let router = Json::obj([
            (
                "requests",
                Json::Num(self.metrics.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "failovers",
                Json::Num(self.metrics.failovers.load(Ordering::Relaxed) as f64),
            ),
            (
                "unavailable",
                Json::Num(self.metrics.unavailable.load(Ordering::Relaxed) as f64),
            ),
            ("shards", Json::Num(self.shards.len() as f64)),
            (
                "replicas",
                Json::Num(self.config.effective_replicas() as f64),
            ),
        ]);
        ok_response(
            version,
            "stats",
            id,
            [("router", router), ("shards", Json::Obj(per_shard))],
        )
    }

    /// The router's own counters in Prometheus text exposition format.
    /// Shard-side metrics are *not* aggregated here — scrape each shard's
    /// `metrics` op directly; labels would collide otherwise.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let counters = [
            (
                "fis_router_requests_total",
                "Front-side requests handled (including local errors).",
                self.metrics.requests.load(Ordering::Relaxed),
            ),
            (
                "fis_router_failovers_total",
                "Requests answered by a replica other than the primary.",
                self.metrics.failovers.load(Ordering::Relaxed),
            ),
            (
                "fis_router_unavailable_total",
                "Requests for which every replica was unreachable.",
                self.metrics.unavailable.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        let gauges = [
            ("fis_router_shards", "Configured shards.", self.shards.len()),
            (
                "fis_router_replicas",
                "Effective replica count per building.",
                self.config.effective_replicas(),
            ),
        ];
        for (name, help, value) in gauges {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        }
        out.push_str(
            "# HELP fis_router_shard_down 1 if the shard failed its last call.\n\
             # TYPE fis_router_shard_down gauge\n",
        );
        for shard in &self.shards {
            out.push_str(&format!(
                "fis_router_shard_down{{addr=\"{}\"}} {}\n",
                shard.addr,
                u8::from(shard.is_down())
            ));
        }
        out
    }

    /// Handles one front-side request line; the router-side equivalent
    /// of [`crate::Daemon::handle_line`].
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let frame = match parse_frame(line) {
            Ok(frame) => frame,
            Err(fe) => {
                return (
                    error_response(fe.version, fe.op.as_deref(), fe.id.as_ref(), &fe.error)
                        .to_string(),
                    false,
                )
            }
        };
        let Frame {
            id,
            version,
            request,
            trace,
        } = frame;
        let op = request.op();
        let mut span = match trace {
            Some(remote) => obs::span_in(remote, Level::Debug, "router", "dispatch"),
            None => obs::span_root(Level::Debug, "router", "dispatch", line.as_bytes()),
        };
        span.str("op", op);
        // When a sink is live, forward a rewritten frame carrying this
        // span's context so shard-side spans join the same trace.
        // Responses are relayed verbatim either way, and shards ignore
        // `trace` when answering, so client-visible bytes never change.
        let outbound: Cow<'_, str> = match span.context() {
            Some(ctx) => Cow::Owned(inject_trace(line.trim(), ctx)),
            None => Cow::Borrowed(line.trim()),
        };
        let forwarded = match &request {
            Request::Assign { building, .. }
            | Request::AssignBatch { building, .. }
            | Request::Load { building } => {
                span.str("building", building);
                self.forward(building, &outbound)
            }
            // Mutations must reach every replica cache. For `extend`
            // this also *converges* the replicas: extension is a pure
            // function of (artifact, scans), so each shard republishes
            // byte-identical extended artifacts independently.
            Request::Evict { building }
            | Request::Extend { building, .. }
            | Request::Swap { building } => {
                span.str("building", building);
                self.forward_all(building, &outbound)
            }
            Request::Stats => {
                return (self.stats_response(version, id.as_ref()).to_string(), false)
            }
            Request::Metrics => {
                return (
                    ok_response(
                        version,
                        "metrics",
                        id.as_ref(),
                        [("metrics", Json::Str(self.prometheus_text()))],
                    )
                    .to_string(),
                    false,
                )
            }
            Request::Shutdown => {
                for shard in &self.shards {
                    shard.call(&outbound).ok();
                }
                return (
                    ok_response(version, "shutdown", id.as_ref(), []).to_string(),
                    true,
                );
            }
        };
        match forwarded {
            Ok((response, failed_over)) => {
                if failed_over {
                    self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    obs::event(Level::Warn, "router", "failover")
                        .str("op", op)
                        .emit();
                }
                (response, false)
            }
            Err(e) => {
                self.metrics.unavailable.fetch_add(1, Ordering::Relaxed);
                span.str("error", "unavailable");
                obs::event(Level::Error, "router", "unavailable")
                    .str("op", op)
                    .str("error", e.to_string())
                    .emit();
                (
                    error_response(version, Some(op), id.as_ref(), &e).to_string(),
                    false,
                )
            }
        }
    }

    /// Serves the front side on a bounded worker pool until a client
    /// sends `shutdown` (which is broadcast to the shards first).
    ///
    /// # Errors
    ///
    /// Only non-transient accept-level I/O errors.
    pub fn serve_tcp(&self, listener: &TcpListener) -> std::io::Result<()> {
        pool::serve_pooled(listener, self, self.config.pool_workers())
    }
}

impl LineServer for Router {
    fn handle(&self, line: &str) -> (String, bool) {
        self.handle_line(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_router(n: usize, replicas: usize) -> Router {
        let shards = (0..n).map(|i| format!("127.0.0.1:{}", 40000 + i)).collect();
        Router::new(RouterConfig::new(shards).replicas(replicas))
    }

    #[test]
    fn route_is_stable_distinct_and_replica_sized() {
        let router = test_router(5, 3);
        for building in ["hq", "lab", "annex", "tower-9", ""] {
            let order = router.route(building);
            assert_eq!(order.len(), 3, "{building}: replica count");
            let mut dedup = order.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "{building}: replicas are distinct");
            assert_eq!(order, router.route(building), "{building}: stable");
            assert!(order.iter().all(|&i| i < 5));
        }
    }

    #[test]
    fn replicas_clamp_to_shard_count() {
        assert_eq!(test_router(2, 8).route("hq").len(), 2);
        assert_eq!(test_router(3, 0).route("hq").len(), 1);
    }

    #[test]
    fn ring_spreads_buildings_across_shards() {
        let router = test_router(4, 1);
        let mut hits = [0usize; 4];
        for i in 0..512 {
            hits[router.route(&format!("building-{i}"))[0]] += 1;
        }
        // Perfect balance is 128 each; require every shard to carry a
        // real share of the keyspace (no starved or hot-spotted shard).
        assert!(
            hits.iter().all(|&h| h >= 32),
            "512 buildings spread poorly: {hits:?}"
        );
    }

    #[test]
    fn adding_a_shard_only_remaps_a_fraction() {
        let before = test_router(4, 1);
        let shards = (0..5).map(|i| format!("127.0.0.1:{}", 40000 + i)).collect();
        let after = Router::new(RouterConfig::new(shards).replicas(1));
        let moved = (0..200)
            .filter(|i| {
                let b = format!("building-{i}");
                before.route(&b) != after.route(&b)
            })
            .count();
        // Ideal is 1/5 = 40 of 200; allow generous slack, but far below
        // the full reshuffle a modulo scheme would cause.
        assert!(moved < 100, "{moved}/200 buildings moved on scale-out");
    }

    #[test]
    fn unreachable_shards_yield_typed_unavailable_error() {
        // Nothing listens on these ports.
        let router = test_router(2, 2);
        let (response, shutdown) = router.handle_line(r#"{"op":"load","building":"hq","id":7}"#);
        assert!(!shutdown);
        let json = Json::parse(&response).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            json.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("unavailable")
        );
        assert_eq!(json.get("id").unwrap().as_usize(), Some(7));
        assert_eq!(json.get("op").unwrap().as_str(), Some("load"));
    }

    #[test]
    fn malformed_frames_are_answered_locally() {
        let router = test_router(2, 2);
        let (response, _) = router.handle_line("not json");
        let json = Json::parse(&response).unwrap();
        assert_eq!(
            json.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("protocol"),
            "no shard needed to reject a bad frame"
        );
    }
}
