//! Per-model and global serving metrics.
//!
//! Every request is recorded into the global accumulator, and — when it
//! named a building whose artifact actually exists — into that model's
//! scope: the request count, accepted batch size, scans successfully
//! labeled, error count, and service latency (p50/p99/mean via
//! [`fis_metrics::Quantiles`]). Model metrics are keyed by building id
//! and **survive eviction**: the cache can come and go, the counters
//! don't. Requests naming buildings that never resolved to an artifact
//! only count globally, so a client spraying made-up ids cannot grow
//! the per-model map without bound. The `stats` op serializes the whole
//! thing as sorted-key JSON, so two daemons with the same request
//! history report byte-identical stats (up to the timings themselves).

use std::collections::BTreeMap;
use std::time::Instant;

use fis_metrics::Quantiles;
use fis_types::json::Json;

use crate::registry::{ModelRegistry, RegistryStats};

/// Counters and latency for one scope (global or one model).
#[derive(Debug, Clone, Default)]
pub struct OpMetrics {
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests that answered with an error, plus batches that answered
    /// `ok` but carried at least one per-scan failure.
    pub errors: u64,
    /// Scans successfully labeled. Rejected batches contribute nothing;
    /// a partially failed batch contributes only its labeled scans.
    pub scans: u64,
    /// Largest *accepted* batch (rejected batches don't count).
    pub batch_max: u64,
    /// Service latency per request, nanoseconds.
    pub latency_ns: Quantiles,
}

impl OpMetrics {
    fn record(&mut self, attempted: u64, labeled: u64, failed: bool, latency_ns: f64) {
        self.requests += 1;
        self.scans += labeled;
        self.batch_max = self.batch_max.max(attempted);
        if failed {
            self.errors += 1;
        }
        self.latency_ns.push(latency_ns);
    }

    /// Mean labeled scans per request (0.0 before any).
    pub fn mean_batch(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.scans as f64 / self.requests as f64
        }
    }

    fn to_json(&self) -> Json {
        let q = &self.latency_ns;
        Json::obj([
            ("requests", Json::Num(self.requests as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("scans", Json::Num(self.scans as f64)),
            ("batch_max", Json::Num(self.batch_max as f64)),
            (
                "latency_ns",
                Json::obj([
                    ("count", Json::Num(q.count() as f64)),
                    ("mean", Json::Num(q.mean().unwrap_or(0.0))),
                    ("p50", Json::Num(q.p50().unwrap_or(0.0))),
                    ("p99", Json::Num(q.p99().unwrap_or(0.0))),
                    ("max", Json::Num(q.max().unwrap_or(0.0))),
                ]),
            ),
        ])
    }
}

/// The daemon's metrics: one global scope plus one scope per model.
#[derive(Debug)]
pub struct ServingMetrics {
    started: Instant,
    /// All requests, regardless of model (protocol errors land here).
    pub global: OpMetrics,
    /// Per-building scopes, created on first touch, kept after eviction.
    pub models: BTreeMap<String, OpMetrics>,
}

impl Default for ServingMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServingMetrics {
    /// Creates empty metrics; uptime starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            global: OpMetrics::default(),
            models: BTreeMap::new(),
        }
    }

    /// Records one request: globally, and under `model` when the request
    /// resolved to one. The caller (the daemon's dispatch) passes
    /// `model: Some(..)` only for buildings whose artifact exists or
    /// whose scope was already created, keeping the map bounded by real
    /// tenants.
    pub fn record(
        &mut self,
        model: Option<&str>,
        attempted: u64,
        labeled: u64,
        failed: bool,
        latency_ns: f64,
    ) {
        self.global.record(attempted, labeled, failed, latency_ns);
        if let Some(model) = model {
            self.models
                .entry(model.to_owned())
                .or_default()
                .record(attempted, labeled, failed, latency_ns);
        }
    }

    /// Whether a per-model scope already exists for `model`.
    pub fn has_scope(&self, model: &str) -> bool {
        self.models.contains_key(model)
    }

    /// The `stats` response payload: global + per-model metrics plus the
    /// registry's cache counters and current residents.
    pub fn to_json(&self, registry: &ModelRegistry) -> Json {
        let RegistryStats {
            hits,
            misses,
            evictions,
            reloads,
            load_failures,
            assign_cache,
        } = registry.stats();
        let loaded = Json::Arr(
            registry
                .loaded()
                .into_iter()
                .map(|(name, bytes)| {
                    Json::obj([
                        ("building", Json::Str(name)),
                        ("bytes", Json::Num(bytes as f64)),
                    ])
                })
                .collect(),
        );
        let models = Json::Obj(
            self.models
                .iter()
                .map(|(k, m)| (k.clone(), m.to_json()))
                .collect(),
        );
        Json::obj([
            (
                "uptime_ms",
                Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("global", self.global.to_json()),
            ("models", models),
            (
                "registry",
                Json::obj([
                    ("hits", Json::Num(hits as f64)),
                    ("misses", Json::Num(misses as f64)),
                    ("evictions", Json::Num(evictions as f64)),
                    ("reloads", Json::Num(reloads as f64)),
                    ("load_failures", Json::Num(load_failures as f64)),
                    ("loaded", loaded),
                    ("bytes", Json::Num(registry.total_bytes() as f64)),
                ]),
            ),
            (
                "assign_cache",
                Json::obj([
                    ("capacity", Json::Num(registry.config().assign_cache as f64)),
                    ("entries", Json::Num(registry.assign_cache_entries() as f64)),
                    ("hits", Json::Num(assign_cache.hits as f64)),
                    ("misses", Json::Num(assign_cache.misses as f64)),
                    ("insertions", Json::Num(assign_cache.insertions as f64)),
                    ("evictions", Json::Num(assign_cache.evictions as f64)),
                    ("hit_rate", Json::Num(assign_cache.hit_rate())),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;

    #[test]
    fn records_global_and_per_model() {
        let mut m = ServingMetrics::new();
        m.record(Some("a"), 1, 1, false, 1000.0); // assign, labeled
        m.record(Some("a"), 10, 10, false, 2000.0); // clean batch
        m.record(Some("b"), 5, 3, true, 3000.0); // batch, 2 per-scan failures
        m.record(None, 0, 0, true, 100.0); // protocol error, no model
        m.record(None, 0, 0, true, 50.0); // rejected batch: nothing labeled
        assert_eq!(m.global.requests, 5);
        assert_eq!(m.global.scans, 14, "only labeled scans count");
        assert_eq!(m.global.errors, 3, "partial batch failure is an error");
        assert_eq!(m.global.batch_max, 10);
        assert_eq!(m.models["a"].requests, 2);
        assert_eq!(m.models["a"].scans, 11);
        assert_eq!(m.models["b"].errors, 1);
        assert_eq!(m.models["b"].scans, 3);
        assert_eq!(m.models.len(), 2, "no scope for model-less requests");
        assert!(m.has_scope("a") && !m.has_scope("ghost"));
        assert_eq!(m.global.latency_ns.count(), 5);
    }

    #[test]
    fn stats_json_shape() {
        let mut m = ServingMetrics::new();
        m.record(Some("hq"), 3, 3, false, 5000.0);
        let dir = std::env::temp_dir().join("fis_metrics_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let registry = ModelRegistry::new(RegistryConfig::new(&dir));
        let json = m.to_json(&registry);
        assert!(json.get("uptime_ms").is_some());
        assert_eq!(
            json.get("global")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_usize(),
            Some(1)
        );
        let hq = json.get("models").unwrap().get("hq").unwrap();
        assert_eq!(hq.get("scans").unwrap().as_usize(), Some(3));
        assert!(hq.get("latency_ns").unwrap().get("p99").is_some());
        assert_eq!(
            json.get("registry")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_usize(),
            Some(0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
