//! Per-model and global serving metrics.
//!
//! Every request is recorded into the global accumulator, and — when it
//! named a building whose artifact actually exists — into that model's
//! scope: the request count, accepted batch size, scans successfully
//! labeled, error count, and service latency (p50/p99/mean via
//! [`fis_metrics::Quantiles`]). Model metrics are keyed by building id
//! and **survive eviction**: the cache can come and go, the counters
//! don't. Requests naming buildings that never resolved to an artifact
//! only count globally, so a client spraying made-up ids cannot grow
//! the per-model map without bound. The `stats` op serializes the whole
//! thing as sorted-key JSON, so two daemons with the same request
//! history report byte-identical stats (up to the timings themselves).
//!
//! Each scope also feeds a log-bucketed [`fis_metrics::Histogram`] of
//! service latency; the v2 `metrics` op exports every counter, the
//! quantile summaries, and the histograms in Prometheus text format via
//! [`ServingMetrics::to_prometheus`] (also written by `--metrics FILE`
//! on daemon exit).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use fis_metrics::{Histogram, Quantiles};
use fis_types::json::Json;

use crate::registry::{ModelRegistry, RegistryStats};

/// Counters and latency for one scope (global or one model).
#[derive(Debug, Clone, Default)]
pub struct OpMetrics {
    /// Requests handled (including failed ones).
    pub requests: u64,
    /// Requests that answered with an error, plus batches that answered
    /// `ok` but carried at least one per-scan failure.
    pub errors: u64,
    /// Scans successfully labeled. Rejected batches contribute nothing;
    /// a partially failed batch contributes only its labeled scans.
    pub scans: u64,
    /// Largest *accepted* batch (rejected batches don't count).
    pub batch_max: u64,
    /// Service latency per request, nanoseconds.
    pub latency_ns: Quantiles,
    /// The same latency stream as an exact base-2 histogram, for the
    /// Prometheus exposition. Not part of the `stats` JSON (whose v1
    /// shape is frozen).
    pub latency_hist: Histogram,
}

impl OpMetrics {
    fn record(&mut self, attempted: u64, labeled: u64, failed: bool, latency_ns: f64) {
        self.requests += 1;
        self.scans += labeled;
        self.batch_max = self.batch_max.max(attempted);
        if failed {
            self.errors += 1;
        }
        self.latency_ns.push(latency_ns);
        self.latency_hist.record(latency_ns);
    }

    /// Mean labeled scans per request (0.0 before any).
    pub fn mean_batch(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.scans as f64 / self.requests as f64
        }
    }

    fn to_json(&self) -> Json {
        let q = &self.latency_ns;
        Json::obj([
            ("requests", Json::Num(self.requests as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("scans", Json::Num(self.scans as f64)),
            ("batch_max", Json::Num(self.batch_max as f64)),
            (
                "latency_ns",
                Json::obj([
                    ("count", Json::Num(q.count() as f64)),
                    ("mean", Json::Num(q.mean().unwrap_or(0.0))),
                    ("p50", Json::Num(q.p50().unwrap_or(0.0))),
                    ("p99", Json::Num(q.p99().unwrap_or(0.0))),
                    ("max", Json::Num(q.max().unwrap_or(0.0))),
                ]),
            ),
        ])
    }
}

/// The daemon's metrics: one global scope plus one scope per model.
#[derive(Debug)]
pub struct ServingMetrics {
    started: Instant,
    /// All requests, regardless of model (protocol errors land here).
    pub global: OpMetrics,
    /// Per-building scopes, created on first touch, kept after eviction.
    pub models: BTreeMap<String, OpMetrics>,
}

impl Default for ServingMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServingMetrics {
    /// Creates empty metrics; uptime starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            global: OpMetrics::default(),
            models: BTreeMap::new(),
        }
    }

    /// Records one request: globally, and under `model` when the request
    /// resolved to one. The caller (the daemon's dispatch) passes
    /// `model: Some(..)` only for buildings whose artifact exists or
    /// whose scope was already created, keeping the map bounded by real
    /// tenants.
    pub fn record(
        &mut self,
        model: Option<&str>,
        attempted: u64,
        labeled: u64,
        failed: bool,
        latency_ns: f64,
    ) {
        self.global.record(attempted, labeled, failed, latency_ns);
        if let Some(model) = model {
            self.models
                .entry(model.to_owned())
                .or_default()
                .record(attempted, labeled, failed, latency_ns);
        }
    }

    /// Whether a per-model scope already exists for `model`.
    pub fn has_scope(&self, model: &str) -> bool {
        self.models.contains_key(model)
    }

    /// The `stats` response payload: global + per-model metrics plus the
    /// registry's cache counters and current residents.
    pub fn to_json(&self, registry: &ModelRegistry) -> Json {
        let RegistryStats {
            hits,
            misses,
            evictions,
            reloads,
            load_failures,
            assign_cache,
        } = registry.stats();
        let loaded = Json::Arr(
            registry
                .loaded()
                .into_iter()
                .map(|(name, bytes)| {
                    Json::obj([
                        ("building", Json::Str(name)),
                        ("bytes", Json::Num(bytes as f64)),
                    ])
                })
                .collect(),
        );
        let models = Json::Obj(
            self.models
                .iter()
                .map(|(k, m)| (k.clone(), m.to_json()))
                .collect(),
        );
        Json::obj([
            (
                "uptime_ms",
                Json::Num(self.started.elapsed().as_secs_f64() * 1e3),
            ),
            ("global", self.global.to_json()),
            ("models", models),
            (
                "registry",
                Json::obj([
                    ("hits", Json::Num(hits as f64)),
                    ("misses", Json::Num(misses as f64)),
                    ("evictions", Json::Num(evictions as f64)),
                    ("reloads", Json::Num(reloads as f64)),
                    ("load_failures", Json::Num(load_failures as f64)),
                    ("loaded", loaded),
                    ("bytes", Json::Num(registry.total_bytes() as f64)),
                ]),
            ),
            (
                "assign_cache",
                Json::obj([
                    ("capacity", Json::Num(registry.config().assign_cache as f64)),
                    ("entries", Json::Num(registry.assign_cache_entries() as f64)),
                    ("hits", Json::Num(assign_cache.hits as f64)),
                    ("misses", Json::Num(assign_cache.misses as f64)),
                    ("insertions", Json::Num(assign_cache.insertions as f64)),
                    ("evictions", Json::Num(assign_cache.evictions as f64)),
                    ("hit_rate", Json::Num(assign_cache.hit_rate())),
                ]),
            ),
        ])
    }

    /// Renders every counter, quantile summary, and latency histogram in
    /// Prometheus text exposition format: the `metrics` op payload and
    /// the `--metrics FILE` dump. Scopes become labels (`scope="global"`
    /// vs `scope="model",building="hq"`); all byte layout is
    /// deterministic given the same request history and timings.
    pub fn to_prometheus(
        &self,
        registry: &RegistryStats,
        registry_extra: RegistryGauges,
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE fis_uptime_seconds gauge");
        let _ = writeln!(
            out,
            "fis_uptime_seconds {}",
            self.started.elapsed().as_secs_f64()
        );
        let scopes: Vec<(String, &OpMetrics)> =
            std::iter::once(("scope=\"global\"".to_owned(), &self.global))
                .chain(self.models.iter().map(|(name, m)| {
                    (
                        format!("scope=\"model\",building=\"{}\"", escape_label(name)),
                        m,
                    )
                }))
                .collect();
        for (metric, help, get) in [
            (
                "fis_requests_total",
                "Requests handled (including failed ones)",
                (|m: &OpMetrics| m.requests) as fn(&OpMetrics) -> u64,
            ),
            (
                "fis_errors_total",
                "Requests answered with an error or carrying per-scan failures",
                |m| m.errors,
            ),
            ("fis_scans_total", "Scans successfully labeled", |m| m.scans),
            ("fis_batch_max", "Largest accepted batch", |m| m.batch_max),
        ] {
            let _ = writeln!(out, "# HELP {metric} {help}");
            let kind = if metric.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            let _ = writeln!(out, "# TYPE {metric} {kind}");
            for (labels, m) in &scopes {
                let _ = writeln!(out, "{metric}{{{labels}}} {}", get(m));
            }
        }
        let _ = writeln!(
            out,
            "# HELP fis_latency_quantiles_ns Service latency summary (decimated recorder)"
        );
        let _ = writeln!(out, "# TYPE fis_latency_quantiles_ns summary");
        for (labels, m) in &scopes {
            let q = &m.latency_ns;
            for (quantile, value) in [("0.5", q.p50()), ("0.99", q.p99())] {
                let _ = writeln!(
                    out,
                    "fis_latency_quantiles_ns{{{labels},quantile=\"{quantile}\"}} {}",
                    value.unwrap_or(0.0)
                );
            }
            let sum = q.mean().unwrap_or(0.0) * q.count() as f64;
            let _ = writeln!(out, "fis_latency_quantiles_ns_sum{{{labels}}} {sum}");
            let _ = writeln!(
                out,
                "fis_latency_quantiles_ns_count{{{labels}}} {}",
                q.count()
            );
        }
        let _ = writeln!(
            out,
            "# HELP fis_latency_ns Service latency distribution (base-2 buckets)"
        );
        let _ = writeln!(out, "# TYPE fis_latency_ns histogram");
        for (labels, m) in &scopes {
            m.latency_hist
                .render_prometheus(&mut out, "fis_latency_ns", labels);
        }
        for (metric, value) in [
            ("fis_registry_hits_total", registry.hits),
            ("fis_registry_misses_total", registry.misses),
            ("fis_registry_evictions_total", registry.evictions),
            ("fis_registry_reloads_total", registry.reloads),
            ("fis_registry_load_failures_total", registry.load_failures),
            ("fis_registry_loaded_models", registry_extra.loaded_models),
            ("fis_registry_bytes", registry_extra.bytes),
            ("fis_assign_cache_hits_total", registry.assign_cache.hits),
            (
                "fis_assign_cache_misses_total",
                registry.assign_cache.misses,
            ),
            (
                "fis_assign_cache_insertions_total",
                registry.assign_cache.insertions,
            ),
            (
                "fis_assign_cache_evictions_total",
                registry.assign_cache.evictions,
            ),
            ("fis_assign_cache_entries", registry_extra.cache_entries),
            ("fis_assign_cache_capacity", registry_extra.cache_capacity),
        ] {
            let kind = if metric.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            let _ = writeln!(out, "# TYPE {metric} {kind}");
            let _ = writeln!(out, "{metric} {value}");
        }
        out
    }
}

/// Point-in-time registry gauges that accompany [`RegistryStats`]
/// counters in the Prometheus exposition (the stats struct itself only
/// carries lifetime counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistryGauges {
    /// Models currently resident in the cache.
    pub loaded_models: u64,
    /// Bytes of artifacts currently resident.
    pub bytes: u64,
    /// Answers currently cached across resident models.
    pub cache_entries: u64,
    /// Configured per-model answer-cache capacity.
    pub cache_capacity: u64,
}

/// Escapes a string for use inside a Prometheus label value.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;

    #[test]
    fn records_global_and_per_model() {
        let mut m = ServingMetrics::new();
        m.record(Some("a"), 1, 1, false, 1000.0); // assign, labeled
        m.record(Some("a"), 10, 10, false, 2000.0); // clean batch
        m.record(Some("b"), 5, 3, true, 3000.0); // batch, 2 per-scan failures
        m.record(None, 0, 0, true, 100.0); // protocol error, no model
        m.record(None, 0, 0, true, 50.0); // rejected batch: nothing labeled
        assert_eq!(m.global.requests, 5);
        assert_eq!(m.global.scans, 14, "only labeled scans count");
        assert_eq!(m.global.errors, 3, "partial batch failure is an error");
        assert_eq!(m.global.batch_max, 10);
        assert_eq!(m.models["a"].requests, 2);
        assert_eq!(m.models["a"].scans, 11);
        assert_eq!(m.models["b"].errors, 1);
        assert_eq!(m.models["b"].scans, 3);
        assert_eq!(m.models.len(), 2, "no scope for model-less requests");
        assert!(m.has_scope("a") && !m.has_scope("ghost"));
        assert_eq!(m.global.latency_ns.count(), 5);
    }

    #[test]
    fn stats_json_shape() {
        let mut m = ServingMetrics::new();
        m.record(Some("hq"), 3, 3, false, 5000.0);
        let dir = std::env::temp_dir().join("fis_metrics_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let registry = ModelRegistry::new(RegistryConfig::new(&dir));
        let json = m.to_json(&registry);
        assert!(json.get("uptime_ms").is_some());
        assert_eq!(
            json.get("global")
                .unwrap()
                .get("requests")
                .unwrap()
                .as_usize(),
            Some(1)
        );
        let hq = json.get("models").unwrap().get("hq").unwrap();
        assert_eq!(hq.get("scans").unwrap().as_usize(), Some(3));
        assert!(hq.get("latency_ns").unwrap().get("p99").is_some());
        assert_eq!(
            json.get("registry")
                .unwrap()
                .get("hits")
                .unwrap()
                .as_usize(),
            Some(0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut m = ServingMetrics::new();
        m.record(Some("hq"), 3, 3, false, 5000.0);
        m.record(None, 0, 0, true, 100.0);
        let text = m.to_prometheus(
            &Default::default(),
            RegistryGauges {
                loaded_models: 1,
                bytes: 1024,
                cache_entries: 2,
                cache_capacity: 64,
            },
        );
        for needle in [
            "# TYPE fis_requests_total counter",
            "fis_requests_total{scope=\"global\"} 2",
            "fis_requests_total{scope=\"model\",building=\"hq\"} 1",
            "fis_errors_total{scope=\"global\"} 1",
            "fis_scans_total{scope=\"model\",building=\"hq\"} 3",
            "# TYPE fis_latency_ns histogram",
            "fis_latency_ns_count{scope=\"global\"} 2",
            "fis_latency_quantiles_ns{scope=\"global\",quantile=\"0.99\"} 5000",
            "fis_registry_loaded_models 1",
            "fis_assign_cache_capacity 64",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // Every non-comment line is `name{labels} value` with a numeric
        // value — the parseability contract the smoke test rechecks.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
    }
}
