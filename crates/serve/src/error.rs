//! Typed serving errors, wire-serializable.
//!
//! Every failure the daemon can hit — a malformed frame, an unknown
//! building, a corrupt or vanished artifact, a failed inference, an
//! oversized batch — maps onto one [`ServeError`] variant, which in turn
//! maps onto one stable `kind` string on the wire. The daemon **never**
//! crashes on bad input; it answers with one of these.

use std::fmt;

use fis_core::FisError;
use fis_types::json::Json;

/// A serving-layer failure, tagged for the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request frame was not valid JSON or not a valid request shape.
    Protocol(String),
    /// No artifact exists for the requested building id.
    UnknownBuilding(String),
    /// The artifact failed to load or validate (corrupt JSON, schema
    /// mismatch, deleted between load and request, id mismatch).
    Model(String),
    /// Per-scan inference failed (e.g. no MAC known to the model).
    Inference(String),
    /// The request exceeded a configured budget (e.g. batch size).
    Capacity(String),
    /// The daemon is shutting down and no longer accepts work.
    Shutdown(String),
    /// No backend could take the request (router-level: every replica
    /// for the routed building is unreachable).
    Unavailable(String),
}

impl ServeError {
    /// The stable wire tag of this error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Protocol(_) => "protocol",
            ServeError::UnknownBuilding(_) => "unknown_building",
            ServeError::Model(_) => "model",
            ServeError::Inference(_) => "inference",
            ServeError::Capacity(_) => "capacity",
            ServeError::Shutdown(_) => "shutdown",
            ServeError::Unavailable(_) => "unavailable",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            ServeError::Protocol(m)
            | ServeError::UnknownBuilding(m)
            | ServeError::Model(m)
            | ServeError::Inference(m)
            | ServeError::Capacity(m)
            | ServeError::Shutdown(m)
            | ServeError::Unavailable(m) => m,
        }
    }

    /// The wire form: `{"kind": "...", "message": "..."}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::Str(self.kind().to_owned())),
            ("message", Json::Str(self.message().to_owned())),
        ])
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for ServeError {}

impl From<FisError> for ServeError {
    fn from(e: FisError) -> Self {
        match e {
            FisError::Model(m) => ServeError::Model(m),
            FisError::Inference(m) => ServeError::Inference(m),
            other => ServeError::Model(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_wire_tags() {
        assert_eq!(ServeError::Protocol("x".into()).kind(), "protocol");
        assert_eq!(
            ServeError::UnknownBuilding("x".into()).kind(),
            "unknown_building"
        );
        assert_eq!(ServeError::Model("x".into()).kind(), "model");
        assert_eq!(ServeError::Inference("x".into()).kind(), "inference");
        assert_eq!(ServeError::Capacity("x".into()).kind(), "capacity");
        assert_eq!(ServeError::Shutdown("x".into()).kind(), "shutdown");
        assert_eq!(ServeError::Unavailable("x".into()).kind(), "unavailable");
    }

    #[test]
    fn wire_form_has_kind_and_message() {
        let json = ServeError::UnknownBuilding("no artifact for `hq`".into()).to_json();
        assert_eq!(json.get("kind").unwrap().as_str(), Some("unknown_building"));
        assert_eq!(
            json.get("message").unwrap().as_str(),
            Some("no artifact for `hq`")
        );
    }

    #[test]
    fn fis_errors_map_onto_serve_kinds() {
        assert_eq!(
            ServeError::from(FisError::Inference("no known MAC".into())).kind(),
            "inference"
        );
        assert_eq!(
            ServeError::from(FisError::Model("corrupt".into())).kind(),
            "model"
        );
        assert_eq!(
            ServeError::from(FisError::Graph("bad".into())).kind(),
            "model"
        );
    }
}
