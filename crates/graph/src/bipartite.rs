//! The weighted bipartite MAC × sample graph.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use fis_types::{MacAddr, SignalSample};
use rand::Rng;

/// Error constructing a bipartite graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// No samples were supplied.
    Empty,
    /// Sample ids were not dense `0..n`.
    NonDenseIds(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "cannot build a graph from zero samples"),
            GraphError::NonDenseIds(s) => write!(f, "sample ids must be dense: {s}"),
        }
    }
}

impl Error for GraphError {}

/// Which side of the bipartition a unified node index belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A crowdsourced signal sample (set `V` in the paper).
    Sample(usize),
    /// A sensed MAC address (set `U` in the paper).
    Mac(usize),
}

/// Weighted bipartite graph of signal samples and MAC addresses.
///
/// Nodes live in a unified index space: indices `0..n_samples` are sample
/// nodes, `n_samples..n_samples + n_macs` are MAC nodes. Every edge carries
/// the positive weight `f(RSS) = RSS + c` from §III-A. Adjacency is stored
/// both ways so walks and neighbor sampling are symmetric.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    n_samples: usize,
    macs: Vec<MacAddr>,
    adj: Vec<Vec<(usize, f64)>>,
}

impl BipartiteGraph {
    /// Builds the graph from samples using the default offset `c = 120`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for an empty slice and
    /// [`GraphError::NonDenseIds`] if sample ids are not `0..n` in order.
    /// Samples that heard nothing become isolated sample nodes.
    pub fn from_samples(samples: &[SignalSample]) -> Result<Self, GraphError> {
        Self::from_samples_with_offset(samples, fis_types::DEFAULT_RSS_OFFSET)
    }

    /// Builds the graph with an explicit weight offset `c`.
    ///
    /// # Errors
    ///
    /// See [`BipartiteGraph::from_samples`].
    pub fn from_samples_with_offset(
        samples: &[SignalSample],
        offset: f64,
    ) -> Result<Self, GraphError> {
        if samples.is_empty() {
            return Err(GraphError::Empty);
        }
        for (i, s) in samples.iter().enumerate() {
            if s.id().index() != i {
                return Err(GraphError::NonDenseIds(format!(
                    "sample at position {i} has id {}",
                    s.id()
                )));
            }
        }
        let n_samples = samples.len();
        let mut mac_index: HashMap<MacAddr, usize> = HashMap::new();
        let mut macs: Vec<MacAddr> = Vec::new();
        // First pass: intern MACs in first-seen order (deterministic).
        for s in samples {
            for (mac, _) in s.iter() {
                mac_index.entry(mac).or_insert_with(|| {
                    macs.push(mac);
                    macs.len() - 1
                });
            }
        }
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_samples + macs.len()];
        for (si, s) in samples.iter().enumerate() {
            for (mac, rssi) in s.iter() {
                let mi = mac_index[&mac];
                let w = rssi.edge_weight_with_offset(offset);
                adj[si].push((n_samples + mi, w));
                adj[n_samples + mi].push((si, w));
            }
        }
        Ok(Self {
            n_samples,
            macs,
            adj,
        })
    }

    /// Number of sample nodes (`|V|`).
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of MAC nodes (`|U|`).
    pub fn n_macs(&self) -> usize {
        self.macs.len()
    }

    /// Total nodes in the unified index space.
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Total number of (undirected) edges.
    pub fn n_edges(&self) -> usize {
        self.adj[..self.n_samples].iter().map(Vec::len).sum()
    }

    /// Unified index of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_samples()`.
    pub fn sample_node(&self, i: usize) -> usize {
        assert!(i < self.n_samples, "sample index {i} out of bounds");
        i
    }

    /// Unified index of interned MAC `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_macs()`.
    pub fn mac_node(&self, j: usize) -> usize {
        assert!(j < self.macs.len(), "mac index {j} out of bounds");
        self.n_samples + j
    }

    /// Classifies a unified node index.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n_nodes()`.
    pub fn kind(&self, node: usize) -> NodeKind {
        assert!(node < self.n_nodes(), "node {node} out of bounds");
        if node < self.n_samples {
            NodeKind::Sample(node)
        } else {
            NodeKind::Mac(node - self.n_samples)
        }
    }

    /// The MAC address interned at index `j`.
    pub fn mac(&self, j: usize) -> MacAddr {
        self.macs[j]
    }

    /// The full MAC vocabulary in interned (first-seen) order.
    ///
    /// `macs()[j]` is the address of MAC node `mac_node(j)`. This is the
    /// vocabulary a fitted model persists so streaming scans can be mapped
    /// back onto the training graph.
    pub fn macs(&self) -> &[MacAddr] {
        &self.macs
    }

    /// Looks up the interned index of a MAC address.
    pub fn mac_id(&self, mac: MacAddr) -> Option<usize> {
        self.macs.iter().position(|&m| m == mac)
    }

    /// Neighbors of a node with their edge weights.
    pub fn neighbors(&self, node: usize) -> &[(usize, f64)] {
        &self.adj[node]
    }

    /// Degree of a node.
    pub fn degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// Sum of edge weights at a node.
    pub fn weighted_degree(&self, node: usize) -> f64 {
        self.adj[node].iter().map(|&(_, w)| w).sum()
    }

    /// Draws `k` neighbors of `node` with replacement, with probability
    /// proportional to edge weight — the paper's attention-based neighbor
    /// sampling `Pr(u) = f(RSS_uv) / Σ f(RSS_u'v)`.
    ///
    /// Returns an empty vector for isolated nodes.
    pub fn sample_neighbors_weighted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        node: usize,
        k: usize,
    ) -> Vec<usize> {
        let nbrs = &self.adj[node];
        if nbrs.is_empty() {
            return Vec::new();
        }
        let total: f64 = nbrs.iter().map(|&(_, w)| w).sum();
        (0..k)
            .map(|_| {
                let mut x = rng.gen_range(0.0..total);
                for &(n, w) in nbrs {
                    if x < w {
                        return n;
                    }
                    x -= w;
                }
                nbrs.last().expect("non-empty").0
            })
            .collect()
    }

    /// Draws `k` neighbors uniformly with replacement (the no-attention
    /// ablation of Figure 8(a,b)).
    pub fn sample_neighbors_uniform<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        node: usize,
        k: usize,
    ) -> Vec<usize> {
        let nbrs = &self.adj[node];
        if nbrs.is_empty() {
            return Vec::new();
        }
        (0..k)
            .map(|_| nbrs[rng.gen_range(0..nbrs.len())].0)
            .collect()
    }

    /// Connected-component id for every node (BFS). Isolated sample nodes
    /// form singleton components.
    pub fn components(&self) -> Vec<usize> {
        let n = self.n_nodes();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &(v, _) in &self.adj[u] {
                    if comp[v] == usize::MAX {
                        comp[v] = next;
                        queue.push_back(v);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Degrees of all nodes (used by the negative sampler).
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::Rssi;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rssi(v: f64) -> Rssi {
        Rssi::new(v).unwrap()
    }

    /// Two samples: s0 hears {m1:-60, m2:-80}, s1 hears {m2:-40}.
    fn tiny() -> BipartiteGraph {
        let m1 = MacAddr::from_u64(1);
        let m2 = MacAddr::from_u64(2);
        let s0 = SignalSample::builder(0)
            .reading(m1, rssi(-60.0))
            .reading(m2, rssi(-80.0))
            .build();
        let s1 = SignalSample::builder(1).reading(m2, rssi(-40.0)).build();
        BipartiteGraph::from_samples(&[s0, s1]).unwrap()
    }

    #[test]
    fn shapes_and_kinds() {
        let g = tiny();
        assert_eq!(g.n_samples(), 2);
        assert_eq!(g.n_macs(), 2);
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.kind(0), NodeKind::Sample(0));
        assert_eq!(g.kind(2), NodeKind::Mac(0));
    }

    #[test]
    fn weights_follow_offset_transform() {
        let g = tiny();
        // s0 -- m1 weight = -60 + 120 = 60
        let m1_node = g.mac_node(g.mac_id(MacAddr::from_u64(1)).unwrap());
        let w = g
            .neighbors(0)
            .iter()
            .find(|&&(n, _)| n == m1_node)
            .unwrap()
            .1;
        assert_eq!(w, 60.0);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = tiny();
        for u in 0..g.n_nodes() {
            for &(v, w) in g.neighbors(u) {
                assert!(g
                    .neighbors(v)
                    .iter()
                    .any(|&(back, bw)| back == u && bw == w));
            }
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            BipartiteGraph::from_samples(&[]).unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn non_dense_ids_rejected() {
        let s = SignalSample::builder(7)
            .reading(MacAddr::from_u64(1), rssi(-50.0))
            .build();
        assert!(matches!(
            BipartiteGraph::from_samples(&[s]),
            Err(GraphError::NonDenseIds(_))
        ));
    }

    #[test]
    fn isolated_sample_allowed() {
        let s0 = SignalSample::builder(0).build(); // heard nothing
        let s1 = SignalSample::builder(1)
            .reading(MacAddr::from_u64(1), rssi(-50.0))
            .build();
        let g = BipartiteGraph::from_samples(&[s0, s1]).unwrap();
        assert_eq!(g.degree(0), 0);
        let comps = g.components();
        assert_ne!(comps[0], comps[1]);
    }

    #[test]
    fn weighted_sampling_prefers_strong_edges() {
        let g = tiny();
        // s0's neighbors: m1 (w=60), m2 (w=40). Expect ~60% m1.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let draws = g.sample_neighbors_weighted(&mut rng, 0, 50_000);
        let m1_node = g.mac_node(g.mac_id(MacAddr::from_u64(1)).unwrap());
        let frac = draws.iter().filter(|&&n| n == m1_node).count() as f64 / draws.len() as f64;
        assert!((frac - 0.6).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn uniform_sampling_ignores_weights() {
        let g = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let draws = g.sample_neighbors_uniform(&mut rng, 0, 50_000);
        let m1_node = g.mac_node(g.mac_id(MacAddr::from_u64(1)).unwrap());
        let frac = draws.iter().filter(|&&n| n == m1_node).count() as f64 / draws.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn sampling_isolated_node_is_empty() {
        let s0 = SignalSample::builder(0).build();
        let g = BipartiteGraph::from_samples(&[s0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(g.sample_neighbors_weighted(&mut rng, 0, 5).is_empty());
        assert!(g.sample_neighbors_uniform(&mut rng, 0, 5).is_empty());
    }

    #[test]
    fn components_connected_graph() {
        let g = tiny();
        let comps = g.components();
        assert!(comps.iter().all(|&c| c == comps[0]));
    }

    #[test]
    fn degrees_vector_matches() {
        let g = tiny();
        assert_eq!(g.degrees(), vec![2, 1, 1, 2]);
    }
}
