//! Random walks and co-occurrence pair extraction.
//!
//! The unsupervised RF-GNN objective (§III-B) follows GraphSAGE: generate
//! many short random walks (length 5) and treat nodes that co-occur in the
//! same walk as positive pairs.

use rand::Rng;

use crate::bipartite::BipartiteGraph;

/// How the walker chooses the next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalkStrategy {
    /// Transition probability proportional to edge weight `f(RSS)` —
    /// consistent with the paper's attention principle.
    #[default]
    Weighted,
    /// Uniform over neighbors (no-attention ablation).
    Uniform,
}

/// Generates `walks_per_node` random walks of `length` steps starting from
/// every node of the graph.
///
/// Walks stop early at isolated nodes (a walk from an isolated node is just
/// the node itself). Output is deterministic given the RNG state.
pub fn random_walks<R: Rng + ?Sized>(
    graph: &BipartiteGraph,
    rng: &mut R,
    walks_per_node: usize,
    length: usize,
    strategy: WalkStrategy,
) -> Vec<Vec<usize>> {
    let mut walks = Vec::with_capacity(graph.n_nodes() * walks_per_node);
    for start in 0..graph.n_nodes() {
        for _ in 0..walks_per_node {
            let mut walk = Vec::with_capacity(length + 1);
            walk.push(start);
            let mut current = start;
            for _ in 0..length {
                let next = match strategy {
                    WalkStrategy::Weighted => graph.sample_neighbors_weighted(rng, current, 1),
                    WalkStrategy::Uniform => graph.sample_neighbors_uniform(rng, current, 1),
                };
                match next.first() {
                    Some(&n) => {
                        walk.push(n);
                        current = n;
                    }
                    None => break,
                }
            }
            walks.push(walk);
        }
    }
    walks
}

/// Extracts positive co-occurrence pairs `(i, j)` from walks: every ordered
/// pair of distinct nodes within `window` steps of each other.
///
/// With the paper's walk length of 5 and `window >= 5`, this yields "nodes
/// that appear in the same random walk" exactly.
pub fn cooccurrence_pairs(walks: &[Vec<usize>], window: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for walk in walks {
        for (i, &a) in walk.iter().enumerate() {
            let hi = (i + window + 1).min(walk.len());
            for &b in &walk[i + 1..hi] {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::{MacAddr, Rssi, SignalSample};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line_graph() -> BipartiteGraph {
        // s0 - m0 - s1 - m1 - s2 (a path through the bipartite structure)
        let r = Rssi::new(-50.0).unwrap();
        let m = MacAddr::from_u64;
        let samples = vec![
            SignalSample::builder(0).reading(m(1), r).build(),
            SignalSample::builder(1)
                .reading(m(1), r)
                .reading(m(2), r)
                .build(),
            SignalSample::builder(2).reading(m(2), r).build(),
        ];
        BipartiteGraph::from_samples(&samples).unwrap()
    }

    #[test]
    fn walks_have_expected_count_and_length() {
        let g = line_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let walks = random_walks(&g, &mut rng, 3, 5, WalkStrategy::Weighted);
        assert_eq!(walks.len(), g.n_nodes() * 3);
        assert!(walks.iter().all(|w| w.len() == 6));
        // Every hop must be a real edge.
        for w in &walks {
            for pair in w.windows(2) {
                assert!(g.neighbors(pair[0]).iter().any(|&(n, _)| n == pair[1]));
            }
        }
    }

    #[test]
    fn walks_alternate_bipartition_sides() {
        let g = line_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let walks = random_walks(&g, &mut rng, 2, 4, WalkStrategy::Uniform);
        for w in &walks {
            for pair in w.windows(2) {
                let a_is_sample = pair[0] < g.n_samples();
                let b_is_sample = pair[1] < g.n_samples();
                assert_ne!(a_is_sample, b_is_sample, "bipartite walks must alternate");
            }
        }
    }

    #[test]
    fn isolated_node_walk_is_singleton() {
        let s0 = SignalSample::builder(0).build();
        let g = BipartiteGraph::from_samples(&[s0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let walks = random_walks(&g, &mut rng, 2, 5, WalkStrategy::Weighted);
        assert!(walks.iter().all(|w| w == &vec![0]));
    }

    #[test]
    fn cooccurrence_respects_window() {
        let walks = vec![vec![0, 1, 2, 3]];
        let pairs = cooccurrence_pairs(&walks, 1);
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 3)]);
        let pairs2 = cooccurrence_pairs(&walks, 3);
        assert_eq!(pairs2.len(), 6);
    }

    #[test]
    fn cooccurrence_skips_self_pairs() {
        let walks = vec![vec![0, 1, 0]];
        let pairs = cooccurrence_pairs(&walks, 5);
        assert!(pairs.iter().all(|&(a, b)| a != b));
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn weighted_walks_prefer_strong_edges() {
        // s0 hears m1 strongly (-40) and m2 weakly (-90).
        let r_strong = Rssi::new(-40.0).unwrap();
        let r_weak = Rssi::new(-90.0).unwrap();
        let samples = vec![SignalSample::builder(0)
            .reading(MacAddr::from_u64(1), r_strong)
            .reading(MacAddr::from_u64(2), r_weak)
            .build()];
        let g = BipartiteGraph::from_samples(&samples).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let walks = random_walks(&g, &mut rng, 3000, 1, WalkStrategy::Weighted);
        let from_s0: Vec<&Vec<usize>> = walks.iter().filter(|w| w[0] == 0).collect();
        let strong_node = g.mac_node(g.mac_id(MacAddr::from_u64(1)).unwrap());
        let frac =
            from_s0.iter().filter(|w| w[1] == strong_node).count() as f64 / from_s0.len() as f64;
        // Weight ratio 80:30 -> ~0.727
        assert!((frac - 80.0 / 110.0).abs() < 0.05, "frac={frac}");
    }
}
