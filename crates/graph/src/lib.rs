//! Weighted bipartite graphs over crowdsourced RF signals.
//!
//! Implements §III-A of the FIS-ONE paper: crowdsourced RF signal samples
//! and the MAC addresses they hear form a weighted bipartite graph
//! `G = (U, V, E)` with edge weights `w_uv = f(RSS_uv) = RSS_uv + c`.
//! This representation sidesteps the missing-value problem of the dense
//! matrix encoding (Figure 3).
//!
//! Provided here:
//!
//! - [`BipartiteGraph`]: interned MAC/sample nodes in a unified index space
//!   with adjacency lists carrying positive weights.
//! - [`alias::AliasTable`]: Walker's O(1) weighted sampler, used both for
//!   RSS-proportional neighbor sampling and the `d^{3/4}` negative-sampling
//!   distribution.
//! - [`walk`]: weighted/uniform random walks of length 5 and co-occurrence
//!   pair extraction for the unsupervised loss.
//! - [`neg`]: the negative sampler `Pr(z) ∝ d_z^{3/4}`.
//!
//! # Example
//!
//! ```
//! use fis_graph::BipartiteGraph;
//! use fis_types::{MacAddr, Rssi, SignalSample};
//!
//! let s = SignalSample::builder(0)
//!     .reading(MacAddr::from_u64(1), Rssi::new(-60.0)?)
//!     .build();
//! let g = BipartiteGraph::from_samples(&[s])?;
//! assert_eq!(g.n_samples(), 1);
//! assert_eq!(g.n_macs(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod alias;
pub mod bipartite;
pub mod neg;
pub mod walk;

pub use alias::AliasTable;
pub use bipartite::{BipartiteGraph, GraphError, NodeKind};
pub use neg::NegativeSampler;
pub use walk::{cooccurrence_pairs, random_walks, WalkStrategy};
