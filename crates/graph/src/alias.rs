//! Walker's alias method for O(1) sampling from a discrete distribution.

use rand::Rng;

/// Preprocessed discrete distribution supporting O(1) weighted draws.
///
/// Construction is O(n); each draw costs one uniform index plus one
/// Bernoulli test. Used for RSS-proportional neighbor sampling and the
/// degree-biased negative sampler, both of which draw millions of times per
/// training run.
///
/// # Example
///
/// ```
/// use fis_graph::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[1.0, 3.0])?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let draw = table.sample(&mut rng);
/// assert!(draw < 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds an alias table from non-negative weights.
    ///
    /// # Errors
    ///
    /// Returns an error message if `weights` is empty, contains a negative
    /// or non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("alias table needs at least one weight".to_owned());
        }
        if let Some(w) = weights.iter().find(|w| !w.is_finite() || **w < 0.0) {
            return Err(format!("invalid weight {w}"));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err("weights sum to zero".to_owned());
        }
        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        // Scaled probabilities: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let freq = empirical(&weights, 200_000, 1);
        let total: f64 = weights.iter().sum();
        for (f, w) in freq.iter().zip(weights.iter()) {
            let expect = w / total;
            assert!((f - expect).abs() < 0.01, "freq={f} expect={expect}");
        }
    }

    #[test]
    fn zero_weight_never_drawn() {
        let freq = empirical(&[0.0, 1.0, 0.0], 50_000, 2);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert_eq!(freq[1], 1.0);
    }

    #[test]
    fn single_category_always_drawn() {
        let freq = empirical(&[42.0], 100, 3);
        assert_eq!(freq[0], 1.0);
    }

    #[test]
    fn heavily_skewed_distribution() {
        let freq = empirical(&[1.0, 9999.0], 100_000, 4);
        assert!(freq[1] > 0.999, "freq={freq:?}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[-1.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
    }
}
