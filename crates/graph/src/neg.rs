//! Degree-biased negative sampling.
//!
//! The unsupervised loss draws τ negative nodes per positive pair from
//! `Pr(z) ∝ d_z^{3/4}` (§III-B, following word2vec/LINE). Isolated nodes
//! (degree 0) are never drawn.

use rand::Rng;

use crate::alias::AliasTable;
use crate::bipartite::BipartiteGraph;

/// Sampler over graph nodes with probability proportional to `degree^{3/4}`.
///
/// # Example
///
/// ```
/// use fis_graph::{BipartiteGraph, NegativeSampler};
/// use fis_types::{MacAddr, Rssi, SignalSample};
/// use rand::SeedableRng;
///
/// let s = SignalSample::builder(0)
///     .reading(MacAddr::from_u64(1), Rssi::new(-60.0)?)
///     .build();
/// let g = BipartiteGraph::from_samples(&[s])?;
/// let sampler = NegativeSampler::new(&g)?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// assert!(sampler.sample(&mut rng) < g.n_nodes());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    table: AliasTable,
}

impl NegativeSampler {
    /// Builds the sampler from a graph's degree sequence.
    ///
    /// # Errors
    ///
    /// Returns an error if every node is isolated (no edges at all).
    pub fn new(graph: &BipartiteGraph) -> Result<Self, String> {
        let weights: Vec<f64> = graph
            .degrees()
            .iter()
            .map(|&d| (d as f64).powf(0.75))
            .collect();
        let table = AliasTable::new(&weights)?;
        Ok(Self { table })
    }

    /// Draws one node index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.table.sample(rng)
    }

    /// Draws `tau` node indices, excluding any that appear in `forbidden`
    /// (retrying a bounded number of times before accepting a collision, so
    /// the call always terminates even on tiny graphs).
    pub fn sample_excluding<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        tau: usize,
        forbidden: &[usize],
    ) -> Vec<usize> {
        let mut out = Vec::with_capacity(tau);
        self.sample_excluding_into(rng, tau, forbidden, &mut out);
        out
    }

    /// [`NegativeSampler::sample_excluding`] appending into a caller-owned
    /// buffer, so hot loops can reuse one allocation across calls. The
    /// draw sequence is identical to the allocating variant.
    pub fn sample_excluding_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        tau: usize,
        forbidden: &[usize],
        out: &mut Vec<usize>,
    ) {
        out.reserve(tau);
        for _ in 0..tau {
            let mut pick = None;
            for _ in 0..16 {
                let z = self.table.sample(rng);
                if !forbidden.contains(&z) {
                    pick = Some(z);
                    break;
                }
            }
            out.push(pick.unwrap_or_else(|| self.table.sample(rng)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::{MacAddr, Rssi, SignalSample};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn star_graph() -> BipartiteGraph {
        // m1 heard by 4 samples; m2 heard by 1.
        let r = Rssi::new(-50.0).unwrap();
        let samples: Vec<SignalSample> = (0..4)
            .map(|i| {
                let mut b = SignalSample::builder(i).reading(MacAddr::from_u64(1), r);
                if i == 0 {
                    b = b.reading(MacAddr::from_u64(2), r);
                }
                b.build()
            })
            .collect();
        BipartiteGraph::from_samples(&samples).unwrap()
    }

    #[test]
    fn hub_drawn_more_often_with_sublinear_bias() {
        let g = star_graph();
        let sampler = NegativeSampler::new(&g).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 100_000;
        let mut counts = vec![0usize; g.n_nodes()];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let hub = g.mac_node(0); // degree 4
        let leaf = g.mac_node(1); // degree 1
        let ratio = counts[hub] as f64 / counts[leaf] as f64;
        // 4^{3/4} / 1 = 2.828..., well below the linear ratio of 4.
        assert!((ratio - 4f64.powf(0.75)).abs() < 0.3, "ratio={ratio}");
    }

    #[test]
    fn isolated_nodes_never_sampled() {
        let r = Rssi::new(-50.0).unwrap();
        let samples = vec![
            SignalSample::builder(0)
                .reading(MacAddr::from_u64(1), r)
                .build(),
            SignalSample::builder(1).build(), // isolated
        ];
        let g = BipartiteGraph::from_samples(&samples).unwrap();
        let sampler = NegativeSampler::new(&g).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert_ne!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    fn all_isolated_is_an_error() {
        let samples = vec![SignalSample::builder(0).build()];
        let g = BipartiteGraph::from_samples(&samples).unwrap();
        assert!(NegativeSampler::new(&g).is_err());
    }

    #[test]
    fn sample_excluding_avoids_forbidden() {
        let g = star_graph();
        let sampler = NegativeSampler::new(&g).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hub = g.mac_node(0);
        for _ in 0..100 {
            let draws = sampler.sample_excluding(&mut rng, 4, &[hub]);
            assert_eq!(draws.len(), 4);
            // hub is extremely likely; exclusion must keep it out.
            assert!(draws.iter().all(|&z| z != hub));
        }
    }
}
