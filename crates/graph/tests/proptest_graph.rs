//! Property-based tests for the bipartite graph layer.

use fis_graph::{cooccurrence_pairs, random_walks, AliasTable, BipartiteGraph, WalkStrategy};
use fis_types::{MacAddr, Rssi, SignalSample};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random sample set: each sample hears a nonempty subset of `macs` MACs.
fn sample_set(max_samples: usize, macs: u64) -> impl Strategy<Value = Vec<SignalSample>> {
    proptest::collection::vec(
        proptest::collection::vec((1..=macs, -110.0..-30.0f64), 1..8),
        1..max_samples,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, readings)| {
                SignalSample::builder(i as u32)
                    .readings(
                        readings
                            .into_iter()
                            .map(|(m, r)| (MacAddr::from_u64(m), Rssi::new(r).unwrap())),
                    )
                    .build()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graph_adjacency_is_symmetric_with_positive_weights(samples in sample_set(12, 6)) {
        let g = BipartiteGraph::from_samples(&samples).unwrap();
        prop_assert_eq!(g.n_samples(), samples.len());
        for u in 0..g.n_nodes() {
            for &(v, w) in g.neighbors(u) {
                prop_assert!(w > 0.0, "non-positive weight {w}");
                prop_assert!(g.neighbors(v).iter().any(|&(b, bw)| b == u && bw == w));
            }
        }
    }

    #[test]
    fn edge_count_matches_total_readings(samples in sample_set(12, 6)) {
        let g = BipartiteGraph::from_samples(&samples).unwrap();
        let readings: usize = samples.iter().map(SignalSample::len).sum();
        prop_assert_eq!(g.n_edges(), readings);
    }

    #[test]
    fn walks_traverse_only_real_edges(samples in sample_set(10, 5), seed in 0u64..100) {
        let g = BipartiteGraph::from_samples(&samples).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let walks = random_walks(&g, &mut rng, 2, 5, WalkStrategy::Weighted);
        for walk in &walks {
            for hop in walk.windows(2) {
                prop_assert!(g.neighbors(hop[0]).iter().any(|&(v, _)| v == hop[1]));
            }
        }
    }

    #[test]
    fn cooccurrence_pairs_are_within_window(walks_len in 2usize..8, window in 1usize..6) {
        let walk: Vec<usize> = (0..walks_len).collect();
        let pairs = cooccurrence_pairs(std::slice::from_ref(&walk), window);
        for (a, b) in pairs {
            let pa = walk.iter().position(|&x| x == a).unwrap();
            let pb = walk.iter().position(|&x| x == b).unwrap();
            prop_assert!(pb > pa && pb - pa <= window);
        }
    }

    #[test]
    fn components_partition_the_graph(samples in sample_set(12, 6)) {
        let g = BipartiteGraph::from_samples(&samples).unwrap();
        let comps = g.components();
        prop_assert_eq!(comps.len(), g.n_nodes());
        // Connected nodes share a component id.
        for u in 0..g.n_nodes() {
            for &(v, _) in g.neighbors(u) {
                prop_assert_eq!(comps[u], comps[v]);
            }
        }
    }

    #[test]
    fn alias_table_distribution_converges(weights in proptest::collection::vec(0.1..10.0f64, 2..6)) {
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let draws = 40_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (c, w) in counts.iter().zip(weights.iter()) {
            let observed = *c as f64 / draws as f64;
            let expected = w / total;
            prop_assert!((observed - expected).abs() < 0.03,
                "observed {observed:.3} vs expected {expected:.3}");
        }
    }
}
