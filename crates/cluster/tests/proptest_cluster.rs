//! Property-based tests for the clustering algorithms.

use fis_cluster::{average_linkage, cluster_sizes, kmeans, relabel_compact, KMeansConfig};
use proptest::prelude::*;

fn points(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-10.0..10.0f64, d), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hierarchical_yields_exactly_k_compact_clusters(pts in points(12, 3), k in 1usize..6) {
        let k = k.min(pts.len());
        let labels = average_linkage(&pts, k).unwrap();
        prop_assert_eq!(labels.len(), pts.len());
        let sizes = cluster_sizes(&labels);
        prop_assert_eq!(sizes.len(), k);
        prop_assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn hierarchical_is_permutation_stable_for_duplicates(pts in points(6, 2)) {
        // Appending a duplicate of point 0 must place it with point 0.
        let mut with_dup = pts.clone();
        with_dup.push(pts[0].clone());
        let labels = average_linkage(&with_dup, 2.min(with_dup.len())).unwrap();
        prop_assert_eq!(labels[0], labels[with_dup.len() - 1]);
    }

    #[test]
    fn kmeans_labels_compact_and_complete(pts in points(15, 2), k in 1usize..5) {
        let k = k.min(pts.len());
        let labels = kmeans(&pts, &KMeansConfig::new(k).seed(7)).unwrap();
        prop_assert_eq!(labels.len(), pts.len());
        let max = labels.iter().copied().max().unwrap_or(0);
        for l in 0..=max {
            prop_assert!(labels.contains(&l), "label {l} skipped");
        }
    }

    #[test]
    fn kmeans_respects_well_separated_blobs(offset in 50.0..200.0f64, per in 3usize..8) {
        let mut pts = Vec::new();
        for i in 0..per {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![offset + i as f64 * 0.01, 0.0]);
        }
        let labels = kmeans(&pts, &KMeansConfig::new(2).seed(3)).unwrap();
        for i in (0..pts.len()).step_by(2) {
            prop_assert_eq!(labels[i], labels[0]);
            prop_assert_eq!(labels[i + 1], labels[1]);
        }
        prop_assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn hierarchical_respects_well_separated_blobs(offset in 50.0..200.0f64, per in 3usize..8) {
        let mut pts = Vec::new();
        for i in 0..per {
            pts.push(vec![i as f64 * 0.01]);
            pts.push(vec![offset + i as f64 * 0.01]);
        }
        let labels = average_linkage(&pts, 2).unwrap();
        for i in (0..pts.len()).step_by(2) {
            prop_assert_eq!(labels[i], labels[0]);
            prop_assert_eq!(labels[i + 1], labels[1]);
        }
        prop_assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn relabel_compact_is_idempotent(raw in proptest::collection::vec(0usize..20, 0..30)) {
        let once = relabel_compact(&raw);
        let twice = relabel_compact(&once);
        prop_assert_eq!(&once, &twice);
        // Same partition structure.
        for i in 0..raw.len() {
            for j in 0..raw.len() {
                prop_assert_eq!(raw[i] == raw[j], once[i] == once[j]);
            }
        }
    }
}
