//! Partition utilities shared by the clustering algorithms.

/// Compacts arbitrary cluster labels to `0..k`, preserving first-appearance
/// order.
///
/// # Example
///
/// ```
/// let compact = fis_cluster::relabel_compact(&[7, 7, 2, 9, 2]);
/// assert_eq!(compact, vec![0, 0, 1, 2, 1]);
/// ```
pub fn relabel_compact(labels: &[usize]) -> Vec<usize> {
    let mut map: Vec<(usize, usize)> = Vec::new();
    labels
        .iter()
        .map(|&l| {
            if let Some(&(_, new)) = map.iter().find(|&&(old, _)| old == l) {
                new
            } else {
                let new = map.len();
                map.push((l, new));
                new
            }
        })
        .collect()
}

/// Groups item indices by cluster label. Labels must be compact (`0..k`).
///
/// # Panics
///
/// Panics if a label is `>= k` where `k = max(labels) + 1` inferred from
/// the data (i.e. never panics on compact labels).
pub fn cluster_members(labels: &[usize]) -> Vec<Vec<usize>> {
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut members = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        members[l].push(i);
    }
    members
}

/// Sizes of each cluster under compact labels.
pub fn cluster_sizes(labels: &[usize]) -> Vec<usize> {
    cluster_members(labels).iter().map(Vec::len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_preserves_structure() {
        let labels = [42, 42, 7, 42, 9];
        let compact = relabel_compact(&labels);
        assert_eq!(compact, vec![0, 0, 1, 0, 2]);
    }

    #[test]
    fn relabel_empty() {
        assert!(relabel_compact(&[]).is_empty());
    }

    #[test]
    fn members_and_sizes() {
        let labels = [0, 1, 0, 2, 1];
        let members = cluster_members(&labels);
        assert_eq!(members, vec![vec![0, 2], vec![1, 4], vec![3]]);
        assert_eq!(cluster_sizes(&labels), vec![2, 2, 1]);
    }

    #[test]
    fn members_of_empty() {
        assert!(cluster_members(&[]).is_empty());
    }
}
