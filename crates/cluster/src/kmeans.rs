//! K-means clustering (the Figure 8(c,d) ablation).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// Conventional defaults: 100 iterations, tolerance `1e-6`.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 100,
            tol: 1e-6,
            seed: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Lloyd's algorithm with k-means++ initialization.
///
/// Returns one label per point, compacted to `0..k'` where `k' <= k`
/// (clusters can die when duplicates collapse).
///
/// # Errors
///
/// Returns an error under the same conditions as
/// [`crate::hierarchical::average_linkage`]: empty input, inconsistent
/// dimensions, `k == 0`, or `k > n`.
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Result<Vec<usize>, String> {
    let k = config.k;
    if points.is_empty() {
        return Err("cannot cluster zero points".to_owned());
    }
    if k == 0 {
        return Err("k must be at least 1".to_owned());
    }
    if k > points.len() {
        return Err(format!("k = {k} exceeds number of points {}", points.len()));
    }
    let d = points[0].len();
    if d == 0 || points.iter().any(|p| p.len() != d) {
        return Err("points must share a positive dimension".to_owned());
    }

    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut centroids = plus_plus_init(points, k, &mut rng);
    let mut labels = vec![0usize; points.len()];

    for _ in 0..config.max_iters {
        // Assignment step, parallel over points: each label depends only
        // on its own point and the shared centroids, so the result is
        // identical for any thread budget.
        labels = fis_parallel::par_map(points, PAR_MIN_POINTS, |_, p| nearest(p, &centroids).0);
        // Update step.
        let mut sums = vec![vec![0.0; d]; k];
        let mut counts = vec![0usize; k];
        for (p, &l) in points.iter().zip(labels.iter()) {
            counts[l] += 1;
            for (s, &x) in sums[l].iter_mut().zip(p.iter()) {
                *s += x;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Dead cluster: re-seed at the point farthest from its
                // centroid to keep k alive when possible.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = dist_sq(a, &centroids[labels_nearest(a, &centroids)]);
                        let db = dist_sq(b, &centroids[labels_nearest(b, &centroids)]);
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty points");
                centroids[c] = points[far].clone();
                continue;
            }
            let mut new_c = sums[c].clone();
            for s in &mut new_c {
                *s /= counts[c] as f64;
            }
            movement += dist_sq(&centroids[c], &new_c).sqrt();
            centroids[c] = new_c;
        }
        if movement < config.tol {
            break;
        }
    }
    labels = fis_parallel::par_map(points, PAR_MIN_POINTS, |_, p| nearest(p, &centroids).0);
    Ok(crate::partition::relabel_compact(&labels))
}

/// Minimum points per worker before the assignment step fans out.
const PAR_MIN_POINTS: usize = 256;

fn labels_nearest(p: &[f64], centroids: &[Vec<f64>]) -> usize {
    nearest(p, centroids).0
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist_sq(p, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn plus_plus_init<R: Rng + ?Sized>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let weights: Vec<f64> = points.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // All points coincide with existing centroids; any choice works.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut x = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                chosen = i;
                break;
            }
            x -= w;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_blobs() {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            pts.push(vec![10.0 + (i as f64) * 0.01, 10.0]);
        }
        let labels = kmeans(&pts, &KMeansConfig::new(2).seed(1)).unwrap();
        for i in (0..40).step_by(2) {
            assert_eq!(labels[i], labels[0]);
            assert_eq!(labels[i + 1], labels[1]);
        }
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn deterministic_for_seed() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let a = kmeans(&pts, &KMeansConfig::new(3).seed(5)).unwrap();
        let b = kmeans(&pts, &KMeansConfig::new(3).seed(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_one_puts_everything_together() {
        let pts = vec![vec![1.0], vec![2.0], vec![50.0]];
        let labels = kmeans(&pts, &KMeansConfig::new(1)).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let pts = vec![vec![3.0, 3.0]; 10];
        let labels = kmeans(&pts, &KMeansConfig::new(3).seed(2)).unwrap();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(kmeans(&[], &KMeansConfig::new(1)).is_err());
        assert!(kmeans(&[vec![1.0]], &KMeansConfig::new(0)).is_err());
        assert!(kmeans(&[vec![1.0]], &KMeansConfig::new(2)).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], &KMeansConfig::new(1)).is_err());
    }

    #[test]
    fn labels_are_compact() {
        let pts: Vec<Vec<f64>> = (0..12).map(|i| vec![(i % 4) as f64 * 100.0]).collect();
        let labels = kmeans(&pts, &KMeansConfig::new(4).seed(3)).unwrap();
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct, (0..distinct.len()).collect::<Vec<_>>());
    }
}
