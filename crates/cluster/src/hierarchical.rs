//! Agglomerative hierarchical clustering with average linkage.
//!
//! [`average_linkage`] uses the **nearest-neighbor-chain** algorithm:
//! follow nearest-neighbor links until a reciprocal pair is found, merge
//! it, and continue from the remaining chain. Average linkage (UPGMA) is
//! *reducible*, so merging a reciprocal pair never invalidates the chain
//! below it and the full dendrogram is built in O(n²) time on top of an
//! O(n²) distance matrix (computed in parallel) — versus the O(n³)
//! closest-pair rescan of [`average_linkage_naive`], which is kept as the
//! reference implementation for tests and benchmarks.
//!
//! Both implementations produce identical partitions whenever pairwise
//! dissimilarities are distinct (ties can be merged in a different order,
//! which may change the cut only when equal distances exist).

use fis_parallel::par_row_chunks_mut;

/// Average-linkage agglomerative clustering down to `k` clusters.
///
/// `points` are dense vectors of equal dimension. Returns one cluster label
/// per point, compacted to `0..k`.
///
/// # Errors
///
/// Returns an error if `points` is empty, dimensions are inconsistent,
/// `k == 0`, or `k > points.len()`.
pub fn average_linkage(points: &[Vec<f64>], k: usize) -> Result<Vec<usize>, String> {
    validate(points, k)?;
    let n = points.len();
    if k == n {
        return Ok((0..n).collect());
    }

    let mut dist = pairwise_distances(points);
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    let mut assignment: Vec<usize> = (0..n).collect();

    // Build the FULL dendrogram with the nearest-neighbor chain. The
    // chain discovers reciprocal pairs out of height order, so the
    // partition at k clusters is recovered afterwards by replaying the
    // n - k lowest merges — exactly the greedy closest-pair cut.
    let mut merges: Vec<(f64, usize, usize)> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    while merges.len() < n - 1 {
        if chain.is_empty() {
            let seed = active
                .iter()
                .position(|&a| a)
                .expect("at least one cluster remains");
            chain.push(seed);
        }
        loop {
            let c = *chain.last().expect("chain is non-empty");
            let prev = chain.len().checked_sub(2).map(|i| chain[i]);
            let nn = nearest_active(&dist, &active, n, c, prev);
            if prev == Some(nn) {
                // Reciprocal nearest neighbors: merge and resume from the
                // shortened chain.
                chain.pop();
                chain.pop();
                merges.push((dist[c * n + nn], c.min(nn), c.max(nn)));
                merge(c, nn, &mut dist, &mut active, &mut size, &mut assignment, n);
                break;
            }
            chain.push(nn);
        }
    }

    // Cut the dendrogram: apply the n - k smallest merges. For reducible
    // linkages the chain finds the same merge set as the greedy
    // algorithm, so this reproduces the greedy partition whenever merge
    // heights are distinct (stable sort fixes the order on exact ties).
    merges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite linkage heights"));
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(_, a, b) in merges.iter().take(n - k) {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        // Root at the smaller index so labels mirror fold-into-min.
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        parent[hi] = lo;
    }
    let labels: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
    Ok(crate::partition::relabel_compact(&labels))
}

/// The seed O(n³) implementation: rescan all active pairs for the global
/// closest pair before every merge.
///
/// Retained as the reference the nearest-neighbor-chain implementation is
/// validated against (they agree whenever pairwise distances are
/// distinct) and as the baseline for the `cluster` benchmarks.
///
/// # Errors
///
/// Same conditions as [`average_linkage`].
pub fn average_linkage_naive(points: &[Vec<f64>], k: usize) -> Result<Vec<usize>, String> {
    validate(points, k)?;
    let n = points.len();
    if k == n {
        return Ok((0..n).collect());
    }

    let mut dist = pairwise_distances(points);
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    let mut assignment: Vec<usize> = (0..n).collect();

    let mut clusters_left = n;
    while clusters_left > k {
        // Find the closest active pair.
        let (mut bi, mut bj, mut best) = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i * n + j];
                if d < best {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        debug_assert!(bi != usize::MAX, "no active pair found");
        merge(
            bi,
            bj,
            &mut dist,
            &mut active,
            &mut size,
            &mut assignment,
            n,
        );
        clusters_left -= 1;
    }

    Ok(crate::partition::relabel_compact(&assignment))
}

/// Full symmetric pairwise Euclidean distance matrix, rows computed in
/// parallel across the thread budget.
fn pairwise_distances(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    let mut dist = vec![0.0f64; n * n];
    // Each worker owns whole rows, recomputing the symmetric entry
    // rather than sharing writes; every element is produced by exactly
    // one worker with serial arithmetic order, so the matrix is
    // bit-identical for any thread count.
    par_row_chunks_mut(&mut dist, n, 4096 / n.max(1), |first_row, chunk| {
        for (k, row) in chunk.chunks_mut(n).enumerate() {
            let i = first_row + k;
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = euclidean(&points[i], &points[j]);
            }
        }
    });
    dist
}

/// Nearest active cluster to `c` (excluding itself), scanning in index
/// order with ties broken toward `prefer` first and then the smallest
/// index — deterministic regardless of thread budget.
fn nearest_active(
    dist: &[f64],
    active: &[bool],
    n: usize,
    c: usize,
    prefer: Option<usize>,
) -> usize {
    let row = &dist[c * n..(c + 1) * n];
    let mut nn = usize::MAX;
    let mut best = f64::INFINITY;
    if let Some(p) = prefer {
        if active[p] {
            nn = p;
            best = row[p];
        }
    }
    for (j, (&d, &a)) in row.iter().zip(active.iter()).enumerate() {
        if !a || j == c {
            continue;
        }
        if d < best || (d == best && j < nn && Some(nn) != prefer) {
            best = d;
            nn = j;
        }
    }
    debug_assert!(nn != usize::MAX, "no active neighbor found");
    nn
}

/// Merges clusters `a` and `b` into `min(a, b)` with the Lance–Williams
/// average-linkage (UPGMA) distance update:
/// `d(a∪b, l) = (|a| d(a,l) + |b| d(b,l)) / (|a| + |b|)`.
fn merge(
    a: usize,
    b: usize,
    dist: &mut [f64],
    active: &mut [bool],
    size: &mut [usize],
    assignment: &mut [usize],
    n: usize,
) {
    let (target, other) = if a < b { (a, b) } else { (b, a) };
    let (st, so) = (size[target] as f64, size[other] as f64);
    for l in 0..n {
        if !active[l] || l == target || l == other {
            continue;
        }
        let d_new = (st * dist[target * n + l] + so * dist[other * n + l]) / (st + so);
        dist[target * n + l] = d_new;
        dist[l * n + target] = d_new;
    }
    active[other] = false;
    size[target] += size[other];
    for slot in assignment.iter_mut() {
        if *slot == other {
            *slot = target;
        }
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn validate(points: &[Vec<f64>], k: usize) -> Result<(), String> {
    if points.is_empty() {
        return Err("cannot cluster zero points".to_owned());
    }
    if k == 0 {
        return Err("k must be at least 1".to_owned());
    }
    if k > points.len() {
        return Err(format!("k = {k} exceeds number of points {}", points.len()));
    }
    let d = points[0].len();
    if d == 0 {
        return Err("points must have at least one dimension".to_owned());
    }
    if let Some(bad) = points.iter().position(|p| p.len() != d) {
        return Err(format!(
            "point {bad} has dimension {} != {d}",
            points[bad].len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_blobs() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![9.0, 9.0],
            vec![9.1, 8.9],
        ];
        let labels = average_linkage(&pts, 2).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn k_equals_n_is_identity() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        assert_eq!(average_linkage(&pts, 3).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn k_one_merges_everything() {
        let pts = vec![vec![0.0], vec![1.0], vec![100.0]];
        let labels = average_linkage(&pts, 1).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn exact_cluster_count() {
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i / 10) as f64 * 10.0 + (i % 10) as f64 * 0.01])
            .collect();
        for k in 1..=5 {
            let labels = average_linkage(&pts, k).unwrap();
            let mut distinct: Vec<usize> = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len(), k);
            assert_eq!(distinct, (0..k).collect::<Vec<_>>(), "labels compact");
        }
    }

    #[test]
    fn average_linkage_resists_chaining() {
        // A chain of close points plus a separate tight pair: single
        // linkage would swallow the chain one way; average linkage splits
        // the chain from the pair cleanly.
        let pts = vec![
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![10.0],
            vec![10.1],
        ];
        let labels = average_linkage(&pts, 2).unwrap();
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn duplicate_points_cluster_together() {
        let pts = vec![vec![1.0, 1.0]; 4];
        let labels = average_linkage(&pts, 1).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn rejects_invalid_input() {
        for f in [average_linkage, average_linkage_naive] {
            assert!(f(&[], 1).is_err());
            assert!(f(&[vec![1.0]], 0).is_err());
            assert!(f(&[vec![1.0]], 2).is_err());
            assert!(f(&[vec![1.0], vec![1.0, 2.0]], 1).is_err());
            assert!(f(&[vec![]], 1).is_err());
        }
    }

    /// Deterministic pseudo-random points with effectively distinct
    /// pairwise distances (so the chain and naive dendrograms coincide).
    fn scattered_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| next() * 10.0 - 5.0).collect())
            .collect()
    }

    #[test]
    fn chain_matches_naive_reference() {
        for (n, d, seed) in [(24usize, 2usize, 1u64), (40, 3, 2), (65, 4, 3)] {
            let pts = scattered_points(n, d, seed);
            for k in [1usize, 2, 3, 5, 8] {
                let fast = average_linkage(&pts, k).unwrap();
                let slow = average_linkage_naive(&pts, k).unwrap();
                assert_eq!(fast, slow, "n={n} d={d} seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn chain_deterministic_across_thread_budgets() {
        let pts = scattered_points(80, 3, 7);
        fis_parallel::set_thread_budget(1);
        let serial = average_linkage(&pts, 4).unwrap();
        fis_parallel::set_thread_budget(4);
        let parallel = average_linkage(&pts, 4).unwrap();
        fis_parallel::set_thread_budget(0);
        assert_eq!(serial, parallel);
    }
}
