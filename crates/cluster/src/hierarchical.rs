//! Agglomerative hierarchical clustering with average linkage.
//!
//! Implemented with the Lance–Williams update on a full distance matrix:
//! each merge recomputes distances to the merged cluster in O(n), and the
//! next closest pair is found over active clusters. Complexity is O(n²)
//! memory and O(n³) worst-case time, which is comfortable at the corpus
//! sizes used here (hundreds to a few thousand samples per building);
//! a nearest-neighbor cache brings typical time close to O(n²).

/// Average-linkage agglomerative clustering down to `k` clusters.
///
/// `points` are dense vectors of equal dimension. Returns one cluster label
/// per point, compacted to `0..k`.
///
/// # Errors
///
/// Returns an error if `points` is empty, dimensions are inconsistent,
/// `k == 0`, or `k > points.len()`.
pub fn average_linkage(points: &[Vec<f64>], k: usize) -> Result<Vec<usize>, String> {
    validate(points, k)?;
    let n = points.len();
    if k == n {
        return Ok((0..n).collect());
    }

    // Flat upper-triangular-ish full matrix of cluster distances. Inactive
    // clusters keep stale entries that are simply never read.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = euclidean(&points[i], &points[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<usize> = vec![1; n];
    // Union-find style assignment: every point starts as its own cluster;
    // merges fold cluster j into cluster i.
    let mut assignment: Vec<usize> = (0..n).collect();

    let mut clusters_left = n;
    while clusters_left > k {
        // Find the closest active pair.
        let (mut bi, mut bj, mut best) = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i * n + j];
                if d < best {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        debug_assert!(bi != usize::MAX, "no active pair found");

        // Lance-Williams for average linkage (UPGMA):
        // d(i∪j, l) = (|i| d(i,l) + |j| d(j,l)) / (|i| + |j|)
        let (si, sj) = (size[bi] as f64, size[bj] as f64);
        for l in 0..n {
            if !active[l] || l == bi || l == bj {
                continue;
            }
            let d_new = (si * dist[bi * n + l] + sj * dist[bj * n + l]) / (si + sj);
            dist[bi * n + l] = d_new;
            dist[l * n + bi] = d_new;
        }
        active[bj] = false;
        size[bi] += size[bj];
        for a in assignment.iter_mut() {
            if *a == bj {
                *a = bi;
            }
        }
        clusters_left -= 1;
    }

    Ok(crate::partition::relabel_compact(&assignment))
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn validate(points: &[Vec<f64>], k: usize) -> Result<(), String> {
    if points.is_empty() {
        return Err("cannot cluster zero points".to_owned());
    }
    if k == 0 {
        return Err("k must be at least 1".to_owned());
    }
    if k > points.len() {
        return Err(format!("k = {k} exceeds number of points {}", points.len()));
    }
    let d = points[0].len();
    if d == 0 {
        return Err("points must have at least one dimension".to_owned());
    }
    if let Some(bad) = points.iter().position(|p| p.len() != d) {
        return Err(format!("point {bad} has dimension {} != {d}", points[bad].len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_obvious_blobs() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![9.0, 9.0],
            vec![9.1, 8.9],
        ];
        let labels = average_linkage(&pts, 2).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn k_equals_n_is_identity() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        assert_eq!(average_linkage(&pts, 3).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn k_one_merges_everything() {
        let pts = vec![vec![0.0], vec![1.0], vec![100.0]];
        let labels = average_linkage(&pts, 1).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn exact_cluster_count() {
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![(i / 10) as f64 * 10.0 + (i % 10) as f64 * 0.01]).collect();
        for k in 1..=5 {
            let labels = average_linkage(&pts, k).unwrap();
            let mut distinct: Vec<usize> = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len(), k);
            assert_eq!(distinct, (0..k).collect::<Vec<_>>(), "labels compact");
        }
    }

    #[test]
    fn average_linkage_resists_chaining() {
        // A chain of close points plus a separate tight pair: single
        // linkage would swallow the chain one way; average linkage splits
        // the chain from the pair cleanly.
        let pts = vec![
            vec![0.0],
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![10.0],
            vec![10.1],
        ];
        let labels = average_linkage(&pts, 2).unwrap();
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn duplicate_points_cluster_together() {
        let pts = vec![vec![1.0, 1.0]; 4];
        let labels = average_linkage(&pts, 1).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(average_linkage(&[], 1).is_err());
        assert!(average_linkage(&[vec![1.0]], 0).is_err());
        assert!(average_linkage(&[vec![1.0]], 2).is_err());
        assert!(average_linkage(&[vec![1.0], vec![1.0, 2.0]], 1).is_err());
        assert!(average_linkage(&[vec![]], 1).is_err());
    }
}
