//! Clustering algorithms over embedding vectors.
//!
//! FIS-ONE groups RF-GNN signal-sample embeddings into as many clusters as
//! the building has floors (§IV-A) using proximity-based agglomerative
//! clustering with the *average* inter-cluster distance
//! `d(C_i, C_j) = (1/|C_i||C_j|) Σ Σ ‖r − r'‖₂` — i.e. average linkage.
//! The K-means ablation of Figure 8(c,d) is provided alongside.
//!
//! # Example
//!
//! ```
//! use fis_cluster::hierarchical::average_linkage;
//!
//! // Two obvious groups on the line.
//! let points = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
//! let labels = average_linkage(&points, 2)?;
//! assert_eq!(labels[0], labels[1]);
//! assert_eq!(labels[2], labels[3]);
//! assert_ne!(labels[0], labels[2]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod hierarchical;
pub mod kmeans;
pub mod partition;

pub use hierarchical::{average_linkage, average_linkage_naive};
pub use kmeans::{kmeans, KMeansConfig};
pub use partition::{cluster_members, cluster_sizes, relabel_compact};
