//! Held–Karp exact dynamic programming.

use crate::cost::CostMatrix;
use crate::PathSolution;

/// Hard cap on exact instances: `O(N² 2^N)` with `N = 24` is ~400M DP
/// cells, beyond which the approximation must be used.
pub const MAX_EXACT_NODES: usize = 24;

/// Exact shortest Hamiltonian path starting at `start`, visiting every node
/// exactly once (free final endpoint).
///
/// This is the paper's Theorem 1 formulation: a TSP on the complete graph
/// where all edges *back to* the start cost zero, which makes the optimal
/// tour equal to the optimal Hamiltonian path from `start`.
///
/// # Errors
///
/// Returns an error if `start` is out of bounds or the instance exceeds
/// [`MAX_EXACT_NODES`].
pub fn held_karp_fixed_start(cost: &CostMatrix, start: usize) -> Result<PathSolution, String> {
    let n = cost.len();
    if start >= n {
        return Err(format!("start {start} out of bounds for {n} nodes"));
    }
    if n > MAX_EXACT_NODES {
        return Err(format!(
            "{n} nodes exceeds the exact-solver cap of {MAX_EXACT_NODES}; use 2-opt"
        ));
    }
    if n == 1 {
        return Ok(PathSolution {
            order: vec![start],
            cost: 0.0,
        });
    }

    // Re-index so that `start` is node 0; others are 1..n.
    let others: Vec<usize> = (0..n).filter(|&i| i != start).collect();
    let m = others.len();
    let full: usize = (1 << m) - 1;

    // dp[mask][j] = min cost of a path from start visiting exactly the
    // others in `mask`, ending at others[j].
    let mut dp = vec![vec![f64::INFINITY; m]; 1 << m];
    let mut parent = vec![vec![usize::MAX; m]; 1 << m];
    for j in 0..m {
        dp[1 << j][j] = cost.get(start, others[j]);
    }
    for mask in 1..=full {
        for j in 0..m {
            if mask & (1 << j) == 0 || dp[mask][j].is_infinite() {
                continue;
            }
            let base = dp[mask][j];
            for nxt in 0..m {
                if mask & (1 << nxt) != 0 {
                    continue;
                }
                let nmask = mask | (1 << nxt);
                let cand = base + cost.get(others[j], others[nxt]);
                if cand < dp[nmask][nxt] {
                    dp[nmask][nxt] = cand;
                    parent[nmask][nxt] = j;
                }
            }
        }
    }
    // Free endpoint: best over all terminal nodes.
    let (mut best_j, mut best) = (0usize, f64::INFINITY);
    for (j, &cost_j) in dp[full].iter().enumerate() {
        if cost_j < best {
            best = cost_j;
            best_j = j;
        }
    }
    // Reconstruct.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    let mut j = best_j;
    while j != usize::MAX {
        order.push(others[j]);
        let pj = parent[mask][j];
        mask &= !(1 << j);
        j = pj;
    }
    order.push(start);
    order.reverse();
    debug_assert_eq!(order.len(), n);
    Ok(PathSolution { order, cost: best })
}

/// Exact shortest Hamiltonian path with *both* endpoints free: solves the
/// fixed-start problem from every start and keeps the cheapest.
///
/// Used by the §VI extension, where the labeled sample's floor is unknown
/// so every ordering must be considered.
///
/// # Errors
///
/// Same conditions as [`held_karp_fixed_start`].
pub fn held_karp_free(cost: &CostMatrix) -> Result<PathSolution, String> {
    let mut best: Option<PathSolution> = None;
    for start in 0..cost.len() {
        let sol = held_karp_fixed_start(cost, start)?;
        if best.as_ref().is_none_or(|b| sol.cost < b.cost) {
            best = Some(sol);
        }
    }
    Ok(best.expect("at least one start"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &CostMatrix, start: usize) -> PathSolution {
        let n = cost.len();
        let mut others: Vec<usize> = (0..n).filter(|&i| i != start).collect();
        let mut best = PathSolution {
            order: vec![],
            cost: f64::INFINITY,
        };
        permute(&mut others, 0, &mut |perm| {
            let mut order = vec![start];
            order.extend_from_slice(perm);
            let c: f64 = order.windows(2).map(|w| cost.get(w[0], w[1])).sum();
            if c < best.cost {
                best = PathSolution { order, cost: c };
            }
        });
        best
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    fn line_matrix(n: usize) -> CostMatrix {
        CostMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs()).unwrap()
    }

    #[test]
    fn line_graph_orders_sequentially() {
        let sol = held_karp_fixed_start(&line_matrix(5), 0).unwrap();
        assert_eq!(sol.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(sol.cost, 4.0);
    }

    #[test]
    fn start_in_middle_still_valid_path() {
        let sol = held_karp_fixed_start(&line_matrix(5), 2).unwrap();
        assert_eq!(sol.order[0], 2);
        assert_eq!(sol.order.len(), 5);
        // Optimal from the middle of a line: go to the near end first.
        assert_eq!(sol.cost, brute_force(&line_matrix(5), 2).cost);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use fis_linalg_free_rng::SplitMix;
        let mut rng = SplitMix::new(7);
        for trial in 0..20 {
            let n = 3 + (trial % 5);
            let mut data = vec![0.0; n * n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let c = rng.next_f64() * 10.0;
                    data[i * n + j] = c;
                    data[j * n + i] = c;
                }
            }
            let cost = CostMatrix::from_vec(n, data).unwrap();
            for start in 0..n {
                let hk = held_karp_fixed_start(&cost, start).unwrap();
                let bf = brute_force(&cost, start);
                assert!(
                    (hk.cost - bf.cost).abs() < 1e-9,
                    "n={n} start={start}: hk={} bf={}",
                    hk.cost,
                    bf.cost
                );
                assert!((hk.recompute_cost(&cost) - hk.cost).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn free_start_finds_global_best() {
        // Line graph: best free path starts at an end.
        let sol = held_karp_free(&line_matrix(6)).unwrap();
        assert_eq!(sol.cost, 5.0);
        assert!(sol.order == vec![0, 1, 2, 3, 4, 5] || sol.order == vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn single_node() {
        let m = CostMatrix::from_fn(1, |_, _| 0.0).unwrap();
        let sol = held_karp_fixed_start(&m, 0).unwrap();
        assert_eq!(sol.order, vec![0]);
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn rejects_bad_start_and_oversized() {
        let m = line_matrix(3);
        assert!(held_karp_fixed_start(&m, 3).is_err());
        let big = CostMatrix::from_fn(25, |i, j| if i == j { 0.0 } else { 1.0 }).unwrap();
        assert!(held_karp_fixed_start(&big, 0).is_err());
    }

    /// Order is visited exactly once per node.
    #[test]
    fn path_is_a_permutation() {
        let sol = held_karp_fixed_start(&line_matrix(7), 3).unwrap();
        let mut seen = sol.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    /// Tiny self-contained RNG so this test crate does not depend on rand.
    mod fis_linalg_free_rng {
        pub struct SplitMix {
            state: u64,
        }
        impl SplitMix {
            pub fn new(seed: u64) -> Self {
                Self { state: seed }
            }
            pub fn next_f64(&mut self) -> f64 {
                self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = self.state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
            }
        }
    }
}
