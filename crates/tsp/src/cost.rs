//! Validated cost matrices.

/// A square matrix of finite, non-negative edge costs with zero diagonal.
///
/// # Example
///
/// ```
/// use fis_tsp::CostMatrix;
///
/// let m = CostMatrix::from_fn(3, |i, j| if i == j { 0.0 } else { 1.0 })?;
/// assert_eq!(m.len(), 3);
/// assert_eq!(m.get(0, 1), 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Builds a matrix by evaluating `f(i, j)` for every pair.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`, any cost is negative or non-finite,
    /// or the diagonal is nonzero.
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> f64) -> Result<Self, String> {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = f(i, j);
            }
        }
        Self::from_vec(n, data)
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CostMatrix::from_fn`], plus a length check.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Result<Self, String> {
        if n == 0 {
            return Err("cost matrix needs at least one node".to_owned());
        }
        if data.len() != n * n {
            return Err(format!("buffer length {} != {n}x{n}", data.len()));
        }
        for i in 0..n {
            for j in 0..n {
                let c = data[i * n + j];
                if !c.is_finite() || c < 0.0 {
                    return Err(format!("invalid cost {c} at ({i},{j})"));
                }
                if i == j && c != 0.0 {
                    return Err(format!("nonzero diagonal {c} at ({i},{i})"));
                }
            }
        }
        Ok(Self { n, data })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cost of edge `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of bounds");
        self.data[i * self.n + j]
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_round_trip() {
        let m = CostMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs()).unwrap();
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 0), 2.0);
        assert!(m.is_symmetric(0.0));
    }

    #[test]
    fn rejects_bad_matrices() {
        assert!(CostMatrix::from_fn(0, |_, _| 0.0).is_err());
        assert!(CostMatrix::from_fn(2, |_, _| -1.0).is_err());
        assert!(CostMatrix::from_fn(2, |_, _| f64::NAN).is_err());
        assert!(CostMatrix::from_fn(2, |_, _| 1.0).is_err()); // diag nonzero
        assert!(CostMatrix::from_vec(2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn asymmetric_detected() {
        let m = CostMatrix::from_vec(2, vec![0.0, 1.0, 2.0, 0.0]).unwrap();
        assert!(!m.is_symmetric(0.5));
        assert!(m.is_symmetric(1.5));
    }
}
