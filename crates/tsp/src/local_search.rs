//! Nearest-neighbor construction + 2-opt improvement.
//!
//! The paper's Figure 9(c,d) ablation replaces Held–Karp with the 2-opt
//! approximation from Johnson & McGeoch and reports only ~3% degradation.
//! For an *open* path with a fixed first node, a 2-opt move reverses a
//! segment `order[i..=j]` (`i >= 1`); the cost delta only involves the two
//! boundary edges because interior edge costs are symmetric.

use crate::cost::CostMatrix;
use crate::PathSolution;

/// Approximate shortest Hamiltonian path from `start`: greedy
/// nearest-neighbor construction followed by 2-opt to a local optimum.
///
/// # Errors
///
/// Returns an error if `start` is out of bounds or the matrix is not
/// symmetric (2-opt's O(1) delta requires symmetry; the cluster-indexing
/// matrices always are).
pub fn two_opt_fixed_start(cost: &CostMatrix, start: usize) -> Result<PathSolution, String> {
    let n = cost.len();
    if start >= n {
        return Err(format!("start {start} out of bounds for {n} nodes"));
    }
    if !cost.is_symmetric(1e-9) {
        return Err("2-opt requires a symmetric cost matrix".to_owned());
    }
    let mut order = nearest_neighbor_order(cost, start);
    loop {
        let a = two_opt_improve(cost, &mut order);
        let b = or_opt_improve(cost, &mut order);
        if !a && !b {
            break;
        }
    }
    let total = order.windows(2).map(|w| cost.get(w[0], w[1])).sum();
    Ok(PathSolution { order, cost: total })
}

/// Free-endpoint 2-opt: runs [`two_opt_fixed_start`] from every start and
/// keeps the cheapest result (mirrors [`crate::held_karp_free`]).
///
/// # Errors
///
/// Same conditions as [`two_opt_fixed_start`].
pub fn two_opt_free(cost: &CostMatrix) -> Result<PathSolution, String> {
    let mut best: Option<PathSolution> = None;
    for start in 0..cost.len() {
        let sol = two_opt_fixed_start(cost, start)?;
        if best.as_ref().is_none_or(|b| sol.cost < b.cost) {
            best = Some(sol);
        }
    }
    Ok(best.expect("at least one start"))
}

fn nearest_neighbor_order(cost: &CostMatrix, start: usize) -> Vec<usize> {
    let n = cost.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    visited[start] = true;
    order.push(start);
    let mut current = start;
    for _ in 1..n {
        let mut best = (usize::MAX, f64::INFINITY);
        for (cand, &seen) in visited.iter().enumerate() {
            if !seen {
                let c = cost.get(current, cand);
                if c < best.1 {
                    best = (cand, c);
                }
            }
        }
        visited[best.0] = true;
        order.push(best.0);
        current = best.0;
    }
    order
}

/// Repeated first-improvement 2-opt passes until no move helps.
/// The first node stays pinned (it is the labeled-anchor cluster).
/// Returns whether any improvement was made.
fn two_opt_improve(cost: &CostMatrix, order: &mut [usize]) -> bool {
    let n = order.len();
    if n < 3 {
        return false;
    }
    let mut any = false;
    let mut improved = true;
    while improved {
        improved = false;
        for i in 1..n - 1 {
            for j in i + 1..n {
                // Reversing order[i..=j] changes edges (i-1, i) and (j, j+1).
                let before = cost.get(order[i - 1], order[i])
                    + if j + 1 < n {
                        cost.get(order[j], order[j + 1])
                    } else {
                        0.0
                    };
                let after = cost.get(order[i - 1], order[j])
                    + if j + 1 < n {
                        cost.get(order[i], order[j + 1])
                    } else {
                        0.0
                    };
                if after + 1e-12 < before {
                    order[i..=j].reverse();
                    improved = true;
                    any = true;
                }
            }
        }
    }
    any
}

/// Or-opt: relocates a single node to every other position (first node
/// pinned). Escapes 2-opt local optima on small instances. Returns whether
/// any improvement was made.
fn or_opt_improve(cost: &CostMatrix, order: &mut Vec<usize>) -> bool {
    let n = order.len();
    if n < 3 {
        return false;
    }
    let path_cost = |ord: &[usize]| -> f64 { ord.windows(2).map(|w| cost.get(w[0], w[1])).sum() };
    let mut any = false;
    let mut improved = true;
    while improved {
        improved = false;
        let current = path_cost(order);
        'outer: for from in 1..n {
            for to in 1..n {
                if to == from {
                    continue;
                }
                let mut cand = order.clone();
                let node = cand.remove(from);
                cand.insert(to, node);
                if path_cost(&cand) + 1e-12 < current {
                    *order = cand;
                    improved = true;
                    any = true;
                    break 'outer;
                }
            }
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::held_karp_fixed_start;

    fn line_matrix(n: usize) -> CostMatrix {
        CostMatrix::from_fn(n, |i, j| (i as f64 - j as f64).abs()).unwrap()
    }

    #[test]
    fn line_graph_exact_recovery() {
        let sol = two_opt_fixed_start(&line_matrix(8), 0).unwrap();
        assert_eq!(sol.order, (0..8).collect::<Vec<_>>());
        assert_eq!(sol.cost, 7.0);
    }

    #[test]
    fn never_worse_than_nn_and_close_to_exact() {
        // Deterministic pseudo-random symmetric instances.
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for n in 4..=10 {
            let mut data = vec![0.0; n * n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let c = next() * 5.0 + 0.1;
                    data[i * n + j] = c;
                    data[j * n + i] = c;
                }
            }
            let cost = CostMatrix::from_vec(n, data).unwrap();
            let exact = held_karp_fixed_start(&cost, 0).unwrap();
            let approx = two_opt_fixed_start(&cost, 0).unwrap();
            assert!(
                approx.cost >= exact.cost - 1e-9,
                "approx beat exact?! n={n}"
            );
            assert!(
                approx.cost <= exact.cost * 1.25 + 1e-9,
                "2-opt too weak: n={n} exact={} approx={}",
                exact.cost,
                approx.cost
            );
        }
    }

    #[test]
    fn start_is_pinned() {
        let sol = two_opt_fixed_start(&line_matrix(6), 3).unwrap();
        assert_eq!(sol.order[0], 3);
    }

    #[test]
    fn path_is_permutation() {
        let sol = two_opt_fixed_start(&line_matrix(9), 4).unwrap();
        let mut seen = sol.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn free_variant_picks_endpoint_start() {
        let sol = two_opt_free(&line_matrix(7)).unwrap();
        assert_eq!(sol.cost, 6.0);
    }

    #[test]
    fn tiny_instances() {
        let one = CostMatrix::from_fn(1, |_, _| 0.0).unwrap();
        assert_eq!(two_opt_fixed_start(&one, 0).unwrap().order, vec![0]);
        let two = line_matrix(2);
        let sol = two_opt_fixed_start(&two, 1).unwrap();
        assert_eq!(sol.order, vec![1, 0]);
        assert_eq!(sol.cost, 1.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(two_opt_fixed_start(&line_matrix(3), 5).is_err());
        let asym = CostMatrix::from_vec(2, vec![0.0, 1.0, 3.0, 0.0]).unwrap();
        assert!(two_opt_fixed_start(&asym, 0).is_err());
    }
}
