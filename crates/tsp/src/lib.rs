//! Shortest Hamiltonian path solvers for cluster indexing.
//!
//! FIS-ONE's cluster indexing problem (§IV-B, Theorem 1) reduces to finding
//! the shortest Hamiltonian path on a complete graph whose nodes are floor
//! clusters and whose edge weights are `1 − Jⁿ_ij` (one minus the adapted
//! Jaccard similarity), starting from the cluster that contains the single
//! labeled sample. The paper solves it exactly with Held–Karp dynamic
//! programming (`O(N² 2^N)`) and approximately with 2-opt local search.
//!
//! This crate provides both, plus a free-endpoint variant used by the §VI
//! extension where the labeled sample may come from any floor.
//!
//! # Example
//!
//! ```
//! use fis_tsp::{held_karp_fixed_start, two_opt_fixed_start, CostMatrix};
//!
//! // Four clusters on a line: the optimal path is 0-1-2-3.
//! let cost = CostMatrix::from_fn(4, |i, j| (i as f64 - j as f64).abs())?;
//! let exact = held_karp_fixed_start(&cost, 0)?;
//! assert_eq!(exact.order, vec![0, 1, 2, 3]);
//! let approx = two_opt_fixed_start(&cost, 0)?;
//! assert_eq!(approx.order, exact.order);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cost;
pub mod exact;
pub mod local_search;

pub use cost::CostMatrix;
pub use exact::{held_karp_fixed_start, held_karp_free};
pub use local_search::{two_opt_fixed_start, two_opt_free};

/// A Hamiltonian path and its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSolution {
    /// Visiting order over all nodes (each exactly once).
    pub order: Vec<usize>,
    /// Sum of edge costs along `order`.
    pub cost: f64,
}

impl PathSolution {
    /// Recomputes the path cost against a matrix (sanity helper).
    pub fn recompute_cost(&self, cost: &CostMatrix) -> f64 {
        self.order.windows(2).map(|w| cost.get(w[0], w[1])).sum()
    }
}
