//! Property-based tests for the Hamiltonian-path solvers.

use fis_tsp::{held_karp_fixed_start, held_karp_free, two_opt_fixed_start, CostMatrix};
use proptest::prelude::*;

/// Random symmetric cost matrix with zero diagonal.
fn cost_matrix(n: usize) -> impl Strategy<Value = CostMatrix> {
    proptest::collection::vec(0.01..10.0f64, n * (n - 1) / 2).prop_map(move |upper| {
        let mut data = vec![0.0; n * n];
        let mut it = upper.into_iter();
        for i in 0..n {
            for j in (i + 1)..n {
                let c = it.next().expect("enough entries");
                data[i * n + j] = c;
                data[j * n + i] = c;
            }
        }
        CostMatrix::from_vec(n, data).expect("valid matrix")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_path_is_permutation_starting_at_start(cost in cost_matrix(7), start in 0usize..7) {
        let sol = held_karp_fixed_start(&cost, start).unwrap();
        prop_assert_eq!(sol.order[0], start);
        let mut sorted = sol.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        prop_assert!((sol.recompute_cost(&cost) - sol.cost).abs() < 1e-9);
    }

    #[test]
    fn two_opt_never_beats_exact(cost in cost_matrix(8), start in 0usize..8) {
        let exact = held_karp_fixed_start(&cost, start).unwrap();
        let approx = two_opt_fixed_start(&cost, start).unwrap();
        prop_assert!(approx.cost >= exact.cost - 1e-9,
            "approx {} < exact {}", approx.cost, exact.cost);
    }

    #[test]
    fn free_start_no_worse_than_any_fixed_start(cost in cost_matrix(6)) {
        let free = held_karp_free(&cost).unwrap();
        for start in 0..6 {
            let fixed = held_karp_fixed_start(&cost, start).unwrap();
            prop_assert!(free.cost <= fixed.cost + 1e-9);
        }
    }

    #[test]
    fn exact_beats_random_orders(cost in cost_matrix(6), seed in 0u64..1000) {
        let exact = held_karp_fixed_start(&cost, 0).unwrap();
        // Deterministic pseudo-random permutation of 1..6 after the start.
        let mut order: Vec<usize> = (1..6).collect();
        let mut state = seed.wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut full = vec![0];
        full.extend(order);
        let cost_random: f64 = full.windows(2).map(|w| cost.get(w[0], w[1])).sum();
        prop_assert!(exact.cost <= cost_random + 1e-9);
    }

    #[test]
    fn scaling_costs_scales_solution(cost in cost_matrix(6), factor in 0.1..10.0f64) {
        let base = held_karp_fixed_start(&cost, 0).unwrap();
        let scaled_matrix = CostMatrix::from_fn(6, |i, j| cost.get(i, j) * factor).unwrap();
        let scaled = held_karp_fixed_start(&scaled_matrix, 0).unwrap();
        // Optimal order may differ under ties, but cost must scale.
        prop_assert!((scaled.cost - base.cost * factor).abs() < 1e-6);
    }

    #[test]
    fn two_opt_path_is_valid(cost in cost_matrix(9), start in 0usize..9) {
        let sol = two_opt_fixed_start(&cost, start).unwrap();
        prop_assert_eq!(sol.order[0], start);
        let mut sorted = sol.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..9).collect::<Vec<_>>());
    }
}
