//! Deterministic data parallelism on scoped threads.
//!
//! The workspace has no external thread-pool dependency, so this crate
//! provides the few fork-join primitives the hot kernels need, built on
//! [`std::thread::scope`]. Design rules that keep results **bit-identical
//! across thread counts**:
//!
//! - Work is only split across *independent output partitions* (rows of a
//!   matrix, items of a slice). Every output element is computed by
//!   exactly one worker with the same inner arithmetic order as the
//!   serial code, so floating-point results cannot change.
//! - Reductions that would reassociate floating-point additions are never
//!   parallelized here.
//! - Nested parallel regions run serially: a worker thread that calls
//!   back into this crate executes inline instead of spawning
//!   grandchildren, which bounds the total thread count by the budget.
//!
//! The global thread budget defaults to the machine's available
//! parallelism and can be pinned with the `FIS_THREADS` environment
//! variable (`FIS_THREADS=1` forces fully serial execution) or
//! programmatically with [`set_thread_budget`].

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static BUDGET_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static DEFAULT_BUDGET: OnceLock<usize> = OnceLock::new();

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn default_budget() -> usize {
    *DEFAULT_BUDGET.get_or_init(|| {
        if let Ok(v) = std::env::var("FIS_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The current thread budget (>= 1).
pub fn thread_budget() -> usize {
    match BUDGET_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_budget(),
        n => n,
    }
}

/// The raw override value last passed to [`set_thread_budget`] (`0`
/// when the default budget is in effect). Lets callers save and restore
/// the exact override state.
pub fn thread_budget_override() -> usize {
    BUDGET_OVERRIDE.load(Ordering::Relaxed)
}

/// Overrides the thread budget process-wide; `0` restores the default
/// (`FIS_THREADS` or the machine's available parallelism).
pub fn set_thread_budget(threads: usize) {
    BUDGET_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Whether the calling thread is already inside a parallel region (in
/// which case further parallel calls run inline).
pub fn in_parallel_region() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Number of worker threads a region over `items` work units would use.
fn workers_for(items: usize, max_threads: usize) -> usize {
    if in_parallel_region() {
        return 1;
    }
    thread_budget().min(max_threads.max(1)).min(items).max(1)
}

/// Splits `0..len` into `parts` contiguous ranges of near-equal size.
///
/// Deterministic: chunk boundaries depend only on `len` and `parts`.
pub fn partition(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Runs `f(start_index, chunk)` over disjoint chunks of `out`,
/// in parallel when the budget and chunk count allow.
///
/// Each element of `out` is written by exactly one worker, so results
/// are identical to the serial order for any thread count.
pub fn par_chunks_mut<T: Send, F>(out: &mut [T], min_items_per_thread: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = out.len();
    let max_threads = len / min_items_per_thread.max(1);
    let workers = workers_for(len, max_threads);
    if workers <= 1 {
        f(0, out);
        return;
    }
    let ranges = partition(len, workers);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut offset = 0;
        for range in ranges {
            let (head, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let start = offset;
            offset += range.len();
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                f(start, head);
            });
        }
    });
}

/// Runs `f(first_row_index, rows_chunk)` over row-aligned chunks of a
/// flat row-major buffer with `cols` elements per row.
///
/// Chunk boundaries always fall on row boundaries, and every row is
/// written by exactly one worker.
pub fn par_row_chunks_mut<T: Send, F>(data: &mut [T], cols: usize, min_rows_per_thread: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    if cols == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0, "buffer is not row-aligned");
    let rows = data.len() / cols;
    let max_threads = rows / min_rows_per_thread.max(1);
    let workers = workers_for(rows, max_threads);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let ranges = partition(rows, workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        for range in ranges {
            let (head, tail) = rest.split_at_mut(range.len() * cols);
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                f(range.start, head);
            });
        }
    });
}

/// Maps `f` over `items` into a `Vec`, preserving order; parallel when
/// the budget allows and `items` is large enough.
pub fn par_map<I, O, F>(items: &[I], min_items_per_thread: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let len = items.len();
    let max_threads = len / min_items_per_thread.max(1);
    let workers = workers_for(len, max_threads);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let ranges = partition(len, workers);
    let mut out: Vec<Option<O>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        for range in ranges {
            let (head, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (slot, i) in head.iter_mut().zip(range) {
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("worker filled slot"))
        .collect()
}

/// Runs `f(index)` for every index in `0..n` across the thread budget.
///
/// Useful when the output is interior-mutable or written through
/// synchronization the caller controls; prefer [`par_chunks_mut`] /
/// [`par_map`] when possible.
pub fn par_for_each_index<F>(n: usize, min_items_per_thread: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let max_threads = n / min_items_per_thread.max(1);
    let workers = workers_for(n, max_threads);
    if workers <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    std::thread::scope(|scope| {
        for range in partition(n, workers) {
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for i in range {
                    f(i);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for len in [0usize, 1, 7, 64, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = partition(len, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn par_map_matches_serial() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let parallel = par_map(&items, 1, |_, x| x * x + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_chunks_mut_writes_every_slot() {
        let mut out = vec![0usize; 777];
        par_chunks_mut(&mut out, 1, |start, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = start + k;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn nested_regions_run_inline() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, 1, |_, &x| {
            // Nested call must not deadlock or spawn grandchildren.
            // (No assertion on the global budget here: sibling tests
            // mutate it concurrently.)
            let inner = par_map(&[1usize, 2, 3], 1, |_, &y| y * x);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out[2], 2 * (1 + 2 + 3));
    }

    #[test]
    fn budget_override_round_trips() {
        set_thread_budget(3);
        assert_eq!(thread_budget(), 3);
        set_thread_budget(0);
        assert!(thread_budget() >= 1);
    }

    #[test]
    fn small_inputs_stay_serial() {
        // min_items_per_thread larger than the input forces the serial
        // path; just assert correctness.
        let items = [5usize; 4];
        let out = par_map(&items, 1000, |i, &x| i + x);
        assert_eq!(out, vec![5, 6, 7, 8]);
    }

    #[test]
    fn par_for_each_index_visits_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        par_for_each_index(500, 1, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
