//! Synthetic multi-floor RF signal corpus generator.
//!
//! The FIS-ONE paper evaluates on two proprietary corpora: the Microsoft
//! Indoor Location open dataset and surveys of three Hong Kong shopping
//! malls. Neither ships with this repository, so this crate builds the
//! closest synthetic equivalent (see `DESIGN.md` §4 for the substitution
//! argument):
//!
//! - [`propagation`]: a standard multi-floor log-distance path-loss model
//!   with a per-floor attenuation factor — the physical mechanism behind
//!   the paper's *signal spillover* observation (Figure 1).
//! - [`building`]: building geometry, AP placement (including open-atrium
//!   APs that leak across many floors, the paper's own caveat about malls),
//!   and crowdsourced sample generation.
//! - [`corpus`]: ready-made corpora shaped like the paper's two datasets
//!   (building-count distribution of Figure 7, ~1000 samples/floor, 5/5/7
//!   floor malls, a 168-MAC 8-floor mall for Figure 1(b)).
//! - [`temporal`]: timestamped drift epochs over an evolving site — AP
//!   churn, fleet calibration offsets, renovations, and mixed scan
//!   densities — for evaluating online model extension.
//!
//! All generation is deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use fis_synth::building::BuildingConfig;
//!
//! let building = BuildingConfig::new("demo", 3)
//!     .samples_per_floor(40)
//!     .aps_per_floor(8)
//!     .seed(7)
//!     .generate();
//! assert_eq!(building.floors(), 3);
//! assert_eq!(building.len(), 120);
//! ```

pub mod building;
pub mod corpus;
pub mod propagation;
pub mod temporal;

pub use building::BuildingConfig;
pub use corpus::{fig1b_mall, malls_like, microsoft_like, Scale};
pub use propagation::PropagationModel;
pub use temporal::{DriftScenario, EpochScans, TemporalConfig, TemporalCorpus};
