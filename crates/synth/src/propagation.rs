//! Multi-floor log-distance path-loss model.
//!
//! The received signal strength at 3-D distance `d` from an AP, crossing
//! `k` floor slabs, is modeled as
//!
//! ```text
//! RSS(d, k) = P1m − 10·n·log10(max(d, 1m)) − k·FAF + X_sigma
//! ```
//!
//! where `P1m` is the received power at one metre, `n` the path-loss
//! exponent, `FAF` the per-floor attenuation factor, and `X_sigma` zero-mean
//! Gaussian shadow fading. This is the standard ITU/COST multi-wall-floor
//! family used by the floor-identification literature the paper cites
//! (HyRise, TrueStory, ViFi), and it produces exactly the behaviour FIS-ONE
//! exploits: APs are heard strongly on their own floor, weakly on adjacent
//! floors, and rarely 2+ floors away.

use rand::Rng;

/// Parameters of the multi-floor path-loss model.
///
/// The defaults are textbook office/mall values: `P1m = -40 dBm`
/// (≈20 dBm TX minus ~60 dB first-metre loss at 2.4/5 GHz), exponent 2.8,
/// 14 dB per concrete floor slab, 5 dB log-normal shadowing, and a
/// −95 dBm receiver detection threshold. The slab attenuation is calibrated
/// so the corpus-level MAC floor-span histogram matches the paper's
/// Figure 1(b) (mode at 2-3 floors).
#[derive(Debug, Clone, PartialEq)]
pub struct PropagationModel {
    /// Received power at 1 m, in dBm.
    pub p1m_dbm: f64,
    /// Path-loss exponent `n`.
    pub exponent: f64,
    /// Attenuation per crossed floor slab, in dB.
    pub floor_attenuation_db: f64,
    /// Standard deviation of log-normal shadow fading, in dB.
    pub shadowing_sigma_db: f64,
    /// Readings weaker than this are not reported by the radio.
    pub detection_threshold_dbm: f64,
}

impl Default for PropagationModel {
    fn default() -> Self {
        Self {
            p1m_dbm: -40.0,
            exponent: 2.8,
            floor_attenuation_db: 14.0,
            shadowing_sigma_db: 5.0,
            detection_threshold_dbm: -95.0,
        }
    }
}

impl PropagationModel {
    /// Model for open-atrium propagation: floor slabs barely attenuate
    /// because the signal travels through the open space. Used for the few
    /// mall APs the paper notes are detectable on many floors.
    pub fn atrium() -> Self {
        Self {
            floor_attenuation_db: 3.0,
            ..Self::default()
        }
    }

    /// Mean received power (no shadowing) at 3-D distance `d3` metres
    /// crossing `floors_crossed` slabs.
    pub fn mean_rss(&self, d3: f64, floors_crossed: usize) -> f64 {
        let d = d3.max(1.0);
        self.p1m_dbm
            - 10.0 * self.exponent * d.log10()
            - self.floor_attenuation_db * floors_crossed as f64
    }

    /// One stochastic reading: mean RSS plus Gaussian shadow fading drawn
    /// from `rng`. Returns `None` when the (faded) power falls below the
    /// detection threshold — the AP is simply not in the scan.
    pub fn sample_rss<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        d3: f64,
        floors_crossed: usize,
    ) -> Option<f64> {
        let fading = gaussian(rng) * self.shadowing_sigma_db;
        let rss = self.mean_rss(d3, floors_crossed) + fading;
        (rss >= self.detection_threshold_dbm).then_some(rss)
    }

    /// Distance at which the *mean* RSS crosses the detection threshold on
    /// the same floor. Useful for sizing buildings versus AP density.
    pub fn same_floor_range(&self) -> f64 {
        let budget = self.p1m_dbm - self.detection_threshold_dbm;
        10f64.powf(budget / (10.0 * self.exponent))
    }
}

/// Standard normal deviate via Box–Muller using the caller's RNG.
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rss_decays_with_distance() {
        let m = PropagationModel::default();
        assert!(m.mean_rss(1.0, 0) > m.mean_rss(10.0, 0));
        assert!(m.mean_rss(10.0, 0) > m.mean_rss(50.0, 0));
    }

    #[test]
    fn rss_decays_with_floors() {
        let m = PropagationModel::default();
        assert_eq!(
            m.mean_rss(10.0, 0) - m.mean_rss(10.0, 2),
            2.0 * m.floor_attenuation_db
        );
    }

    #[test]
    fn near_field_clamped_to_one_metre() {
        let m = PropagationModel::default();
        assert_eq!(m.mean_rss(0.0, 0), m.mean_rss(1.0, 0));
        assert_eq!(m.mean_rss(0.5, 0), m.p1m_dbm);
    }

    #[test]
    fn atrium_leaks_across_floors() {
        let normal = PropagationModel::default();
        let atrium = PropagationModel::atrium();
        // Two floors away at 15 m: atrium still detectable on average.
        assert!(atrium.mean_rss(15.0, 2) > normal.mean_rss(15.0, 2));
        assert!(atrium.mean_rss(15.0, 2) > atrium.detection_threshold_dbm);
        assert!(normal.mean_rss(15.0, 3) < normal.detection_threshold_dbm);
    }

    #[test]
    fn sample_rss_below_threshold_is_none() {
        let m = PropagationModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Same floor, 1 km away: far below threshold.
        assert!(m.sample_rss(&mut rng, 1000.0, 0).is_none());
        // One metre away: always detected.
        assert!(m.sample_rss(&mut rng, 1.0, 0).is_some());
    }

    #[test]
    fn shadowing_spreads_readings() {
        let m = PropagationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let readings: Vec<f64> = (0..500)
            .filter_map(|_| m.sample_rss(&mut rng, 5.0, 0))
            .collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        let var = readings
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / readings.len() as f64;
        let sd = var.sqrt();
        assert!(
            (sd - m.shadowing_sigma_db).abs() < 1.0,
            "sd={sd} expected≈{}",
            m.shadowing_sigma_db
        );
    }

    #[test]
    fn same_floor_range_is_consistent() {
        let m = PropagationModel::default();
        let range = m.same_floor_range();
        assert!((m.mean_rss(range, 0) - m.detection_threshold_dbm).abs() < 1e-9);
    }
}
