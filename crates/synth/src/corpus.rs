//! Ready-made corpora shaped like the paper's two evaluation datasets.

use fis_types::{Building, Dataset};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::building::BuildingConfig;

/// Experiment scale.
///
/// `Reduced` keeps unit tests and CI fast while preserving every statistical
/// property the algorithms rely on; `Full` matches the paper's corpus sizes
/// (152 buildings, ~1000 samples per floor). Selected via the `FIS_SCALE`
/// environment variable by the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small corpora for fast iteration (default).
    #[default]
    Reduced,
    /// Paper-sized corpora.
    Full,
}

impl Scale {
    /// Reads `FIS_SCALE` (`"full"` → [`Scale::Full`], anything else or
    /// unset → [`Scale::Reduced`]).
    pub fn from_env() -> Self {
        match std::env::var("FIS_SCALE") {
            Ok(v) if v.eq_ignore_ascii_case("full") => Scale::Full,
            _ => Scale::Reduced,
        }
    }

    fn buildings(&self) -> usize {
        match self {
            Scale::Reduced => 12,
            Scale::Full => 152,
        }
    }

    fn samples_per_floor(&self) -> usize {
        match self {
            Scale::Reduced => 100,
            Scale::Full => 1000,
        }
    }
}

/// Relative frequency of building heights in the Microsoft-like corpus,
/// matching the shape of the paper's Figure 7: most buildings have 4–6
/// floors, with a thin tail up to 10.
const FLOOR_COUNT_WEIGHTS: [(usize, f64); 8] = [
    (3, 0.15),
    (4, 0.22),
    (5, 0.25),
    (6, 0.16),
    (7, 0.10),
    (8, 0.06),
    (9, 0.04),
    (10, 0.02),
];

/// Generates the Microsoft-like corpus: `scale.buildings()` buildings whose
/// floor counts follow the Figure 7 distribution, each with
/// `scale.samples_per_floor()` crowdsourced samples per floor.
///
/// Deterministic for a given `(scale, seed)`.
pub fn microsoft_like(scale: Scale, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut buildings = Vec::new();
    for i in 0..scale.buildings() {
        let floors = draw_floor_count(&mut rng);
        let b = BuildingConfig::new(format!("ms-{i:03}"), floors)
            .samples_per_floor(scale.samples_per_floor())
            .aps_per_floor(12)
            .atrium_aps(if floors >= 6 { 2 } else { 1 })
            .footprint(rng.gen_range(50.0..110.0), rng.gen_range(40.0..90.0))
            .seed(seed.wrapping_mul(1_000_003).wrapping_add(i as u64))
            .generate();
        buildings.push(b);
    }
    Dataset::new("Microsoft", buildings)
}

/// Generates the "Ours" corpus: three large shopping malls with 5, 5, and 7
/// floors (§V-A), ~`samples_per_floor` samples per floor, generous atria.
pub fn malls_like(scale: Scale, seed: u64) -> Dataset {
    let spf = scale.samples_per_floor();
    let mk = |name: &str, floors: usize, salt: u64| -> Building {
        BuildingConfig::new(name, floors)
            .samples_per_floor(spf)
            .aps_per_floor(16)
            .atrium_aps(3)
            .footprint(120.0, 90.0)
            .seed(seed.wrapping_mul(7_777_777).wrapping_add(salt))
            .generate()
    };
    Dataset::new(
        "Ours",
        vec![mk("mall-A", 5, 1), mk("mall-B", 5, 2), mk("mall-C", 7, 3)],
    )
}

/// The eight-floor mall used for the paper's Figure 1(b), tuned to carry
/// roughly 168 distinct MAC addresses in total.
pub fn fig1b_mall(seed: u64) -> Building {
    // 8 floors * 20 APs + 8 atrium APs = 168 MACs.
    BuildingConfig::new("mall-fig1b", 8)
        .samples_per_floor(150)
        .aps_per_floor(20)
        .atrium_aps(8)
        .footprint(130.0, 100.0)
        .seed(seed)
        .generate()
}

fn draw_floor_count<R: Rng + ?Sized>(rng: &mut R) -> usize {
    let total: f64 = FLOOR_COUNT_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for &(floors, w) in &FLOOR_COUNT_WEIGHTS {
        if x < w {
            return floors;
        }
        x -= w;
    }
    FLOOR_COUNT_WEIGHTS.last().expect("non-empty table").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::stats;

    #[test]
    fn microsoft_like_shape() {
        let ds = microsoft_like(Scale::Reduced, 1);
        assert_eq!(ds.len(), 12);
        assert!(ds
            .buildings()
            .iter()
            .all(|b| (3..=10).contains(&b.floors())));
        assert!(ds
            .buildings()
            .iter()
            .all(|b| b.samples_per_floor().iter().all(|&c| c == 100)));
    }

    #[test]
    fn microsoft_like_deterministic() {
        let a = microsoft_like(Scale::Reduced, 5);
        let b = microsoft_like(Scale::Reduced, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn malls_have_paper_floor_counts() {
        let ds = malls_like(Scale::Reduced, 2);
        let mut floors: Vec<usize> = ds.buildings().iter().map(|b| b.floors()).collect();
        floors.sort_unstable();
        assert_eq!(floors, vec![5, 5, 7]);
    }

    #[test]
    fn fig1b_mall_has_168_macs() {
        let mall = fig1b_mall(3);
        let macs = stats::total_macs(&mall);
        // Every AP is placed; a couple may never rise above the detection
        // threshold in any scan, so allow a tiny deficit.
        assert!((160..=168).contains(&macs), "macs={macs}");
        assert_eq!(mall.floors(), 8);
    }

    #[test]
    fn fig1b_histogram_shape_matches_paper() {
        let mall = fig1b_mall(4);
        let hist = stats::mac_floor_span_histogram(&mall);
        // Paper's Fig 1(b): spans 1-3 dominate; a small tail reaches many
        // floors because of the central atrium.
        let narrow: usize = hist[..3].iter().sum();
        let wide: usize = hist[4..].iter().sum();
        assert!(narrow > 3 * wide, "hist={hist:?}");
        assert!(wide >= 1, "hist={hist:?}");
    }

    #[test]
    fn scale_from_env_defaults_reduced() {
        // Do not set the variable here (tests run in parallel); just check
        // the parser on the unset path.
        if std::env::var("FIS_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Reduced);
        }
    }
}
