//! Temporal drift scenarios: timestamped scan epochs over an evolving site.
//!
//! A fitted model is a snapshot of one survey, but real deployments drift:
//! APs are replaced (MAC churn), device fleets change their RSSI
//! calibration, renovations move hardware, and crowdsourcing density waxes
//! and wanes. This module replays that drift as a sequence of *epochs* —
//! each a timestamped batch of query scans generated against the building's
//! AP population *as of that epoch* — so the serving tier's online
//! extension path (`FittedModel::extend`) can be evaluated against a known
//! ground truth.
//!
//! Everything is deterministic given the base config's seed: epoch `e`
//! derives its own ChaCha8 stream from `(seed, e)`, so corpora are
//! reproducible regardless of how many epochs a caller consumes.
//!
//! # Example
//!
//! ```
//! use fis_synth::{BuildingConfig, DriftScenario, TemporalConfig};
//!
//! let corpus = TemporalConfig::new(
//!     BuildingConfig::new("mall", 3)
//!         .samples_per_floor(40)
//!         .aps_per_floor(8)
//!         .seed(7),
//!     DriftScenario::ApChurn { replaced_per_epoch: 0.1 },
//! )
//! .epochs(4)
//! .scans_per_epoch(50)
//! .generate();
//! assert_eq!(corpus.epochs.len(), 4);
//! assert_eq!(corpus.building.floors(), 3);
//! ```

use fis_types::{Building, FloorId, MacAddr, SignalSample};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::building::{BuildingConfig, PlacedAp};
use crate::propagation::gaussian;

/// How the site drifts away from the epoch-0 survey.
#[derive(Debug, Clone)]
pub enum DriftScenario {
    /// Every epoch, this fraction of the AP population is replaced: the old
    /// unit vanishes and a new one (fresh MAC, fresh position) appears.
    /// Cumulative — after enough epochs little of the original vocabulary
    /// survives.
    ApChurn {
        /// Fraction of APs replaced per epoch, in `[0, 1]`.
        replaced_per_epoch: f64,
    },
    /// The device fleet's RSSI calibration drifts: every scan in epoch `e`
    /// carries an extra `db_per_epoch * e` offset on top of its per-device
    /// bias. The AP population (and hence the MAC vocabulary) is unchanged.
    CalibrationOffset {
        /// Fleet-wide offset added per epoch, in dB (may be negative).
        db_per_epoch: f64,
    },
    /// A one-shot renovation at `at_epoch`: `moved_fraction` of the APs are
    /// re-mounted at new random positions, and every second moved unit is
    /// also replaced with new hardware (fresh MAC).
    Renovation {
        /// Epoch (1-based) at which the renovation lands.
        at_epoch: usize,
        /// Fraction of APs affected, in `[0, 1]`.
        moved_fraction: f64,
    },
    /// Crowdsourcing density varies: epoch `e` emits
    /// `scans_per_epoch * cycle[(e - 1) % cycle.len()]` scans. The site
    /// itself does not drift.
    MixedDensity {
        /// Scan-count multipliers cycled epoch by epoch; must be non-empty
        /// and positive.
        cycle: Vec<f64>,
    },
}

/// One epoch's worth of timestamped query scans.
#[derive(Debug, Clone)]
pub struct EpochScans {
    /// 1-based epoch index (epoch 0 is the training survey itself).
    pub epoch: usize,
    /// Seconds since the training survey.
    pub timestamp_s: u64,
    /// Query scans, ids dense from 0 within the epoch.
    pub samples: Vec<SignalSample>,
    /// True floor per scan, parallel to `samples`.
    pub ground_truth: Vec<FloorId>,
}

/// A training survey plus the drifting epochs that follow it.
#[derive(Debug, Clone)]
pub struct TemporalCorpus {
    /// The epoch-0 crowdsourced survey (what a model is fitted on).
    pub building: Building,
    /// Subsequent epochs in time order.
    pub epochs: Vec<EpochScans>,
}

/// Configuration (builder) for a temporal drift corpus.
#[derive(Debug, Clone)]
pub struct TemporalConfig {
    base: BuildingConfig,
    scenario: DriftScenario,
    epochs: usize,
    scans_per_epoch: usize,
    epoch_seconds: u64,
}

impl TemporalConfig {
    /// Starts a temporal corpus over `base`'s building, drifting per
    /// `scenario`. Defaults: 6 epochs, 100 scans/epoch, 1 week apart.
    pub fn new(base: BuildingConfig, scenario: DriftScenario) -> Self {
        if let DriftScenario::MixedDensity { cycle } = &scenario {
            assert!(
                !cycle.is_empty() && cycle.iter().all(|m| *m > 0.0),
                "density cycle must be non-empty and positive"
            );
        }
        Self {
            base,
            scenario,
            epochs: 6,
            scans_per_epoch: 100,
            epoch_seconds: 7 * 24 * 3600,
        }
    }

    /// Number of post-survey epochs to generate.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn epochs(mut self, n: usize) -> Self {
        assert!(n > 0, "a temporal corpus needs at least one epoch");
        self.epochs = n;
        self
    }

    /// Baseline number of query scans per epoch (scaled by
    /// [`DriftScenario::MixedDensity`]'s cycle when active).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn scans_per_epoch(mut self, n: usize) -> Self {
        assert!(n > 0, "epochs need at least one scan");
        self.scans_per_epoch = n;
        self
    }

    /// Wall-clock spacing between epochs, in seconds.
    pub fn epoch_seconds(mut self, s: u64) -> Self {
        self.epoch_seconds = s;
        self
    }

    /// Generates the survey building plus every drifting epoch.
    pub fn generate(&self) -> TemporalCorpus {
        let building = self.base.generate();
        // Re-derive the exact AP placement `generate()` used: same seed, and
        // `place_aps` is the first consumer of the stream.
        let mut rng = ChaCha8Rng::seed_from_u64(self.base.seed);
        let mut aps = self.base.place_aps(&mut rng);
        // Fresh hardware draws MACs from a range disjoint from the base
        // vocabulary (base counters start at `(seed << 20) | 1` and stay far
        // below the 2^19 bit).
        let mut fresh_mac: u64 = (self.base.seed << 20) | (1 << 19);

        let mut epochs = Vec::with_capacity(self.epochs);
        for epoch in 1..=self.epochs {
            let mut erng = ChaCha8Rng::seed_from_u64(epoch_seed(self.base.seed, epoch as u64));
            let mut fleet_offset_db = 0.0;
            let mut density = 1.0;
            match &self.scenario {
                DriftScenario::ApChurn { replaced_per_epoch } => {
                    let n = ((aps.len() as f64) * replaced_per_epoch).round() as usize;
                    for _ in 0..n {
                        let i = erng.gen_range(0..aps.len());
                        aps[i] = PlacedAp {
                            mac: MacAddr::from_u64(fresh_mac),
                            x: erng.gen_range(0.0..self.base.width_m),
                            y: erng.gen_range(0.0..self.base.length_m),
                            floor: erng.gen_range(0..self.base.floors),
                            atrium: false,
                        };
                        fresh_mac += 1;
                    }
                }
                DriftScenario::CalibrationOffset { db_per_epoch } => {
                    fleet_offset_db = db_per_epoch * epoch as f64;
                }
                DriftScenario::Renovation {
                    at_epoch,
                    moved_fraction,
                } => {
                    if epoch == *at_epoch {
                        let n = ((aps.len() as f64) * moved_fraction).round() as usize;
                        for k in 0..n {
                            let i = erng.gen_range(0..aps.len());
                            aps[i].x = erng.gen_range(0.0..self.base.width_m);
                            aps[i].y = erng.gen_range(0.0..self.base.length_m);
                            if k % 2 == 0 {
                                aps[i].mac = MacAddr::from_u64(fresh_mac);
                                fresh_mac += 1;
                            }
                        }
                    }
                }
                DriftScenario::MixedDensity { cycle } => {
                    density = cycle[(epoch - 1) % cycle.len()];
                }
            }

            let n_scans = ((self.scans_per_epoch as f64) * density).round().max(1.0) as usize;
            let mut samples = Vec::with_capacity(n_scans);
            let mut ground_truth = Vec::with_capacity(n_scans);
            for i in 0..n_scans {
                let floor = erng.gen_range(0..self.base.floors);
                let device_bias = gaussian(&mut erng) * self.base.device_sigma_db + fleet_offset_db;
                let id = i as u32;
                let mut scan = self.base.scan_at(&mut erng, &aps, floor, device_bias, id);
                let mut retries = 0;
                while scan.is_empty() && retries < 16 {
                    scan = self.base.scan_at(&mut erng, &aps, floor, device_bias, id);
                    retries += 1;
                }
                samples.push(scan);
                ground_truth.push(FloorId::from_index(floor));
            }
            epochs.push(EpochScans {
                epoch,
                timestamp_s: epoch as u64 * self.epoch_seconds,
                samples,
                ground_truth,
            });
        }
        TemporalCorpus { building, epochs }
    }
}

/// Per-epoch stream seed: a splitmix-style mix so epochs are independent
/// but reproducible in isolation.
fn epoch_seed(seed: u64, epoch: u64) -> u64 {
    let mut z = seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn base(seed: u64) -> BuildingConfig {
        BuildingConfig::new("t", 3)
            .samples_per_floor(40)
            .aps_per_floor(8)
            .seed(seed)
    }

    fn macs_of(samples: &[SignalSample]) -> BTreeSet<u64> {
        samples
            .iter()
            .flat_map(|s| s.iter().map(|(m, _)| m.to_u64()))
            .collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            TemporalConfig::new(
                base(9),
                DriftScenario::ApChurn {
                    replaced_per_epoch: 0.2,
                },
            )
            .epochs(3)
            .scans_per_epoch(30)
            .generate()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.building, b.building);
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(ea.samples, eb.samples);
            assert_eq!(ea.ground_truth, eb.ground_truth);
        }
    }

    #[test]
    fn survey_matches_plain_generate() {
        let corpus = TemporalConfig::new(
            base(4),
            DriftScenario::CalibrationOffset { db_per_epoch: 1.0 },
        )
        .epochs(2)
        .generate();
        assert_eq!(corpus.building, base(4).generate());
    }

    #[test]
    fn epochs_are_timestamped_and_shaped() {
        let corpus = TemporalConfig::new(
            base(1),
            DriftScenario::CalibrationOffset { db_per_epoch: 0.5 },
        )
        .epochs(4)
        .scans_per_epoch(25)
        .epoch_seconds(3600)
        .generate();
        assert_eq!(corpus.epochs.len(), 4);
        for (i, e) in corpus.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i + 1);
            assert_eq!(e.timestamp_s, (i as u64 + 1) * 3600);
            assert_eq!(e.samples.len(), 25);
            assert_eq!(e.ground_truth.len(), 25);
            assert!(e.samples.iter().all(|s| !s.is_empty()));
        }
    }

    #[test]
    fn churn_grows_vocabulary_beyond_the_survey() {
        let corpus = TemporalConfig::new(
            base(7),
            DriftScenario::ApChurn {
                replaced_per_epoch: 0.25,
            },
        )
        .epochs(4)
        .scans_per_epoch(60)
        .generate();
        let survey = macs_of(corpus.building.samples());
        let last = macs_of(&corpus.epochs.last().unwrap().samples);
        assert!(
            last.difference(&survey).count() > 0,
            "churn must introduce MACs the survey never heard"
        );
    }

    #[test]
    fn calibration_offset_keeps_vocabulary() {
        let corpus = TemporalConfig::new(
            base(7),
            DriftScenario::CalibrationOffset { db_per_epoch: 2.0 },
        )
        .epochs(3)
        .scans_per_epoch(60)
        .generate();
        let survey = macs_of(corpus.building.samples());
        for e in &corpus.epochs {
            assert!(
                macs_of(&e.samples).is_subset(&survey),
                "calibration drift must not invent MACs"
            );
        }
    }

    #[test]
    fn renovation_changes_vocabulary_only_at_the_epoch() {
        let corpus = TemporalConfig::new(
            base(3),
            DriftScenario::Renovation {
                at_epoch: 3,
                moved_fraction: 0.5,
            },
        )
        .epochs(4)
        .scans_per_epoch(80)
        .generate();
        let survey = macs_of(corpus.building.samples());
        assert!(macs_of(&corpus.epochs[0].samples).is_subset(&survey));
        assert!(macs_of(&corpus.epochs[1].samples).is_subset(&survey));
        let after = macs_of(&corpus.epochs[3].samples);
        assert!(
            after.difference(&survey).count() > 0,
            "renovation must replace some hardware"
        );
    }

    #[test]
    fn mixed_density_cycles_scan_counts() {
        let corpus = TemporalConfig::new(
            base(2),
            DriftScenario::MixedDensity {
                cycle: vec![0.5, 1.0, 2.0],
            },
        )
        .epochs(3)
        .scans_per_epoch(40)
        .generate();
        let counts: Vec<usize> = corpus.epochs.iter().map(|e| e.samples.len()).collect();
        assert_eq!(counts, vec![20, 40, 80]);
    }

    #[test]
    #[should_panic(expected = "density cycle")]
    fn empty_density_cycle_panics() {
        let _ = TemporalConfig::new(base(1), DriftScenario::MixedDensity { cycle: vec![] });
    }
}
