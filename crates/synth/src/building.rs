//! Building geometry, AP placement, and crowdsourced sample generation.

use fis_types::{Building, FloorId, MacAddr, Rssi, SignalSample};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::propagation::{gaussian, PropagationModel};

/// A placed access point. Shared with the [`crate::temporal`] scenarios,
/// which mutate the placement between epochs.
#[derive(Debug, Clone)]
pub(crate) struct PlacedAp {
    pub(crate) mac: MacAddr,
    pub(crate) x: f64,
    pub(crate) y: f64,
    pub(crate) floor: usize,
    /// Atrium APs propagate with the low floor-attenuation model.
    pub(crate) atrium: bool,
}

/// Configuration (builder) for generating one synthetic building.
///
/// Defaults mirror a mid-sized mall floor plate: 80 m × 60 m, 3.5 m floor
/// height, 12 regular APs per floor plus one shared atrium AP per two
/// floors, ~1000 samples per floor at paper scale.
///
/// # Example
///
/// ```
/// use fis_synth::BuildingConfig;
///
/// let b = BuildingConfig::new("mall-a", 5)
///     .samples_per_floor(100)
///     .seed(42)
///     .generate();
/// assert_eq!(b.floors(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct BuildingConfig {
    pub(crate) name: String,
    pub(crate) floors: usize,
    pub(crate) width_m: f64,
    pub(crate) length_m: f64,
    pub(crate) floor_height_m: f64,
    pub(crate) aps_per_floor: usize,
    pub(crate) atrium_aps: usize,
    pub(crate) samples_per_floor: usize,
    pub(crate) device_sigma_db: f64,
    pub(crate) max_aps_per_scan: usize,
    pub(crate) scan_dropout: f64,
    pub(crate) model: PropagationModel,
    pub(crate) atrium_model: PropagationModel,
    pub(crate) seed: u64,
}

impl BuildingConfig {
    /// Starts a config for a building with `floors` floors.
    ///
    /// # Panics
    ///
    /// Panics if `floors == 0`.
    pub fn new(name: impl Into<String>, floors: usize) -> Self {
        assert!(floors > 0, "a building needs at least one floor");
        Self {
            name: name.into(),
            floors,
            width_m: 80.0,
            length_m: 60.0,
            floor_height_m: 3.5,
            aps_per_floor: 12,
            atrium_aps: (floors / 2).max(1),
            samples_per_floor: 1000,
            device_sigma_db: 2.0,
            max_aps_per_scan: 12,
            scan_dropout: 0.0,
            model: PropagationModel::default(),
            atrium_model: PropagationModel::atrium(),
            seed: 0,
        }
    }

    /// Floor plate dimensions in metres.
    pub fn footprint(mut self, width_m: f64, length_m: f64) -> Self {
        assert!(
            width_m > 0.0 && length_m > 0.0,
            "footprint must be positive"
        );
        self.width_m = width_m;
        self.length_m = length_m;
        self
    }

    /// Number of regular APs installed on each floor.
    pub fn aps_per_floor(mut self, n: usize) -> Self {
        self.aps_per_floor = n;
        self
    }

    /// Number of atrium APs (placed near the building centre, heard across
    /// many floors). Set 0 for a building without open spaces.
    pub fn atrium_aps(mut self, n: usize) -> Self {
        self.atrium_aps = n;
        self
    }

    /// Number of crowdsourced samples collected on each floor.
    pub fn samples_per_floor(mut self, n: usize) -> Self {
        self.samples_per_floor = n;
        self
    }

    /// Per-device RSS bias spread (device heterogeneity), in dB.
    pub fn device_sigma(mut self, sigma_db: f64) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        self.device_sigma_db = sigma_db;
        self
    }

    /// Maximum APs reported per scan. Commodity radios report only the
    /// strongest APs they hear; this cap keeps weak cross-floor leakage
    /// rare, matching the Figure 1(b) span histogram.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn max_aps_per_scan(mut self, n: usize) -> Self {
        assert!(n > 0, "scans must report at least one AP");
        self.max_aps_per_scan = n;
        self
    }

    /// Probability that a hearable AP is missing from a given scan.
    /// Crowdsourced contributors scan at different moments, with different
    /// radios and scan durations, so each record reports only a subset of
    /// the APs audible at its position — the heterogeneity the paper's
    /// introduction motivates.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn scan_dropout(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout must be in [0, 1)");
        self.scan_dropout = p;
        self
    }

    /// Overrides the regular propagation model.
    pub fn propagation(mut self, model: PropagationModel) -> Self {
        self.model = model;
        self
    }

    /// Overrides the atrium propagation model.
    pub fn atrium_propagation(mut self, model: PropagationModel) -> Self {
        self.atrium_model = model;
        self
    }

    /// RNG seed; everything about the building derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the building: places APs, walks crowdsourced positions,
    /// and synthesizes one scan per position through the propagation model.
    ///
    /// Samples whose scan hears no AP at all are re-drawn (a real phone
    /// would not upload an empty fingerprint), so the output always has
    /// exactly `floors * samples_per_floor` samples.
    pub fn generate(&self) -> Building {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let aps = self.place_aps(&mut rng);

        let mut samples = Vec::with_capacity(self.floors * self.samples_per_floor);
        let mut labels = Vec::with_capacity(self.floors * self.samples_per_floor);
        for floor in 0..self.floors {
            for _ in 0..self.samples_per_floor {
                let sample_id = samples.len() as u32;
                // Device heterogeneity: each crowdsourced contributor's radio
                // has a constant bias.
                let device_bias = gaussian(&mut rng) * self.device_sigma_db;
                let mut scan = self.scan_at(&mut rng, &aps, floor, device_bias, sample_id);
                let mut retries = 0;
                while scan.is_empty() && retries < 16 {
                    scan = self.scan_at(&mut rng, &aps, floor, device_bias, sample_id);
                    retries += 1;
                }
                samples.push(scan);
                labels.push(FloorId::from_index(floor));
            }
        }
        Building::new(self.name.clone(), self.floors, samples, labels)
            .expect("generator maintains building invariants")
    }

    pub(crate) fn place_aps<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<PlacedAp> {
        let mut aps = Vec::new();
        let mut mac_counter: u64 = (self.seed << 20) | 1;
        for floor in 0..self.floors {
            for _ in 0..self.aps_per_floor {
                aps.push(PlacedAp {
                    mac: MacAddr::from_u64(mac_counter),
                    x: rng.gen_range(0.0..self.width_m),
                    y: rng.gen_range(0.0..self.length_m),
                    floor,
                    atrium: false,
                });
                mac_counter += 1;
            }
        }
        // Atrium APs sit near the centre of the footprint on random floors.
        for _ in 0..self.atrium_aps {
            aps.push(PlacedAp {
                mac: MacAddr::from_u64(mac_counter),
                x: self.width_m / 2.0 + rng.gen_range(-5.0..5.0),
                y: self.length_m / 2.0 + rng.gen_range(-5.0..5.0),
                floor: rng.gen_range(0..self.floors),
                atrium: true,
            });
            mac_counter += 1;
        }
        aps
    }

    pub(crate) fn scan_at<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        aps: &[PlacedAp],
        floor: usize,
        device_bias: f64,
        sample_id: u32,
    ) -> SignalSample {
        let x = rng.gen_range(0.0..self.width_m);
        let y = rng.gen_range(0.0..self.length_m);
        let mut readings = Vec::new();
        for ap in aps {
            let dz = ap.floor.abs_diff(floor) as f64 * self.floor_height_m;
            let d3 = ((ap.x - x).powi(2) + (ap.y - y).powi(2) + dz * dz).sqrt();
            let floors_crossed = ap.floor.abs_diff(floor);
            let model = if ap.atrium {
                &self.atrium_model
            } else {
                &self.model
            };
            if rng.gen::<f64>() < self.scan_dropout {
                continue;
            }
            if let Some(rss) = model.sample_rss(rng, d3, floors_crossed) {
                readings.push((ap.mac, Rssi::clamped(rss + device_bias)));
            }
        }
        // The radio reports only the strongest max_aps_per_scan readings.
        readings.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("Rssi is never NaN"));
        readings.truncate(self.max_aps_per_scan);
        SignalSample::builder(sample_id).readings(readings).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::stats;

    fn quick(floors: usize, seed: u64) -> Building {
        BuildingConfig::new("t", floors)
            .samples_per_floor(60)
            .aps_per_floor(8)
            .seed(seed)
            .generate()
    }

    #[test]
    fn generates_requested_shape() {
        let b = quick(4, 1);
        assert_eq!(b.floors(), 4);
        assert_eq!(b.len(), 240);
        assert_eq!(b.samples_per_floor(), vec![60; 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(quick(3, 9), quick(3, 9));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(quick(3, 1), quick(3, 2));
    }

    #[test]
    fn no_empty_scans() {
        let b = quick(5, 3);
        assert!(b.samples().iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn spillover_adjacent_beats_distant() {
        let b = quick(6, 4);
        let (adj, far) = stats::spillover_contrast(&b, 3);
        assert!(
            adj > 2.0 * far.max(0.5),
            "adjacent {adj} should dominate far {far}"
        );
    }

    #[test]
    fn most_macs_span_few_floors() {
        // The Figure 1(b) shape: the bulk of MACs are heard on 1-3 floors.
        let b = BuildingConfig::new("m", 8)
            .samples_per_floor(80)
            .aps_per_floor(12)
            .atrium_aps(4)
            .seed(5)
            .generate();
        let hist = stats::mac_floor_span_histogram(&b);
        let narrow: usize = hist[..3].iter().sum();
        let wide: usize = hist[3..].iter().sum();
        assert!(
            narrow > wide,
            "narrow-span MACs {narrow} should outnumber wide {wide} (hist={hist:?})"
        );
        // But the atrium produces at least one wide-span MAC.
        assert!(wide > 0, "expected some atrium spillover (hist={hist:?})");
    }

    #[test]
    fn atrium_free_building_has_no_very_wide_macs() {
        let b = BuildingConfig::new("m", 8)
            .samples_per_floor(50)
            .aps_per_floor(10)
            .atrium_aps(0)
            .seed(6)
            .generate();
        let hist = stats::mac_floor_span_histogram(&b);
        let very_wide: usize = hist[5..].iter().sum();
        assert_eq!(very_wide, 0, "hist={hist:?}");
    }

    #[test]
    #[should_panic(expected = "at least one floor")]
    fn zero_floors_panics() {
        let _ = BuildingConfig::new("t", 0);
    }
}
