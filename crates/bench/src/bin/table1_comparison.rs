//! Regenerates Table I: FIS-ONE vs SDCN/DAEGC/METIS/MDS.
fn main() {
    let rows = fis_bench::experiments::build_cache(16);
    fis_bench::experiments::table1(&rows);
}
