//! CI perf-regression gate over the stage micro-benchmarks.
//!
//! Compares a fresh machine-readable bench report (written by the
//! criterion shim when `CRITERION_JSON` is set) against the checked-in
//! `bench/baseline.json`, per stage, on **median ns**:
//!
//! ```bash
//! CRITERION_JSON=BENCH_stages.json CRITERION_QUICK=1 \
//!     cargo bench -p fis-bench --bench stages
//! cargo run -p fis-bench --bin perf_gate -- \
//!     --current BENCH_stages.json --baseline bench/baseline.json --threshold 2.5
//! ```
//!
//! Exit 1 when any stage regressed beyond the threshold or a baselined
//! stage disappeared; new stages not yet in the baseline only warn.
//! The threshold is deliberately generous — CI runners are noisy and
//! heterogeneous; the gate exists to catch order-of-magnitude mistakes
//! (an accidental O(n³) rescan, a lost parallel fan-out), while the
//! uploaded `BENCH_stages.json` artifacts accumulate the fine-grained
//! trajectory.

use std::collections::BTreeMap;
use std::process::ExitCode;

use fis_types::json::Json;

fn fail(msg: &str) -> ExitCode {
    eprintln!("perf_gate: error: {msg}");
    ExitCode::from(2)
}

fn load_stages(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let json = Json::parse(text.trim()).map_err(|e| format!("parsing {path}: {e}"))?;
    let schema = json.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "fis-one/bench-report" {
        return Err(format!(
            "{path}: unknown schema `{schema}` (expected fis-one/bench-report)"
        ));
    }
    let Some(Json::Obj(stages)) = json.get("stages") else {
        return Err(format!("{path}: missing `stages` object"));
    };
    stages
        .iter()
        .map(|(name, entry)| {
            entry
                .get("median_ns")
                .and_then(Json::as_f64)
                .filter(|m| *m > 0.0)
                .map(|m| (name.clone(), m))
                .ok_or_else(|| format!("{path}: stage `{name}` has no positive `median_ns`"))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut current_path = None;
    let mut baseline_path = None;
    let mut threshold = 2.5f64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            return fail(&format!("flag {flag} needs a value"));
        };
        match flag.as_str() {
            "--current" => current_path = Some(value.clone()),
            "--baseline" => baseline_path = Some(value.clone()),
            "--threshold" => match value.parse::<f64>() {
                Ok(t) if t > 1.0 => threshold = t,
                _ => return fail(&format!("--threshold must be > 1.0, got `{value}`")),
            },
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }
    let (Some(current_path), Some(baseline_path)) = (current_path, baseline_path) else {
        return fail("usage: perf_gate --current FILE --baseline FILE [--threshold X]");
    };
    let current = match load_stages(&current_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let baseline = match load_stages(&baseline_path) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };

    println!(
        "{:<50} {:>14} {:>14} {:>8}",
        "stage", "baseline ns", "current ns", "ratio"
    );
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    for (stage, &base_ns) in &baseline {
        match current.get(stage) {
            None => {
                println!("{stage:<50} {base_ns:>14.0} {:>14} {:>8}", "MISSING", "-");
                missing.push(stage.clone());
            }
            Some(&cur_ns) => {
                let ratio = cur_ns / base_ns;
                let verdict = if ratio > threshold {
                    "  << REGRESSED"
                } else {
                    ""
                };
                println!("{stage:<50} {base_ns:>14.0} {cur_ns:>14.0} {ratio:>7.2}x{verdict}");
                if ratio > threshold {
                    regressions.push((stage.clone(), ratio));
                }
            }
        }
    }
    for stage in current.keys() {
        if !baseline.contains_key(stage) {
            eprintln!(
                "perf_gate: note: stage `{stage}` is not in the baseline yet; \
                 add it to {baseline_path} to start gating it"
            );
        }
    }

    if !missing.is_empty() {
        eprintln!(
            "perf_gate: FAIL: {} baselined stage(s) missing from the current run: {}",
            missing.len(),
            missing.join(", ")
        );
    }
    if !regressions.is_empty() {
        eprintln!(
            "perf_gate: FAIL: {} stage(s) regressed beyond {threshold}x:",
            regressions.len()
        );
        for (stage, ratio) in &regressions {
            eprintln!("  {stage}: {ratio:.2}x");
        }
    }
    if missing.is_empty() && regressions.is_empty() {
        println!(
            "perf_gate: OK — {} stages within {threshold}x of baseline",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
