//! Regenerates Figure 14: bottom vs random-floor labeled sample.
fn main() {
    let (_, max_buildings, repeats) = fis_bench::experiments::sweep_sizes();
    fis_bench::experiments::fig14(max_buildings, repeats);
}
