//! `drift_eval`: accuracy decay vs. online-extension cadence under drift.
//!
//! Replays the temporal scenarios of `fis_synth::TemporalConfig` — AP
//! churn, fleet-wide RSSI calibration offset, and a one-shot renovation —
//! against a model fitted on the epoch-0 survey, prequentially: every
//! epoch is first *assigned* with the model as it stands (scored against
//! the generator's ground truth), and only then, per the cadence under
//! test, folded into the model with [`FittedModel::extend`]. Cadence 0
//! never extends (the frozen-model baseline the paper's refit-only
//! deployment implies); cadence `c` extends after every `c`-th epoch.
//!
//! The run is fully deterministic: corpora come from seeded generators
//! and extension is a pure function of (model, scans), so the emitted
//! accuracy table is byte-stable across machines and thread counts.
//!
//! Output: `BENCH_drift.json` (override with `--out FILE`), schema
//! `fis-one/bench-drift` version 1 — one row per (scenario, cadence)
//! with per-epoch accuracy, extension counters, and a mean. With
//! `--bench-json FILE` the harness additionally merges a `drift/extend`
//! stage (nanoseconds per extend call) into a `fis-one/bench-report`
//! file so the CI perf gate covers extension latency.
//!
//! `CRITERION_QUICK=1` (the CI convention shared with the Criterion
//! benches) shrinks the corpus so the whole sweep stays in CI budget.

use std::collections::HashMap;
use std::time::Instant;

use fis_core::{FisOne, FisOneConfig, FittedModel};
use fis_synth::{BuildingConfig, DriftScenario, TemporalConfig};
use fis_types::json::Json;

/// Seed shared by every scenario so runs are comparable commit to commit.
const SEED: u64 = 2023;

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
}

/// Corpus shape: (floors, samples/floor, aps/floor, epochs, scans/epoch).
fn shape() -> (usize, usize, usize, usize, usize) {
    if quick_mode() {
        (3, 30, 8, 4, 40)
    } else {
        (4, 60, 10, 6, 80)
    }
}

/// The three drift scenarios the acceptance criteria name, at strengths
/// that visibly decay a frozen model within the epoch budget.
fn scenarios(epochs: usize) -> Vec<(&'static str, DriftScenario)> {
    vec![
        (
            "churn",
            DriftScenario::ApChurn {
                replaced_per_epoch: 0.15,
            },
        ),
        (
            "calibration",
            DriftScenario::CalibrationOffset { db_per_epoch: 1.5 },
        ),
        (
            "renovation",
            DriftScenario::Renovation {
                at_epoch: epochs / 2,
                moved_fraction: 0.5,
            },
        ),
    ]
}

struct EpochRow {
    epoch: usize,
    scans: usize,
    answered: usize,
    correct: usize,
    extended: bool,
    appended: usize,
    new_macs: usize,
}

impl EpochRow {
    /// Unanswerable scans (no vocabulary overlap at all) count against
    /// accuracy: a deployment cannot shrug them off either.
    fn accuracy(&self) -> f64 {
        self.correct as f64 / self.scans as f64
    }
}

/// Replays one (scenario, cadence) cell and returns its per-epoch rows,
/// appending each extend call's duration to `extend_ns`.
fn replay(
    scenario: &DriftScenario,
    cadence: usize,
    extend_ns: &mut Vec<f64>,
) -> Result<Vec<EpochRow>, String> {
    let (floors, samples, aps, epochs, scans_per_epoch) = shape();
    let corpus = TemporalConfig::new(
        BuildingConfig::new("drift", floors)
            .samples_per_floor(samples)
            .aps_per_floor(aps)
            .seed(SEED),
        scenario.clone(),
    )
    .epochs(epochs)
    .scans_per_epoch(scans_per_epoch)
    .generate();

    let building = &corpus.building;
    let anchor = building
        .bottom_anchor()
        .ok_or("survey has no bottom-floor anchor")?;
    let pipeline = FisOne::new(FisOneConfig::quick(SEED));
    let mut model: FittedModel = pipeline
        .fit(
            building.name(),
            building.samples(),
            building.floors(),
            anchor,
        )
        .map_err(|e| format!("fitting the survey: {e}"))?;

    let mut rows = Vec::with_capacity(corpus.epochs.len());
    for epoch in &corpus.epochs {
        // Predict first (prequential): the epoch is scored by the model
        // as it stood *before* this epoch's scans could teach it anything.
        let mut answered = 0usize;
        let mut correct = 0usize;
        for (scan, truth) in epoch.samples.iter().zip(&epoch.ground_truth) {
            if let Ok(floor) = model.assign(scan) {
                answered += 1;
                if floor == *truth {
                    correct += 1;
                }
            }
        }
        let mut row = EpochRow {
            epoch: epoch.epoch,
            scans: epoch.samples.len(),
            answered,
            correct,
            extended: false,
            appended: 0,
            new_macs: 0,
        };
        if cadence > 0 && epoch.epoch % cadence == 0 {
            let started = Instant::now();
            match model.extend(&epoch.samples) {
                Ok(report) => {
                    extend_ns.push(started.elapsed().as_secs_f64() * 1e9);
                    row.extended = true;
                    row.appended = report.appended;
                    row.new_macs = report.new_macs;
                }
                // A fully disjoint epoch (every scan skipped) is a legal
                // drift outcome, not a harness bug: the model simply
                // cannot absorb it and stays frozen this round.
                Err(fis_core::FisError::Model(_)) => {}
                Err(e) => return Err(format!("extending at epoch {}: {e}", epoch.epoch)),
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

fn row_json(row: &EpochRow) -> Json {
    Json::obj([
        ("epoch", Json::Num(row.epoch as f64)),
        ("scans", Json::Num(row.scans as f64)),
        ("answered", Json::Num(row.answered as f64)),
        ("correct", Json::Num(row.correct as f64)),
        ("accuracy", Json::Num(row.accuracy())),
        ("extended", Json::Bool(row.extended)),
        ("appended", Json::Num(row.appended as f64)),
        ("new_macs", Json::Num(row.new_macs as f64)),
    ])
}

/// Merges a `drift/extend` stage into a `fis-one/bench-report` file,
/// mirroring loadgen's `serve/loadgen` merge so one report feeds the gate.
fn merge_bench_stage(path: &str, latencies_ns: &[f64]) -> Result<(), String> {
    let mut sorted = latencies_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if sorted.is_empty() {
        return Err("no extend calls ran; nothing to merge".into());
    }
    let median = sorted[sorted.len() / 2];
    let stage = Json::obj([
        ("median_ns", Json::Num(median)),
        ("best_ns", Json::Num(sorted[0])),
        (
            "mean_ns",
            Json::Num(sorted.iter().sum::<f64>() / sorted.len() as f64),
        ),
        ("samples", Json::Num(sorted.len() as f64)),
        ("iters", Json::Num(1.0)),
    ]);
    let mut report = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(text.trim()).map_err(|e| format!("parsing {path}: {e}"))?,
        Err(_) => Json::obj([
            ("schema", Json::Str("fis-one/bench-report".into())),
            ("version", Json::Num(1.0)),
            ("mode", Json::Str("drift".into())),
            ("stages", Json::obj([])),
        ]),
    };
    let Json::Obj(root) = &mut report else {
        return Err(format!("{path}: report is not an object"));
    };
    let Some(Json::Obj(stages)) = root.get_mut("stages") else {
        return Err(format!("{path}: missing `stages` object"));
    };
    stages.insert("drift/extend".to_owned(), stage);
    std::fs::write(path, format!("{report}\n")).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# drift_eval: merged stage drift/extend into {path} (median {median:.0} ns)");
    Ok(())
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{flag}`"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    Ok(map)
}

fn main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_flags(&args).map_err(|e| {
        format!("{e}\nusage: drift_eval [--out BENCH_drift.json] [--bench-json FILE]")
    })?;
    let out = opts
        .get("out")
        .map(String::as_str)
        .unwrap_or("BENCH_drift.json");

    let (_, _, _, epochs, _) = shape();
    let cadences = [0usize, 1, 2];
    let mut extend_ns = Vec::new();
    let mut scenario_rows = Vec::new();
    for (name, scenario) in scenarios(epochs) {
        for cadence in cadences {
            let started = Instant::now();
            let rows = replay(&scenario, cadence, &mut extend_ns)
                .map_err(|e| format!("scenario `{name}` cadence {cadence}: {e}"))?;
            let mean = rows.iter().map(EpochRow::accuracy).sum::<f64>() / rows.len().max(1) as f64;
            eprintln!(
                "# drift_eval: {name:<12} cadence {cadence}: mean accuracy {mean:.3} \
                 over {} epochs in {:.2?}",
                rows.len(),
                started.elapsed()
            );
            scenario_rows.push(Json::obj([
                ("scenario", Json::Str(name.into())),
                ("cadence", Json::Num(cadence as f64)),
                ("mean_accuracy", Json::Num(mean)),
                ("epochs", Json::Arr(rows.iter().map(row_json).collect())),
            ]));
        }
    }

    let report = Json::obj([
        ("schema", Json::Str("fis-one/bench-drift".into())),
        ("version", Json::Num(1.0)),
        (
            "mode",
            Json::Str(if quick_mode() { "quick" } else { "full" }.into()),
        ),
        ("seed", Json::Num(SEED as f64)),
        ("scenarios", Json::Arr(scenario_rows)),
    ]);
    std::fs::write(out, format!("{report}\n")).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("# drift_eval: wrote {out}");

    if let Some(path) = opts.get("bench-json") {
        merge_bench_stage(path, &extend_ns)?;
    }
    Ok(())
}
