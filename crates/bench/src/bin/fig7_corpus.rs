//! Regenerates Figure 7: buildings by floor count.
fn main() {
    fis_bench::experiments::fig7();
}
