//! Load generator for the `fis-serve` daemon.
//!
//! Replays a synthetic multi-building request stream against a daemon
//! and reports client-side throughput plus the daemon's own serving
//! metrics (cache hits/misses/evictions, p50/p99 latency). Two modes:
//!
//! - **self-hosted** (default): fits `--buildings` synthetic models into
//!   a temp directory, starts an in-process daemon on a loopback TCP
//!   listener — the exact `Daemon::serve_tcp` path `fis-one serve --tcp`
//!   runs — replays against it, then shuts it down.
//! - **external**: `--addr HOST:PORT` replays against an already running
//!   `fis-one serve --tcp` daemon (no shutdown is sent unless
//!   `--shutdown 1`).
//!
//! The stream is deterministic in `--seed`: building choice, batch
//! composition, and the periodic `evict` injections (`--evict-every`)
//! replay identically, so two runs differ only in timing.
//!
//! `--zipf ALPHA` skews scan selection by a Zipf(ALPHA) law over each
//! building's samples (rank 0 most popular) instead of uniformly; with
//! `--assign-cache C` set on the self-hosted daemon the repeated heads
//! of the distribution hit the answer cache, and the final report shows
//! the daemon's cache hit rate.
//!
//! ```bash
//! cargo run --release -p fis-bench --bin loadgen -- \
//!     --buildings 6 --floors 3 --samples 40 --requests 200 --batch 16 \
//!     --evict-every 50 --max-models 4 --zipf 1.1 --assign-cache 256
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use fis_core::{EngineConfig, FisEngine, FisOneConfig};
use fis_serve::{Daemon, DaemonConfig, RegistryConfig};
use fis_synth::BuildingConfig;
use fis_types::json::{Json, ToJson};
use fis_types::{Building, Dataset};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

struct Opts {
    buildings: usize,
    floors: usize,
    samples: usize,
    requests: usize,
    batch: usize,
    seed: u64,
    threads: usize,
    max_models: usize,
    evict_every: usize,
    assign_cache: usize,
    zipf: f64,
    addr: Option<String>,
    shutdown: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{flag}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    let num = |key: &str, default: usize| -> Result<usize, String> {
        map.get(key)
            .map(|s| s.parse().map_err(|_| format!("invalid --{key}: `{s}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let fnum = |key: &str, default: f64| -> Result<f64, String> {
        map.get(key)
            .map(|s| s.parse().map_err(|_| format!("invalid --{key}: `{s}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    Ok(Opts {
        buildings: num("buildings", 4)?.max(1),
        floors: num("floors", 3)?.max(2),
        samples: num("samples", 30)?.max(5),
        requests: num("requests", 100)?.max(1),
        batch: num("batch", 8)?.max(1),
        seed: num("seed", 1)? as u64,
        threads: num("threads", 0)?,
        max_models: num("max-models", 0)?,
        evict_every: num("evict-every", 0)?,
        assign_cache: num("assign-cache", 0)?,
        zipf: fnum("zipf", 0.0)?.max(0.0),
        addr: map.get("addr").cloned(),
        shutdown: num("shutdown", 0)? != 0,
    })
}

/// The synthetic fleet the stream draws scans from; built identically in
/// self-hosted and external modes so `--addr` runs can replay against a
/// daemon serving the same artifacts.
fn fleet(opts: &Opts) -> Vec<Building> {
    (0..opts.buildings)
        .map(|i| {
            BuildingConfig::new(format!("load-{i}"), opts.floors)
                .samples_per_floor(opts.samples)
                .aps_per_floor(8)
                .atrium_aps(0)
                .seed(opts.seed.wrapping_add(i as u64))
                .generate()
        })
        .collect()
}

/// Cumulative Zipf(alpha) weights over ranks `0..n` (rank 0 heaviest);
/// a uniform draw into the final total inverts to a rank by binary
/// search.
fn zipf_cumulative(n: usize, alpha: f64) -> Vec<f64> {
    let mut total = 0.0;
    (0..n)
        .map(|i| {
            total += ((i + 1) as f64).powf(-alpha);
            total
        })
        .collect()
}

fn main() -> Result<(), String> {
    let opts = parse_opts()?;
    let buildings = fleet(&opts);

    // Self-hosted mode: fit + save the fleet, start the daemon thread.
    let (addr, daemon_thread, model_dir) = match &opts.addr {
        Some(addr) => (addr.clone(), None, None),
        None => {
            let dir = std::env::temp_dir().join(format!("fis_loadgen_{}", std::process::id()));
            std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            let corpus = Dataset::new("loadgen", buildings.clone());
            let fit_started = Instant::now();
            let engine = FisEngine::new(
                EngineConfig::default()
                    .pipeline(FisOneConfig::quick(opts.seed))
                    .threads(opts.threads),
            );
            let fit = engine.fit_corpus(&corpus);
            if let Some((run, err)) = fit.failures().next() {
                return Err(format!("fitting {} failed: {err}", run.building));
            }
            for (run, model) in fit.successes() {
                model
                    .save(dir.join(format!("{}.json", run.building)))
                    .map_err(|e| e.to_string())?;
            }
            eprintln!(
                "# loadgen: fitted {} models in {:.2?}",
                corpus.len(),
                fit_started.elapsed()
            );
            let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
            let addr = listener
                .local_addr()
                .map_err(|e| format!("local_addr: {e}"))?
                .to_string();
            let mut daemon = Daemon::new(
                DaemonConfig::new(
                    RegistryConfig::new(&dir)
                        .max_models(opts.max_models)
                        .assign_cache(opts.assign_cache),
                )
                .threads(opts.threads),
            );
            let handle = std::thread::spawn(move || {
                daemon.serve_tcp(&listener).expect("daemon accept loop");
            });
            (addr, Some(handle), Some(dir))
        }
    };

    // Replay a deterministic request stream.
    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x010a_d6e4);
    let mut line = String::new();
    let mut roundtrip = |writer: &mut TcpStream, request: &Json| -> Result<Json, String> {
        writeln!(writer, "{request}").map_err(|e| format!("send: {e}"))?;
        line.clear();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("recv: {e}"))?;
        Json::parse(line.trim()).map_err(|e| format!("bad response: {e}"))
    };

    let zipf_tables: Vec<Vec<f64>> = buildings
        .iter()
        .map(|b| {
            if opts.zipf > 0.0 {
                zipf_cumulative(b.samples().len(), opts.zipf)
            } else {
                Vec::new()
            }
        })
        .collect();
    let started = Instant::now();
    let mut scans_sent = 0usize;
    let mut failed_requests = 0usize;
    for r in 0..opts.requests {
        let b = rng.gen_range(0..buildings.len());
        let building = &buildings[b];
        if opts.evict_every > 0 && r > 0 && r % opts.evict_every == 0 {
            let evict = Json::obj([
                ("op", Json::Str("evict".into())),
                ("building", Json::Str(building.name().to_owned())),
            ]);
            roundtrip(&mut writer, &evict)?;
        }
        let scans: Vec<Json> = (0..opts.batch)
            .map(|_| {
                let n = building.samples().len();
                let s = if opts.zipf > 0.0 {
                    let cumulative = &zipf_tables[b];
                    let draw = rng.gen_range(0.0..*cumulative.last().expect("n >= 1"));
                    cumulative.partition_point(|&c| c <= draw).min(n - 1)
                } else {
                    rng.gen_range(0..n)
                };
                building.samples()[s].to_json()
            })
            .collect();
        scans_sent += scans.len();
        let request = Json::obj([
            ("op", Json::Str("assign_batch".into())),
            ("building", Json::Str(building.name().to_owned())),
            ("scans", Json::Arr(scans)),
            ("id", Json::Num(r as f64)),
        ]);
        let response = roundtrip(&mut writer, &request)?;
        if response.get("ok") != Some(&Json::Bool(true))
            || response.get("failures").and_then(Json::as_usize) != Some(0)
        {
            failed_requests += 1;
        }
    }
    let wall = started.elapsed();

    let stats = roundtrip(&mut writer, &Json::obj([("op", Json::Str("stats".into()))]))?;
    if daemon_thread.is_some() || opts.shutdown {
        roundtrip(
            &mut writer,
            &Json::obj([("op", Json::Str("shutdown".into()))]),
        )?;
    }
    drop(writer);
    if let Some(handle) = daemon_thread {
        handle.join().map_err(|_| "daemon thread panicked")?;
    }
    if let Some(dir) = model_dir {
        std::fs::remove_dir_all(&dir).ok();
    }

    let secs = wall.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {} requests ({} scans) over {} buildings in {:.2?} — {:.0} req/s, {:.0} scans/s, {} failed",
        opts.requests,
        scans_sent,
        opts.buildings,
        wall,
        opts.requests as f64 / secs,
        scans_sent as f64 / secs,
        failed_requests,
    );
    println!("daemon stats: {}", stats.get("stats").unwrap_or(&stats));
    if let Some(cache) = stats.get("stats").and_then(|s| s.get("assign_cache")) {
        let count = |key: &str| cache.get(key).and_then(Json::as_usize).unwrap_or(0);
        let (hits, misses) = (count("hits"), count("misses"));
        println!(
            "assign cache: {} hits / {} lookups ({:.1}% hit rate, {} evictions)",
            hits,
            hits + misses,
            100.0 * hits as f64 / ((hits + misses).max(1)) as f64,
            count("evictions"),
        );
    }
    if failed_requests > 0 {
        return Err(format!("{failed_requests} request(s) failed"));
    }
    Ok(())
}
