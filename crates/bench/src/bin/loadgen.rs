//! Load generator for the `fis-serve` daemon and the `fis-router` tier.
//!
//! Replays a synthetic multi-building request stream against a serving
//! endpoint and reports client-side throughput + latency quantiles plus
//! the server's own metrics. Three self-hosted topologies and one
//! external mode:
//!
//! - **single daemon** (default): fits `--buildings` synthetic models
//!   into a temp directory, starts an in-process daemon on a loopback
//!   TCP listener — the exact `Daemon::serve_tcp` path `fis-one serve
//!   --tcp` runs — replays against it, then shuts it down.
//! - **sharded**: `--shards N` starts N daemons over the same model
//!   directory behind an in-process `fis-router` (`--replicas R`), and
//!   the stream goes through the router.
//! - **external**: `--addr HOST:PORT` replays against an already
//!   running daemon or router (no shutdown is sent unless
//!   `--shutdown 1`).
//!
//! `--connections C` replays the stream over C concurrent client
//! connections (request `r` goes to connection `r mod C`, so the
//! request *set* is identical at any concurrency), reporting overall
//! throughput and per-request p50/p99 under contention. `--idle K`
//! additionally holds K open connections that never send a byte for the
//! whole run: under the old sequential accept loop one of these would
//! stall everything behind it, so a finishing run with `--idle 1` is
//! itself the no-head-of-line-stalling proof. The pool defaults to
//! `connections + idle + 1` workers so concurrency is limited by the
//! protocol, not the harness; `--pool W` overrides.
//!
//! The stream is deterministic in `--seed`: building choice, batch
//! composition, and the periodic `evict` injections (`--evict-every`)
//! replay identically, so two runs differ only in timing — and, by the
//! serving determinism contract, in *nothing else*, at any
//! `--connections`, shard count, or replica placement.
//!
//! `--zipf ALPHA` skews scan selection by a Zipf(ALPHA) law over each
//! building's samples (rank 0 most popular) instead of uniformly; with
//! `--assign-cache C` set on the self-hosted daemons the repeated heads
//! of the distribution hit the answer cache, and the final report shows
//! the cache hit rate.
//!
//! `--bench-json FILE` merges a `serve/loadgen` stage (median/best/mean
//! ns per request, plus failed-request count, answer-cache hit rate,
//! and per-connection p50/p99) into a `fis-one/bench-report` file,
//! creating it if missing — CI folds the concurrent-serving number into
//! `BENCH_stages.json` so the perf gate watches it.
//!
//! ```bash
//! cargo run --release -p fis-bench --bin loadgen -- \
//!     --buildings 6 --floors 3 --samples 40 --requests 200 --batch 16 \
//!     --connections 8 --idle 1 --shards 3 --replicas 2 \
//!     --evict-every 50 --zipf 1.1 --assign-cache 256
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use fis_core::{EngineConfig, FisEngine, FisOneConfig};
use fis_metrics::Quantiles;
use fis_serve::{Daemon, DaemonConfig, RegistryConfig, Router, RouterConfig};
use fis_synth::BuildingConfig;
use fis_types::json::{Json, ToJson};
use fis_types::{Building, Dataset};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

struct Opts {
    buildings: usize,
    floors: usize,
    samples: usize,
    requests: usize,
    batch: usize,
    seed: u64,
    threads: usize,
    max_models: usize,
    evict_every: usize,
    assign_cache: usize,
    zipf: f64,
    connections: usize,
    idle: usize,
    pool: usize,
    shards: usize,
    replicas: usize,
    bench_json: Option<String>,
    addr: Option<String>,
    shutdown: bool,
}

const USAGE: &str = "\
loadgen: concurrent load generator for fis-serve / fis-router

USAGE:
    loadgen [--buildings N] [--floors N] [--samples N] [--requests N]
            [--batch N] [--seed S] [--threads T] [--max-models N]
            [--evict-every N] [--assign-cache C] [--zipf ALPHA]
            [--connections C] [--idle K] [--pool W]
            [--shards N] [--replicas R]
            [--addr HOST:PORT] [--shutdown 0|1] [--bench-json FILE]

Replays a deterministic multi-building request stream over C concurrent
connections against a self-hosted daemon (default), a self-hosted
sharded router (--shards N), or an external endpoint (--addr), and
reports throughput, per-request p50/p99 latency, and server stats.";

fn parse_opts() -> Result<Opts, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{flag}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    let num = |key: &str, default: usize| -> Result<usize, String> {
        map.get(key)
            .map(|s| s.parse().map_err(|_| format!("invalid --{key}: `{s}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let fnum = |key: &str, default: f64| -> Result<f64, String> {
        map.get(key)
            .map(|s| s.parse().map_err(|_| format!("invalid --{key}: `{s}`")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    Ok(Opts {
        buildings: num("buildings", 4)?.max(1),
        floors: num("floors", 3)?.max(2),
        samples: num("samples", 30)?.max(5),
        requests: num("requests", 100)?.max(1),
        batch: num("batch", 8)?.max(1),
        seed: num("seed", 1)? as u64,
        threads: num("threads", 0)?,
        max_models: num("max-models", 0)?,
        evict_every: num("evict-every", 0)?,
        assign_cache: num("assign-cache", 0)?,
        zipf: fnum("zipf", 0.0)?.max(0.0),
        connections: num("connections", 1)?.max(1),
        idle: num("idle", 0)?,
        pool: num("pool", 0)?,
        shards: num("shards", 0)?,
        replicas: num("replicas", 2)?.max(1),
        bench_json: map.get("bench-json").cloned(),
        addr: map.get("addr").cloned(),
        shutdown: num("shutdown", 0)? != 0,
    })
}

/// The synthetic fleet the stream draws scans from; built identically in
/// self-hosted and external modes so `--addr` runs can replay against a
/// daemon serving the same artifacts.
fn fleet(opts: &Opts) -> Vec<Building> {
    (0..opts.buildings)
        .map(|i| {
            BuildingConfig::new(format!("load-{i}"), opts.floors)
                .samples_per_floor(opts.samples)
                .aps_per_floor(8)
                .atrium_aps(0)
                .seed(opts.seed.wrapping_add(i as u64))
                .generate()
        })
        .collect()
}

/// Cumulative Zipf(alpha) weights over ranks `0..n` (rank 0 heaviest);
/// a uniform draw into the final total inverts to a rank by binary
/// search.
fn zipf_cumulative(n: usize, alpha: f64) -> Vec<f64> {
    let mut total = 0.0;
    (0..n)
        .map(|i| {
            total += ((i + 1) as f64).powf(-alpha);
            total
        })
        .collect()
}

/// One precomputed request of the stream.
struct Entry {
    request: String,
    /// `assign_batch` entries are checked for zero per-scan failures;
    /// injected evicts only for `ok`.
    is_batch: bool,
    scans: usize,
}

/// Precomputes the entire request stream with a single seeded RNG. The
/// stream — not the connection that happens to carry each request — is
/// the unit of determinism: replaying entry `r` on connection `r mod C`
/// keeps the request set byte-identical at any concurrency.
fn build_stream(opts: &Opts, buildings: &[Building]) -> Vec<Entry> {
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x010a_d6e4);
    let zipf_tables: Vec<Vec<f64>> = buildings
        .iter()
        .map(|b| {
            if opts.zipf > 0.0 {
                zipf_cumulative(b.samples().len(), opts.zipf)
            } else {
                Vec::new()
            }
        })
        .collect();
    let mut entries = Vec::new();
    for r in 0..opts.requests {
        let b = rng.gen_range(0..buildings.len());
        let building = &buildings[b];
        if opts.evict_every > 0 && r > 0 && r % opts.evict_every == 0 {
            let evict = Json::obj([
                ("op", Json::Str("evict".into())),
                ("building", Json::Str(building.name().to_owned())),
            ]);
            entries.push(Entry {
                request: evict.to_string(),
                is_batch: false,
                scans: 0,
            });
        }
        let scans: Vec<Json> = (0..opts.batch)
            .map(|_| {
                let n = building.samples().len();
                let s = if opts.zipf > 0.0 {
                    let cumulative = &zipf_tables[b];
                    let draw = rng.gen_range(0.0..*cumulative.last().expect("n >= 1"));
                    cumulative.partition_point(|&c| c <= draw).min(n - 1)
                } else {
                    rng.gen_range(0..n)
                };
                building.samples()[s].to_json()
            })
            .collect();
        let count = scans.len();
        let request = Json::obj([
            ("op", Json::Str("assign_batch".into())),
            ("building", Json::Str(building.name().to_owned())),
            ("scans", Json::Arr(scans)),
            ("id", Json::Num(r as f64)),
        ]);
        entries.push(Entry {
            request: request.to_string(),
            is_batch: true,
            scans: count,
        });
    }
    entries
}

/// One connected NDJSON client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl Client {
    fn connect(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Self {
            reader,
            writer: stream,
            line: String::new(),
        })
    }

    fn roundtrip(&mut self, request: &str) -> Result<Json, String> {
        writeln!(self.writer, "{request}").map_err(|e| format!("send: {e}"))?;
        self.line.clear();
        self.reader
            .read_line(&mut self.line)
            .map_err(|e| format!("recv: {e}"))?;
        Json::parse(self.line.trim()).map_err(|e| format!("bad response: {e}"))
    }
}

/// What one replay connection measured.
struct ConnReport {
    latencies_ns: Vec<f64>,
    scans: usize,
    failed: usize,
}

/// Replays `entries` (already filtered to this connection's share) over
/// one connection, timing each request.
fn replay(addr: &str, entries: &[&Entry]) -> Result<ConnReport, String> {
    let mut client = Client::connect(addr)?;
    let mut report = ConnReport {
        latencies_ns: Vec::with_capacity(entries.len()),
        scans: 0,
        failed: 0,
    };
    for entry in entries {
        let started = Instant::now();
        let response = client.roundtrip(&entry.request)?;
        report
            .latencies_ns
            .push(started.elapsed().as_secs_f64() * 1e9);
        let ok = response.get("ok") == Some(&Json::Bool(true))
            && (!entry.is_batch || response.get("failures").and_then(Json::as_usize) == Some(0));
        if ok {
            report.scans += entry.scans;
        } else {
            report.failed += 1;
        }
    }
    Ok(report)
}

/// Client-side outcome counters folded into the report and the bench
/// stage: request errors plus the server's answer-cache hit rate.
struct RunOutcome {
    failed_requests: usize,
    cache_hits: usize,
    cache_misses: usize,
    /// `(p50_ns, p99_ns, requests)` per replay connection, in
    /// connection order.
    per_connection: Vec<(f64, f64, usize)>,
}

impl RunOutcome {
    fn cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.cache_hits + self.cache_misses;
        (lookups > 0).then(|| self.cache_hits as f64 / lookups as f64)
    }
}

/// Merges a `serve/loadgen` stage into a `fis-one/bench-report` file
/// (creating the file when absent), leaving every other stage intact.
fn merge_bench_stage(path: &str, latencies_ns: &[f64], outcome: &RunOutcome) -> Result<(), String> {
    let mut sorted = latencies_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if sorted.is_empty() {
        return Err("no latencies to report".into());
    }
    let median = sorted[sorted.len() / 2];
    let best = sorted[0];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let connections: Vec<Json> = outcome
        .per_connection
        .iter()
        .map(|&(p50, p99, requests)| {
            Json::obj([
                ("p50_ns", Json::Num(p50)),
                ("p99_ns", Json::Num(p99)),
                ("requests", Json::Num(requests as f64)),
            ])
        })
        .collect();
    let mut stage_fields = vec![
        ("median_ns", Json::Num(median)),
        ("best_ns", Json::Num(best)),
        ("mean_ns", Json::Num(mean)),
        ("samples", Json::Num(sorted.len() as f64)),
        ("iters", Json::Num(1.0)),
        ("failed_requests", Json::Num(outcome.failed_requests as f64)),
        ("connections", Json::Arr(connections)),
    ];
    if let Some(rate) = outcome.cache_hit_rate() {
        stage_fields.push(("cache_hit_rate", Json::Num(rate)));
    }
    let stage = Json::obj(stage_fields);
    let mut report = match std::fs::read_to_string(path) {
        Ok(text) => Json::parse(text.trim()).map_err(|e| format!("parsing {path}: {e}"))?,
        Err(_) => Json::obj([
            ("schema", Json::Str("fis-one/bench-report".into())),
            ("version", Json::Num(1.0)),
            ("mode", Json::Str("loadgen".into())),
            ("stages", Json::obj([])),
        ]),
    };
    let Json::Obj(root) = &mut report else {
        return Err(format!("{path}: report is not an object"));
    };
    let Some(Json::Obj(stages)) = root.get_mut("stages") else {
        return Err(format!("{path}: missing `stages` object"));
    };
    stages.insert("serve/loadgen".to_owned(), stage);
    std::fs::write(path, format!("{report}\n")).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("# loadgen: merged stage serve/loadgen into {path} (median {median:.0} ns)");
    Ok(())
}

/// The self-hosted serving tier: daemon/router threads to join and the
/// endpoint clients dial.
struct Hosted {
    addr: String,
    handles: Vec<std::thread::JoinHandle<()>>,
    model_dir: Option<std::path::PathBuf>,
}

/// Fits the fleet's models and starts the self-hosted tier: one pooled
/// daemon, or `--shards` pooled daemons behind an in-process router.
fn host(opts: &Opts, buildings: &[Building]) -> Result<Hosted, String> {
    let dir = std::env::temp_dir().join(format!("fis_loadgen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let corpus = Dataset::new("loadgen", buildings.to_vec());
    let fit_started = Instant::now();
    let engine = FisEngine::new(
        EngineConfig::default()
            .pipeline(FisOneConfig::quick(opts.seed))
            .threads(opts.threads),
    );
    let fit = engine.fit_corpus(&corpus);
    if let Some((run, err)) = fit.failures().next() {
        return Err(format!("fitting {} failed: {err}", run.building));
    }
    for (run, model) in fit.successes() {
        model
            .save(dir.join(format!("{}.json", run.building)))
            .map_err(|e| e.to_string())?;
    }
    eprintln!(
        "# loadgen: fitted {} models in {:.2?}",
        corpus.len(),
        fit_started.elapsed()
    );

    // Enough workers that the measured contention is the protocol's,
    // not an artificially starved pool (idle connections pin a worker
    // each; +1 for the control connection).
    let pool = if opts.pool > 0 {
        opts.pool
    } else {
        opts.connections + opts.idle + 1
    };
    let daemon_config = || {
        DaemonConfig::new(
            RegistryConfig::new(&dir)
                .max_models(opts.max_models)
                .assign_cache(opts.assign_cache),
        )
        .threads(opts.threads)
        .pool(pool)
    };
    let mut handles = Vec::new();
    let spawn_daemon = |handles: &mut Vec<std::thread::JoinHandle<()>>| -> Result<String, String> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?
            .to_string();
        let daemon = Daemon::new(daemon_config());
        handles.push(std::thread::spawn(move || {
            daemon.serve_tcp(&listener).expect("daemon accept loop");
        }));
        Ok(addr)
    };
    let addr = if opts.shards == 0 {
        spawn_daemon(&mut handles)?
    } else {
        let shard_addrs = (0..opts.shards)
            .map(|_| spawn_daemon(&mut handles))
            .collect::<Result<Vec<_>, _>>()?;
        eprintln!(
            "# loadgen: {} shard(s) [{}], {} replica(s) per building",
            shard_addrs.len(),
            shard_addrs.join(", "),
            opts.replicas.min(opts.shards)
        );
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?
            .to_string();
        let router = Router::new(
            RouterConfig::new(shard_addrs)
                .replicas(opts.replicas)
                .pool(pool),
        );
        handles.push(std::thread::spawn(move || {
            router.serve_tcp(&listener).expect("router accept loop");
        }));
        addr
    };
    Ok(Hosted {
        addr,
        handles,
        model_dir: Some(dir),
    })
}

fn main() -> Result<(), String> {
    let opts = parse_opts()?;
    let buildings = fleet(&opts);
    let hosted = match &opts.addr {
        Some(addr) => Hosted {
            addr: addr.clone(),
            handles: Vec::new(),
            model_dir: None,
        },
        None => host(&opts, &buildings)?,
    };
    let addr = hosted.addr.clone();

    // Idle connections first: they sit open, sending nothing, for the
    // whole measured run. Under a sequential accept loop these would
    // stall every later connection; under the pool they only pin a
    // worker each.
    let idle: Vec<TcpStream> = (0..opts.idle)
        .map(|_| TcpStream::connect(&addr).map_err(|e| format!("idle connect {addr}: {e}")))
        .collect::<Result<_, _>>()?;

    let entries = build_stream(&opts, &buildings);
    let started = Instant::now();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.connections)
            .map(|c| {
                let share: Vec<&Entry> = entries
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % opts.connections == c)
                    .map(|(_, e)| e)
                    .collect();
                let addr = &addr;
                scope.spawn(move || replay(addr, &share))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay thread panicked"))
            .collect::<Result<_, _>>()
    })?;
    let wall = started.elapsed();
    drop(idle);

    // Control connection: stats, then shutdown for self-hosted tiers
    // (the router broadcasts it to its shards).
    let mut control = Client::connect(&addr)?;
    let stats = control.roundtrip(r#"{"op":"stats"}"#)?;
    if !hosted.handles.is_empty() || opts.shutdown {
        control.roundtrip(r#"{"op":"shutdown"}"#)?;
    }
    drop(control);
    for handle in hosted.handles {
        handle.join().map_err(|_| "serving thread panicked")?;
    }
    if let Some(dir) = hosted.model_dir {
        std::fs::remove_dir_all(&dir).ok();
    }

    let mut latency = Quantiles::new();
    let mut all_latencies = Vec::new();
    let mut per_connection = Vec::with_capacity(reports.len());
    let (mut scans_ok, mut failed_requests) = (0usize, 0usize);
    for report in &reports {
        let mut conn_latency = Quantiles::new();
        for &ns in &report.latencies_ns {
            latency.push(ns);
            conn_latency.push(ns);
            all_latencies.push(ns);
        }
        per_connection.push((
            conn_latency.p50().unwrap_or(0.0),
            conn_latency.p99().unwrap_or(0.0),
            report.latencies_ns.len(),
        ));
        scans_ok += report.scans;
        failed_requests += report.failed;
    }
    let secs = wall.as_secs_f64().max(1e-9);
    let total = entries.len();
    println!(
        "loadgen: {} requests ({} scans ok) over {} buildings, {} connection(s) + {} idle in {:.2?} — {:.0} req/s, {:.0} scans/s, {} failed",
        total,
        scans_ok,
        opts.buildings,
        opts.connections,
        opts.idle,
        wall,
        total as f64 / secs,
        scans_ok as f64 / secs,
        failed_requests,
    );
    println!(
        "latency: p50 {:.2} ms, p99 {:.2} ms, mean {:.2} ms, max {:.2} ms (per request, client-side)",
        latency.p50().unwrap_or(0.0) / 1e6,
        latency.p99().unwrap_or(0.0) / 1e6,
        latency.mean().unwrap_or(0.0) / 1e6,
        latency.max().unwrap_or(0.0) / 1e6,
    );
    for (c, &(p50, p99, requests)) in per_connection.iter().enumerate() {
        println!(
            "connection {c}: {requests} request(s), p50 {:.2} ms, p99 {:.2} ms",
            p50 / 1e6,
            p99 / 1e6,
        );
    }
    println!("server stats: {}", stats.get("stats").unwrap_or(&stats));
    let (mut cache_hits, mut cache_misses) = (0usize, 0usize);
    if let Some(cache) = stats.get("stats").and_then(|s| s.get("assign_cache")) {
        let count = |key: &str| cache.get(key).and_then(Json::as_usize).unwrap_or(0);
        cache_hits = count("hits");
        cache_misses = count("misses");
        println!(
            "assign cache: {} hits / {} lookups ({:.1}% hit rate, {} evictions)",
            cache_hits,
            cache_hits + cache_misses,
            100.0 * cache_hits as f64 / ((cache_hits + cache_misses).max(1)) as f64,
            count("evictions"),
        );
    }
    if let Some(path) = &opts.bench_json {
        let outcome = RunOutcome {
            failed_requests,
            cache_hits,
            cache_misses,
            per_connection,
        };
        merge_bench_stage(path, &all_latencies, &outcome)?;
    }
    if failed_requests > 0 {
        return Err(format!("{failed_requests} request(s) failed"));
    }
    Ok(())
}
