//! Regenerates Figures 8 and 9: the four ablations.
fn main() {
    let rows = fis_bench::experiments::build_cache(16);
    fis_bench::experiments::fig8_fig9(&rows);
}
