//! Regenerates Figures 10-11: the embedding-dimension sweep.
fn main() {
    let (dims, max_buildings, _) = fis_bench::experiments::sweep_sizes();
    fis_bench::experiments::fig10_fig11(&dims, max_buildings);
}
