//! Runs every experiment in sequence, sharing the expensive corpus cache.
//! `FIS_SCALE=full` switches to paper-sized corpora.
fn main() {
    use fis_bench::experiments as exp;
    exp::fig1b();
    exp::fig7();
    let rows = exp::build_cache(16);
    exp::table1(&rows);
    exp::fig8_fig9(&rows);
    exp::fig12(&rows);
    let (dims, max_buildings, repeats) = exp::sweep_sizes();
    exp::fig10_fig11(&dims, max_buildings);
    exp::fig14(max_buildings, repeats);
}
