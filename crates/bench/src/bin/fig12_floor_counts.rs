//! Regenerates Figure 12: metrics by building floor count.
fn main() {
    let rows = fis_bench::experiments::build_cache(16);
    fis_bench::experiments::fig12(&rows);
}
