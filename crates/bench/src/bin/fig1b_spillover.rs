//! Regenerates Figure 1(b): the MAC floor-span histogram.
fn main() {
    fis_bench::experiments::fig1b();
}
