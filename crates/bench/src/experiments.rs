//! Implementations of every table and figure in the paper's evaluation.
//!
//! Each experiment is a function so the thin `src/bin/*` wrappers and the
//! all-in-one `benches/experiments.rs` target share one implementation.
//! The expensive artifacts (RF-GNN embeddings) are computed once per
//! building in [`build_cache`] and reused by every ablation that permits
//! it (K-means reuses embeddings; Jaccard/2-opt reuse the clustering).

use fis_baselines::{BaselineClusterer, Daegc, Mds, Metis, Sdcn};
use fis_core::evaluate::score_prediction;
use fis_core::{
    identify_with_arbitrary_anchor, ArbitraryAnchorOutcome, ClusteringMethod, EvalResult, FisOne,
    FisOneConfig, SimilarityMethod, TspSolver,
};
use fis_synth::Scale;
use fis_types::{Building, FloorId};

use crate::harness::{
    corpora, print_histogram, print_table, run_baseline, MetricAccumulator, CORPUS_SEED,
};

/// Figure 1(b): the spillover histogram of the eight-floor mall.
pub fn fig1b() {
    let mall = fis_synth::fig1b_mall(CORPUS_SEED);
    let hist = fis_types::stats::mac_floor_span_histogram(&mall);
    let labels: Vec<String> = (1..=hist.len()).map(|k| k.to_string()).collect();
    print_histogram(
        "Figure 1(b): number of MACs vs number of floors a MAC is detected on",
        &labels,
        &hist,
    );
    println!(
        "total MACs detected: {}",
        fis_types::stats::total_macs(&mall)
    );
    let (adj, far) = fis_types::stats::spillover_contrast(&mall, 3);
    println!("mean shared MACs: adjacent floors {adj:.1}, floors >=3 apart {far:.1}");
}

/// Figure 7: distribution of buildings by floor count (both corpora).
pub fn fig7() {
    let (ms, ours) = corpora();
    let mut hist = ms.floor_histogram(3, 10);
    for (i, c) in ours.floor_histogram(3, 10).iter().enumerate() {
        hist[i] += c;
    }
    let labels: Vec<String> = (3..=10).map(|k| k.to_string()).collect();
    print_histogram(
        "Figure 7: number of buildings vs number of floors (two corpora combined)",
        &labels,
        &hist,
    );
}

/// One building's worth of cached experiment results.
pub struct BuildingRow {
    /// Which corpus the building belongs to ("Microsoft" or "Ours").
    pub dataset: &'static str,
    /// Floor count (Figure 12 grouping key).
    pub floors: usize,
    /// Full FIS-ONE.
    pub fis: EvalResult,
    /// RF-GNN without attention (Figure 8(a,b)).
    pub no_attention: EvalResult,
    /// K-means instead of hierarchical (Figure 8(c,d)).
    pub kmeans: EvalResult,
    /// Plain Jaccard instead of adapted (Figure 9(a,b)).
    pub plain_jaccard: EvalResult,
    /// 2-opt instead of Held-Karp (Figure 9(c,d)).
    pub two_opt: EvalResult,
    /// The four baselines, in [`baseline_names`] order (None = failed).
    pub baselines: Vec<Option<EvalResult>>,
}

/// Names matching [`BuildingRow::baselines`] order.
pub fn baseline_names() -> [&'static str; 4] {
    ["SDCN", "DAEGC", "METIS", "MDS"]
}

/// Default pipeline configuration for experiments at a given embedding
/// dimension.
pub fn experiment_config(dim: usize, seed: u64) -> FisOneConfig {
    FisOneConfig {
        gnn: fis_gnn::RfGnnConfig::new(dim).seed(seed),
        ..FisOneConfig::default()
    }
}

/// Runs every method and ablation on one building, sharing embeddings
/// where the ablation allows it.
pub fn evaluate_building_all(
    building: &Building,
    dataset: &'static str,
    dim: usize,
    seed: u64,
) -> BuildingRow {
    let anchor = building.bottom_anchor().expect("corpus has bottom samples");
    let floors = building.floors();
    let config = experiment_config(dim, seed);
    let fis = FisOne::new(config.clone());

    // Full pipeline once; reuse embeddings + assignment for ablations.
    let (assignment, embeddings) = fis
        .cluster_samples(building.samples(), floors)
        .unwrap_or_else(|e| panic!("FIS-ONE failed on {}: {e}", building.name()));
    let score = |fis: &FisOne, assignment: &[usize]| -> EvalResult {
        let prediction = fis
            .index_assignment(building.samples(), assignment, floors, anchor)
            .unwrap_or_else(|e| panic!("indexing failed on {}: {e}", building.name()));
        score_prediction(&prediction, building).expect("scoring is well-posed")
    };
    let fis_result = score(&fis, &assignment);

    // Figure 8(a,b): retrain without attention.
    let mut na_config = config.clone();
    na_config.gnn = na_config.gnn.without_attention();
    let na = FisOne::new(na_config);
    let (na_assignment, _) = na
        .cluster_samples(building.samples(), floors)
        .unwrap_or_else(|e| panic!("no-attention failed on {}: {e}", building.name()));
    let no_attention = score(&na, &na_assignment);

    // Figure 8(c,d): K-means over the SAME embeddings.
    let mut km_config = config.clone();
    km_config.clustering = ClusteringMethod::KMeans;
    let km = FisOne::new(km_config);
    let kmeans = match km.cluster_embeddings(&embeddings, floors) {
        Ok(km_assignment) => score(&km, &km_assignment),
        // K-means can drop a cluster on hard buildings; count that as the
        // degenerate zero-score outcome rather than crashing the sweep.
        Err(_) => EvalResult {
            ari: 0.0,
            nmi: 0.0,
            edit: 0.0,
        },
    };

    // Figure 9(a,b): plain Jaccard, reusing the clustering.
    let mut pj_config = config.clone();
    pj_config.similarity = SimilarityMethod::PlainJaccard;
    let plain_jaccard = score(&FisOne::new(pj_config), &assignment);

    // Figure 9(c,d): 2-opt, reusing the clustering.
    let mut to_config = config.clone();
    to_config.solver = TspSolver::TwoOpt;
    let two_opt = score(&FisOne::new(to_config), &assignment);

    // Baselines (clustered from scratch, indexed by FIS-ONE's stage 4).
    let baselines: Vec<Option<EvalResult>> = baseline_set(dim, seed)
        .iter()
        .map(|b| run_baseline(b.as_ref(), &fis, building))
        .collect();

    BuildingRow {
        dataset,
        floors,
        fis: fis_result,
        no_attention,
        kmeans,
        plain_jaccard,
        two_opt,
        baselines,
    }
}

fn baseline_set(dim: usize, seed: u64) -> Vec<Box<dyn BaselineClusterer>> {
    vec![
        Box::new(Sdcn::new(dim).seed(seed)),
        Box::new(Daegc::new(dim).seed(seed)),
        Box::new(Metis::new().seed(seed)),
        Box::new(Mds::new(dim)),
    ]
}

/// Evaluates the full corpus cache at the ambient scale.
///
/// Buildings are processed concurrently across the `fis_parallel`
/// thread budget; every building derives its seed from its corpus
/// position, so the cache is identical for any thread count.
pub fn build_cache(dim: usize) -> Vec<BuildingRow> {
    let (ms, ours) = corpora();
    let jobs: Vec<(&'static str, u64, &Building)> = ms
        .buildings()
        .iter()
        .enumerate()
        .map(|(i, b)| ("Microsoft", i as u64, b))
        .chain(
            ours.buildings()
                .iter()
                .enumerate()
                .map(|(i, b)| ("Ours", 100 + i as u64, b)),
        )
        .collect();
    let total = jobs.len();
    fis_parallel::par_map(&jobs, 1, |i, &(dataset, seed, building)| {
        eprintln!("[cache] {dataset} {}/{total}", i + 1);
        evaluate_building_all(building, dataset, dim, seed)
    })
}

fn accumulate(
    rows: &[BuildingRow],
    dataset: &str,
    get: impl Fn(&BuildingRow) -> Option<EvalResult>,
) -> MetricAccumulator {
    let mut acc = MetricAccumulator::new();
    for row in rows.iter().filter(|r| r.dataset == dataset) {
        if let Some(r) = get(row) {
            acc.push(r);
        }
    }
    acc
}

/// Table I: FIS-ONE vs the four baselines on both corpora.
pub fn table1(rows: &[BuildingRow]) {
    let mut table = Vec::new();
    let mut push_row = |name: &str, get: &dyn Fn(&BuildingRow) -> Option<EvalResult>| {
        let ms = accumulate(rows, "Microsoft", get);
        let ours = accumulate(rows, "Ours", get);
        let (a1, n1, e1) = ms.cells();
        let (a2, n2, e2) = ours.cells();
        table.push(vec![name.to_owned(), a1, a2, n1, n2, e1, e2]);
    };
    push_row("FIS-ONE", &|r| Some(r.fis));
    for (bi, name) in baseline_names().iter().enumerate() {
        push_row(name, &move |r| r.baselines[bi]);
    }
    print_table(
        "Table I: comparison with baseline algorithms, mean(std)",
        &[
            "Algorithm",
            "ARI(Microsoft)",
            "ARI(Ours)",
            "NMI(Microsoft)",
            "NMI(Ours)",
            "Edit(Microsoft)",
            "Edit(Ours)",
        ],
        &table,
    );
}

/// Figures 8 and 9: the four ablations, reported per corpus.
pub fn fig8_fig9(rows: &[BuildingRow]) {
    type Getter<'a> = &'a dyn Fn(&BuildingRow) -> Option<EvalResult>;
    let variants: [(&str, Getter); 5] = [
        ("FIS-ONE (full)", &|r| Some(r.fis)),
        ("without attention [Fig 8ab]", &|r| Some(r.no_attention)),
        ("K-means clustering [Fig 8cd]", &|r| Some(r.kmeans)),
        ("plain Jaccard [Fig 9ab]", &|r| Some(r.plain_jaccard)),
        ("2-opt TSP [Fig 9cd]", &|r| Some(r.two_opt)),
    ];
    let mut table = Vec::new();
    for (name, get) in variants {
        let ms = accumulate(rows, "Microsoft", get);
        let ours = accumulate(rows, "Ours", get);
        let (a1, n1, e1) = ms.cells();
        let (a2, n2, e2) = ours.cells();
        table.push(vec![name.to_owned(), a1, a2, n1, n2, e1, e2]);
    }
    print_table(
        "Figures 8-9: ablation study (ARI / NMI / Edit distance)",
        &[
            "Variant",
            "ARI(Microsoft)",
            "ARI(Ours)",
            "NMI(Microsoft)",
            "NMI(Ours)",
            "Edit(Microsoft)",
            "Edit(Ours)",
        ],
        &table,
    );
}

/// Figure 12: FIS-ONE metrics grouped by building floor count.
pub fn fig12(rows: &[BuildingRow]) {
    let mut table = Vec::new();
    for floors in 3..=10usize {
        let mut acc = MetricAccumulator::new();
        for row in rows.iter().filter(|r| r.floors == floors) {
            acc.push(row.fis);
        }
        if acc.ari.is_empty() {
            continue;
        }
        let (a, n, e) = acc.cells();
        table.push(vec![floors.to_string(), acc.ari.len().to_string(), a, n, e]);
    }
    print_table(
        "Figure 12: FIS-ONE by building floor count (both corpora)",
        &["Floors", "Buildings", "ARI", "NMI", "Edit"],
        &table,
    );
}

/// Figures 10 and 11: metric vs embedding dimension for FIS-ONE and the
/// baselines, on a corpus subset (the sweep retrains everything per dim).
pub fn fig10_fig11(dims: &[usize], max_buildings: usize) {
    let (ms, ours) = corpora();
    let subset: Vec<(&'static str, &Building)> = ms
        .buildings()
        .iter()
        .take(max_buildings)
        .map(|b| ("Microsoft", b))
        .chain(ours.buildings().iter().take(2).map(|b| ("Ours", b)))
        .collect();
    let mut table = Vec::new();
    for &dim in dims {
        let mut fis_acc = MetricAccumulator::new();
        let mut base_accs: Vec<MetricAccumulator> =
            (0..4).map(|_| MetricAccumulator::new()).collect();
        for (si, (ds, building)) in subset.iter().enumerate() {
            eprintln!("[dims] dim={dim} building {}/{}", si + 1, subset.len());
            let config = experiment_config(dim, si as u64);
            let fis = FisOne::new(config);
            if let Ok(result) = fis_core::evaluate_building(&fis, building) {
                fis_acc.push(result);
            }
            for (bi, baseline) in baseline_set(dim, si as u64).iter().enumerate() {
                if let Some(r) = run_baseline(baseline.as_ref(), &fis, building) {
                    base_accs[bi].push(r);
                }
            }
            let _ = ds;
        }
        let mut row = vec![dim.to_string()];
        row.push(format!("{:.3}", fis_acc.ari.mean()));
        row.push(format!("{:.3}", fis_acc.edit.mean()));
        for (bi, _) in baseline_names().iter().enumerate() {
            row.push(format!("{:.3}", base_accs[bi].ari.mean()));
        }
        table.push(row);
    }
    print_table(
        "Figures 10-11: embedding dimension sweep (ARI; FIS-ONE also Edit)",
        &[
            "Dim",
            "FIS ARI",
            "FIS Edit",
            "SDCN ARI",
            "DAEGC ARI",
            "METIS ARI",
            "MDS ARI",
        ],
        &table,
    );
}

/// Figure 14: labeled sample from the bottom floor vs a random floor
/// (§VI extension), repeated over several random floors per building.
pub fn fig14(max_buildings: usize, repeats: usize) {
    let (ms, ours) = corpora();
    let subset: Vec<&Building> = ms
        .buildings()
        .iter()
        .take(max_buildings)
        .chain(ours.buildings().iter().take(1))
        .collect();
    let mut bottom = MetricAccumulator::new();
    let mut random = MetricAccumulator::new();
    let mut ambiguous = 0usize;
    for (si, building) in subset.iter().enumerate() {
        eprintln!("[fig14] building {}/{}", si + 1, subset.len());
        let fis = FisOne::new(experiment_config(16, si as u64));
        if let Ok(r) = fis_core::evaluate_building(&fis, building) {
            bottom.push(r);
        }
        // Random floors, excluding the unresolvable middle of odd buildings
        // (Case 1) which is reported separately.
        let floors = building.floors();
        for rep in 0..repeats {
            let floor = FloorId::from_index((si * 7 + rep * 3 + 1) % floors);
            let Some(anchor) = building.anchor_on(floor) else {
                continue;
            };
            match identify_with_arbitrary_anchor(&fis, building.samples(), floors, anchor) {
                Ok(ArbitraryAnchorOutcome::Resolved(prediction)) => {
                    if let Ok(r) = score_prediction(&prediction, building) {
                        random.push(r);
                    }
                }
                Ok(ArbitraryAnchorOutcome::Ambiguous { .. }) => ambiguous += 1,
                Err(e) => panic!("fig14 failed on {}: {e}", building.name()),
            }
        }
    }
    let (ba, bn, be) = bottom.cells();
    let (ra, rn, re) = random.cells();
    print_table(
        "Figure 14: bottom-floor vs random-floor labeled sample",
        &["Anchor", "ARI", "NMI", "Edit"],
        &[
            vec!["Bottom".into(), ba, bn, be],
            vec!["Random".into(), ra, rn, re],
        ],
    );
    println!("random-floor runs hitting the ambiguous middle floor (Case 1): {ambiguous}");
}

/// Scale-aware knobs for the consolidated run.
pub fn sweep_sizes() -> (Vec<usize>, usize, usize) {
    match Scale::from_env() {
        Scale::Reduced => (vec![8, 16, 32, 64], 4, 2),
        Scale::Full => (vec![8, 16, 32, 64], 12, 10),
    }
}
