//! Experiment harness regenerating every table and figure of the paper.
//!
//! See `src/bin/` for one binary per experiment and `benches/` for the
//! Criterion micro-benchmarks. `DESIGN.md` §3 maps paper artifacts to
//! targets.

pub mod experiments;
pub mod harness;
