//! Shared experiment plumbing: corpora, per-building evaluation, and
//! paper-style table rendering.

use fis_baselines::BaselineClusterer;
use fis_core::evaluate::score_prediction;
use fis_core::{CorpusRun, EngineConfig, EvalResult, FisEngine, FisOne, FisOneConfig};
use fis_metrics::MeanStd;
use fis_synth::Scale;
use fis_types::{Building, Dataset};

/// Seed shared by every experiment so corpora are identical across bins.
pub const CORPUS_SEED: u64 = 2023;

/// The two evaluation corpora at the ambient scale (`FIS_SCALE`).
pub fn corpora() -> (Dataset, Dataset) {
    let scale = Scale::from_env();
    (
        fis_synth::microsoft_like(scale, CORPUS_SEED),
        fis_synth::malls_like(scale, CORPUS_SEED),
    )
}

/// Runs the full FIS-ONE pipeline on a building and scores it.
///
/// # Panics
///
/// Panics if the pipeline fails — experiment corpora are constructed so
/// that every stage is well-posed, and an error indicates a harness bug.
pub fn run_fis(config: &FisOneConfig, building: &Building) -> EvalResult {
    fis_core::evaluate_building(&FisOne::new(config.clone()), building)
        .unwrap_or_else(|e| panic!("FIS-ONE failed on {}: {e}", building.name()))
}

/// Evaluates a whole corpus through the parallel [`FisEngine`] and
/// returns the per-building report (timings included).
///
/// All experiment corpora share one pipeline seed per run, so the batch
/// is bit-identical to evaluating the buildings one by one.
///
/// # Panics
///
/// Panics if any building fails, mirroring [`run_fis`].
pub fn run_corpus(config: &FisOneConfig, corpus: &Dataset) -> CorpusRun {
    let engine = FisEngine::new(EngineConfig::default().pipeline(config.clone()));
    let report = engine.evaluate_corpus(corpus);
    if let Some((run, e)) = report.failures().next() {
        panic!("FIS-ONE failed on {}: {e}", run.building);
    }
    report
}

/// Runs a baseline clusterer followed by FIS-ONE's indexing (the paper's
/// adaptation of the baselines, §V-A) and scores it. Returns `None` when
/// the baseline cannot produce `k` clusters on this building.
pub fn run_baseline(
    baseline: &dyn BaselineClusterer,
    indexer: &FisOne,
    building: &Building,
) -> Option<EvalResult> {
    let assignment = baseline
        .cluster(building.samples(), building.floors())
        .ok()?;
    let anchor = building.bottom_anchor()?;
    let prediction = indexer
        .index_assignment(building.samples(), &assignment, building.floors(), anchor)
        .ok()?;
    score_prediction(&prediction, building).ok()
}

/// Accumulates per-building [`EvalResult`]s into the three `mean(std)`
/// cells of Table I.
#[derive(Debug, Default, Clone)]
pub struct MetricAccumulator {
    /// ARI observations.
    pub ari: MeanStd,
    /// NMI observations.
    pub nmi: MeanStd,
    /// Edit-distance observations.
    pub edit: MeanStd,
}

impl MetricAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one building's result.
    pub fn push(&mut self, r: EvalResult) {
        self.ari.push(r.ari);
        self.nmi.push(r.nmi);
        self.edit.push(r.edit);
    }

    /// `"ari nmi edit"` cells in the paper's `mean(std)` format.
    pub fn cells(&self) -> (String, String, String) {
        (
            self.ari.to_string(),
            self.nmi.to_string(),
            self.edit.to_string(),
        )
    }
}

/// Prints a fixed-width table: header row then one row per entry.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(c, h)| {
            rows.iter()
                .map(|r| r.get(c).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (c, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:width$}  ", cell, width = widths[c]));
        }
        println!("{}", s.trim_end());
    };
    line(header.to_vec());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

/// ASCII bar chart for histogram-style figures.
pub fn print_histogram(title: &str, labels: &[String], counts: &[usize]) {
    println!("\n=== {title} ===");
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    for (label, &count) in labels.iter().zip(counts.iter()) {
        let bar = "#".repeat(count * 50 / max);
        println!("{label:>6} | {bar} {count}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic() {
        let (a1, b1) = corpora();
        let (a2, b2) = corpora();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn run_corpus_matches_run_fis() {
        // Small corpus + tiny GNN config so the batch-vs-solo comparison
        // stays cheap; the full-scale equivalence is the same code path.
        let corpus = Dataset::new(
            "tiny",
            (0..2)
                .map(|i| {
                    fis_synth::BuildingConfig::new(format!("t{i}"), 3)
                        .samples_per_floor(20)
                        .aps_per_floor(8)
                        .seed(CORPUS_SEED + i as u64)
                        .generate()
                })
                .collect(),
        );
        let mut config = FisOneConfig::default().seed(7);
        config.gnn = fis_gnn::RfGnnConfig::new(8)
            .epochs(3)
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3])
            .seed(7);
        let report = run_corpus(&config, &corpus);
        assert_eq!(report.runs.len(), corpus.len());
        for (run, outcome) in report.successes() {
            let building = corpus
                .buildings()
                .iter()
                .find(|b| b.name() == run.building)
                .unwrap();
            let solo = run_fis(&config, building);
            let batch = outcome.eval.unwrap();
            assert_eq!(solo, batch, "batch result differs for {}", run.building);
        }
    }

    #[test]
    fn accumulator_formats_cells() {
        let mut acc = MetricAccumulator::new();
        acc.push(EvalResult {
            ari: 0.8,
            nmi: 0.9,
            edit: 1.0,
        });
        let (ari, nmi, edit) = acc.cells();
        assert_eq!(ari, "0.800(0.000)");
        assert_eq!(nmi, "0.900(0.000)");
        assert_eq!(edit, "1.000(0.000)");
    }
}
