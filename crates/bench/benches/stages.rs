//! Criterion micro-benchmarks for every pipeline stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fis_core::indexing::{index_clusters, TspSolver};
use fis_core::similarity::{adapted_jaccard, plain_jaccard, ClusterMacProfile};
use fis_gnn::{RfGnn, RfGnnConfig};
use fis_graph::{cooccurrence_pairs, random_walks, BipartiteGraph, WalkStrategy};
use fis_synth::BuildingConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Whether the harness runs in the CI quick mode (tiny measurement
/// window); slow comparison-only benches are skipped there.
fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
}

fn bench_building() -> fis_types::Building {
    BuildingConfig::new("bench", 4)
        .samples_per_floor(60)
        .aps_per_floor(12)
        .seed(99)
        .generate()
}

/// The blocked matmul kernel at a GNN-layer-ish size and at a size large
/// enough for the cache blocking to matter. The kernel is the inner loop
/// of every training forward/backward pass, so the gate watching these
/// stages catches regressions in the blocked-loop restructuring without
/// the noise of the full `gnn/train` stage on top.
fn bench_linalg(c: &mut Criterion) {
    for &n in &[64usize, 256] {
        let a = fis_linalg::init::uniform_matrix(n, n, -1.0, 1.0, 11);
        let b = fis_linalg::init::uniform_matrix(n, n, -1.0, 1.0, 13);
        c.bench_function(&format!("linalg/matmul({n}x{n})"), |bench| {
            bench.iter(|| std::hint::black_box(&a).matmul(&b))
        });
    }
}

/// Cold-loading the quantized (schema v3) serving artifact: JSON parse,
/// f32 narrowing, graph + VP-tree rebuild. This is what a registry miss
/// costs when a fleet opts into f32 artifacts.
fn bench_model_load_f32(c: &mut Criterion) {
    let b = bench_building();
    let model = fis_core::FisOne::new(fis_core::FisOneConfig::quick(99))
        .fit(
            b.name(),
            b.samples(),
            b.floors(),
            b.bottom_anchor().unwrap(),
        )
        .expect("bench building fits");
    let dir = std::env::temp_dir().join(format!("fis-bench-f32-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bench-f32.json");
    model.save_f32(&path).expect("f32 artifact saves");
    let mut group = c.benchmark_group("model");
    group.sample_size(20);
    group.bench_function("load_f32", |bench| {
        bench.iter(|| fis_core::FittedModel::load(std::hint::black_box(&path)).unwrap())
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_graph_construction(c: &mut Criterion) {
    let b = bench_building();
    c.bench_function("graph/from_samples(240)", |bench| {
        bench.iter(|| BipartiteGraph::from_samples(std::hint::black_box(b.samples())).unwrap())
    });
}

fn bench_random_walks(c: &mut Criterion) {
    let b = bench_building();
    let graph = BipartiteGraph::from_samples(b.samples()).unwrap();
    c.bench_function("graph/random_walks(len5)", |bench| {
        bench.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let walks = random_walks(&graph, &mut rng, 2, 5, WalkStrategy::Weighted);
            cooccurrence_pairs(&walks, 5)
        })
    });
}

fn bench_gnn_training(c: &mut Criterion) {
    let b = bench_building();
    let graph = BipartiteGraph::from_samples(b.samples()).unwrap();
    let config = RfGnnConfig::new(8)
        .epochs(1)
        .walks_per_node(2)
        .neighbor_samples(vec![5, 3]);
    let mut group = c.benchmark_group("gnn");
    group.sample_size(10);
    group.bench_function("train(1 epoch, dim 8)", |bench| {
        bench.iter(|| RfGnn::train(&graph, std::hint::black_box(&config)).unwrap())
    });
    let model = RfGnn::train(&graph, &config).unwrap();
    group.bench_function("embed_samples(240)", |bench| {
        bench.iter(|| model.embed_samples(std::hint::black_box(&graph)))
    });
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let points: Vec<Vec<f64>> = (0..300)
        .map(|i| vec![(i % 4) as f64 + (i as f64) * 0.001, (i % 7) as f64])
        .collect();
    let mut group = c.benchmark_group("cluster");
    group.sample_size(20);
    group.bench_function("hierarchical(300, k=4)", |bench| {
        bench.iter(|| fis_cluster::average_linkage(std::hint::black_box(&points), 4).unwrap())
    });
    group.bench_function("kmeans(300, k=4)", |bench| {
        bench.iter(|| {
            fis_cluster::kmeans(
                std::hint::black_box(&points),
                &fis_cluster::KMeansConfig::new(4).seed(1),
            )
            .unwrap()
        })
    });
    // Headline speedup of this workspace: the O(n²) nearest-neighbor
    // chain vs the seed's O(n³) closest-pair rescan, at a corpus-sized
    // input. Expect >= 2x (typically 10x+) at n = 500.
    let big: Vec<Vec<f64>> = (0..500)
        .map(|i| {
            vec![
                ((i * 37) % 101) as f64 * 0.1 + (i % 5) as f64 * 20.0,
                ((i * 53) % 97) as f64 * 0.1,
            ]
        })
        .collect();
    group.bench_function("nnchain(500, k=5)", |bench| {
        bench.iter(|| fis_cluster::average_linkage(std::hint::black_box(&big), 5).unwrap())
    });
    // The O(n³) seed implementation exists only as a comparison point
    // and costs ~55 ms per sample; full mode only, so the quick-mode CI
    // perf gate stays fast.
    if !quick_mode() {
        group.bench_function("naive_o_n3(500, k=5)", |bench| {
            bench
                .iter(|| fis_cluster::average_linkage_naive(std::hint::black_box(&big), 5).unwrap())
        });
    }
    group.finish();
}

/// Clustered synthetic embeddings mimicking the geometry `assign` sees:
/// training drives reference embeddings into tight per-location
/// sub-clusters inside per-floor clusters, so the cloud has low
/// intrinsic dimension (a uniform cloud would be the worst case for any
/// metric index and is not what the GNN produces).
fn clustered_points(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f64>> {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.0..10.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            centers[i % clusters]
                .iter()
                .enumerate()
                // Anisotropic within-cluster spread with a decaying
                // spectrum, like a learned embedding's principal axes.
                .map(|(j, &x)| x + rng.gen_range(-0.3..0.3) / (1u64 << j) as f64)
                .collect()
        })
        .collect()
}

/// The serving hot path's 1-NN layer: the exhaustive linear scan
/// (`FittedModel::assign_linear`'s loop) vs the VP-tree index, at
/// reference-set sizes up to 100k, plus the registry answer cache's hit
/// path. The embedding forward pass is identical on every variant, so
/// these isolate exactly what the tentpole changes.
fn bench_assign(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign");
    group.sample_size(20);
    for &(n, label) in &[(1_000usize, "1k"), (10_000, "10k"), (100_000, "100k")] {
        let points = clustered_points(n, 8, 96, 4242);
        let queries = clustered_points(256, 8, 96, 999);
        let tree = fis_core::VpTree::build(&points, |_| true);
        // Cycle the queries outside the timed closure so neither path
        // can win by caching one query's answer in a register.
        let mut qi = 0usize;
        group.bench_function(&format!("linear_scan({label})"), |bench| {
            bench.iter(|| {
                let q = &queries[qi % queries.len()];
                qi += 1;
                // The exact loop `FittedModel::assign_linear` runs.
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (i, p) in points.iter().enumerate() {
                    let d = fis_linalg::vec_ops::euclidean(q, p);
                    if d < best_d {
                        best = i;
                        best_d = d;
                    }
                }
                best
            })
        });
        let mut qj = 0usize;
        group.bench_function(&format!("vp_tree({label})"), |bench| {
            bench.iter(|| {
                let q = &queries[qj % queries.len()];
                qj += 1;
                tree.nearest(std::hint::black_box(q)).unwrap()
            })
        });
    }
    // The answer cache's hit path: FNV key derivation over a realistic
    // 12-reading scan plus the bounded-map lookup — what a repeated scan
    // costs instead of embedding + 1-NN.
    let scan = {
        let mut b = fis_types::SignalSample::builder(0);
        for j in 0..12u64 {
            b = b.reading(
                fis_types::MacAddr::from_u64(0x0200_0000_0000 + j),
                fis_types::Rssi::new(-40.0 - j as f64).unwrap(),
            );
        }
        b.build()
    };
    let mut cache = fis_serve::AssignCache::new(1024);
    let mut counters = fis_metrics::CacheCounters::default();
    cache.insert(
        fis_serve::ScanKey::of(&scan),
        fis_types::FloorId::from_index(2),
        &mut counters,
    );
    group.bench_function("cached", |bench| {
        bench.iter(|| {
            cache
                .get(&fis_serve::ScanKey::of(std::hint::black_box(&scan)))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_tsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("tsp");
    for &n in &[6usize, 10, 14] {
        let sim: Vec<Vec<f64>> = (0..n)
            .map(|i: usize| {
                (0..n)
                    .map(|j: usize| {
                        if i == j {
                            1.0
                        } else {
                            1.0 / (1.0 + i.abs_diff(j) as f64)
                        }
                    })
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("held_karp", n), &sim, |bench, sim| {
            bench.iter(|| index_clusters(sim, 0, TspSolver::Exact).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("two_opt", n), &sim, |bench, sim| {
            bench.iter(|| index_clusters(sim, 0, TspSolver::TwoOpt).unwrap())
        });
    }
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let b = bench_building();
    let truth: Vec<usize> = b.ground_truth().iter().map(|f| f.index()).collect();
    let profiles = ClusterMacProfile::from_assignment(b.samples(), &truth, b.floors());
    c.bench_function("similarity/adapted_jaccard", |bench| {
        bench.iter(|| adapted_jaccard(std::hint::black_box(&profiles[0]), &profiles[1]))
    });
    c.bench_function("similarity/plain_jaccard", |bench| {
        bench.iter(|| plain_jaccard(std::hint::black_box(&profiles[0]), &profiles[1]))
    });
    // Whole-matrix benches: a wide profile set (32 pseudo-clusters over a
    // dense mall) with the parallel row fan-out vs a forced 1-thread
    // budget. The parallel variant should win by ~the core count.
    let wide = BuildingConfig::new("bench-wide", 8)
        .samples_per_floor(120)
        .aps_per_floor(24)
        .atrium_aps(4)
        .seed(7)
        .generate();
    let pseudo: Vec<usize> = (0..wide.len()).map(|i| i % 32).collect();
    let wide_profiles = ClusterMacProfile::from_assignment(wide.samples(), &pseudo, 32);
    c.bench_function("similarity/matrix(32 profiles, parallel)", |bench| {
        bench.iter(|| {
            fis_core::similarity::similarity_matrix(
                fis_core::SimilarityMethod::AdaptedJaccard,
                std::hint::black_box(&wide_profiles),
            )
        })
    });
    c.bench_function("similarity/matrix(32 profiles, 1 thread)", |bench| {
        bench.iter(|| {
            fis_parallel::set_thread_budget(1);
            let m = fis_core::similarity::similarity_matrix(
                fis_core::SimilarityMethod::AdaptedJaccard,
                std::hint::black_box(&wide_profiles),
            );
            fis_parallel::set_thread_budget(0);
            m
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    // Multi-building batch: the engine on all cores vs a 1-thread budget.
    let corpus = fis_types::Dataset::new(
        "bench",
        (0..6)
            .map(|i| {
                BuildingConfig::new(format!("b{i}"), 3)
                    .samples_per_floor(30)
                    .aps_per_floor(8)
                    .seed(40 + i as u64)
                    .generate()
            })
            .collect(),
    );
    let config = {
        let mut config = fis_core::FisOneConfig::default().seed(1);
        config.gnn = RfGnnConfig::new(8)
            .epochs(2)
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3])
            .seed(1);
        config
    };
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("evaluate_corpus(6 buildings, parallel)", |bench| {
        bench.iter(|| {
            fis_core::FisEngine::new(fis_core::EngineConfig::default().pipeline(config.clone()))
                .evaluate_corpus(std::hint::black_box(&corpus))
        })
    });
    group.bench_function("evaluate_corpus(6 buildings, 1 thread)", |bench| {
        bench.iter(|| {
            fis_core::FisEngine::new(
                fis_core::EngineConfig::default()
                    .pipeline(config.clone())
                    .threads(1),
            )
            .evaluate_corpus(std::hint::black_box(&corpus))
        })
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let pred: Vec<usize> = (0..1000).map(|i| i % 5).collect();
    let truth: Vec<usize> = (0..1000).map(|i| (i + i / 500) % 5).collect();
    c.bench_function("metrics/ari(1000)", |bench| {
        bench.iter(|| fis_metrics::adjusted_rand_index(std::hint::black_box(&pred), &truth))
    });
    c.bench_function("metrics/nmi(1000)", |bench| {
        bench.iter(|| {
            fis_metrics::normalized_mutual_information(std::hint::black_box(&pred), &truth)
        })
    });
}

/// Online extension: growing a fitted model with one epoch of drifted
/// scans (labeling by the frozen base, vocabulary growth, VP-tree
/// rebuild). The clone inside the loop is the price of benching a
/// mutating call; it is dwarfed by the extension itself.
fn bench_extend(c: &mut Criterion) {
    use fis_synth::{DriftScenario, TemporalConfig};
    let corpus = TemporalConfig::new(
        BuildingConfig::new("bench", 3)
            .samples_per_floor(40)
            .aps_per_floor(8)
            .seed(99),
        DriftScenario::ApChurn {
            replaced_per_epoch: 0.15,
        },
    )
    .epochs(1)
    .scans_per_epoch(60)
    .generate();
    let building = &corpus.building;
    let anchor = building.bottom_anchor().expect("survey has an anchor");
    let model = fis_core::FisOne::new(fis_core::FisOneConfig::quick(99))
        .fit(
            building.name(),
            building.samples(),
            building.floors(),
            anchor,
        )
        .expect("survey fits");
    let scans = &corpus.epochs[0].samples;
    let mut group = c.benchmark_group("drift");
    group.sample_size(10);
    group.bench_function("extend(60 scans)", |bench| {
        bench.iter(|| {
            let mut m = model.clone();
            m.extend(std::hint::black_box(scans)).unwrap()
        })
    });
    group.finish();
}

/// What observability costs on the answer path when it is *off*: one
/// span with a field plus one point event, with stderr silenced and no
/// journal recording. Both must collapse to a level check — the gate
/// watches this stage so instrumentation added to hot paths can't start
/// taxing requests that opted out.
fn bench_obs(c: &mut Criterion) {
    // Force the off state regardless of FIS_LOG in the CI environment.
    fis_obs::set_level(None);
    c.bench_function("obs/overhead", |bench| {
        bench.iter(|| {
            let mut span = fis_obs::span(fis_obs::Level::Debug, "bench", "noop");
            span.num("i", 1.0);
            fis_obs::event(fis_obs::Level::Debug, "bench", "point")
                .num("x", 2.0)
                .emit();
            std::hint::black_box(span.context())
        })
    });
    fis_obs::level::clear_level();
}

criterion_group!(
    benches,
    bench_linalg,
    bench_model_load_f32,
    bench_graph_construction,
    bench_random_walks,
    bench_gnn_training,
    bench_clustering,
    bench_assign,
    bench_tsp,
    bench_similarity,
    bench_engine,
    bench_extend,
    bench_metrics,
    bench_obs
);
criterion_main!(benches);
