//! All-in-one experiment regeneration run as a bench target so
//! `cargo bench --workspace` reproduces every table and figure of the
//! paper (reduced scale by default; `FIS_SCALE=full` for paper scale).

fn main() {
    use fis_bench::experiments as exp;
    let started = std::time::Instant::now();
    exp::fig1b();
    exp::fig7();
    let rows = exp::build_cache(16);
    exp::table1(&rows);
    exp::fig8_fig9(&rows);
    exp::fig12(&rows);
    let (dims, max_buildings, repeats) = exp::sweep_sizes();
    exp::fig10_fig11(&dims, max_buildings);
    exp::fig14(max_buildings, repeats);
    println!("\nexperiment suite completed in {:.0?}", started.elapsed());
}
