//! METIS-style multilevel graph partitioning (§V-A baseline).
//!
//! A from-scratch re-implementation of the multilevel k-way scheme of
//! Karypis & Kumar: (1) *coarsen* by heavy-edge matching until the graph
//! is small, (2) compute an *initial partition* by greedy region growing,
//! (3) *uncoarsen*, refining at each level with Kernighan–Lin style
//! boundary moves that reduce edge cut subject to a balance constraint.
//!
//! The partition runs on the bipartite MAC×sample graph (as in the paper);
//! the cluster of each signal sample is the partition its node lands in.

use fis_graph::BipartiteGraph;
use fis_types::SignalSample;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::BaselineClusterer;

/// The METIS baseline.
#[derive(Debug, Clone)]
pub struct Metis {
    seed: u64,
    /// Coarsening stops below this node count.
    coarsen_target: usize,
    /// Maximum allowed imbalance factor (max part weight / ideal weight).
    balance: f64,
    refine_passes: usize,
}

impl Default for Metis {
    fn default() -> Self {
        Self::new()
    }
}

impl Metis {
    /// Creates the baseline with conventional parameters.
    pub fn new() -> Self {
        Self {
            seed: 0,
            coarsen_target: 64,
            balance: 1.5,
            refine_passes: 8,
        }
    }

    /// Sets the RNG seed (matching order, tie-breaking).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A weighted graph level in the multilevel hierarchy.
struct Level {
    adj: Vec<Vec<(usize, f64)>>,
    node_weight: Vec<f64>,
    /// Map of this level's nodes to the coarser level's nodes.
    coarse_of: Option<Vec<usize>>,
}

impl BaselineClusterer for Metis {
    fn name(&self) -> &'static str {
        "METIS"
    }

    fn cluster(&self, samples: &[SignalSample], k: usize) -> Result<Vec<usize>, String> {
        if k == 0 {
            return Err("k must be at least 1".to_owned());
        }
        if samples.len() < k {
            return Err(format!("{} samples cannot form {k} parts", samples.len()));
        }
        let graph = BipartiteGraph::from_samples(samples).map_err(|e| e.to_string())?;
        let n = graph.n_nodes();
        let base = Level {
            adj: (0..n).map(|u| graph.neighbors(u).to_vec()).collect(),
            node_weight: vec![1.0; n],
            coarse_of: None,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // 1. Coarsening.
        let mut levels = vec![base];
        while levels.last().expect("non-empty").adj.len() > self.coarsen_target.max(4 * k) {
            let coarse = coarsen(levels.last_mut().expect("non-empty"), &mut rng);
            let shrunk = coarse.adj.len() < levels.last().expect("non-empty").adj.len() * 95 / 100;
            levels.push(coarse);
            if !shrunk {
                break;
            }
        }

        // 2. Initial partition on the coarsest level: several region-grow
        // restarts with farthest-point seeding, keeping the lowest cut.
        let coarsest = levels.last().expect("non-empty");
        let mut part = Vec::new();
        let mut best_cut = f64::INFINITY;
        for _ in 0..4 {
            let mut cand = region_grow(coarsest, k, &mut rng);
            refine(coarsest, &mut cand, k, self.balance, self.refine_passes);
            let cut = edge_cut(coarsest, &cand);
            if cut < best_cut {
                best_cut = cut;
                part = cand;
            }
        }

        // 3. Uncoarsen with refinement.
        for li in (0..levels.len() - 1).rev() {
            let finer = &levels[li];
            let map = finer.coarse_of.as_ref().expect("interior level has map");
            let mut fine_part = vec![0usize; finer.adj.len()];
            for (v, &c) in map.iter().enumerate() {
                fine_part[v] = part[c];
            }
            part = fine_part;
            refine(finer, &mut part, k, self.balance, self.refine_passes);
        }

        // Sample nodes are 0..samples.len() in the unified index space.
        let assignment: Vec<usize> = part[..samples.len()].to_vec();
        Ok(fis_cluster::relabel_compact(&ensure_k_parts(
            assignment, k, samples,
        )))
    }
}

/// Heavy-edge matching coarsening: visit nodes in random order, match each
/// unmatched node with its heaviest unmatched neighbor, and contract pairs.
fn coarsen(level: &mut Level, rng: &mut ChaCha8Rng) -> Level {
    let n = level.adj.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut matched = vec![usize::MAX; n];
    let mut next_coarse = 0usize;
    let mut coarse_of = vec![usize::MAX; n];
    for &u in &order {
        if coarse_of[u] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mate = level.adj[u]
            .iter()
            .filter(|&&(v, _)| coarse_of[v] == usize::MAX && v != u)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))
            .map(|&(v, _)| v);
        coarse_of[u] = next_coarse;
        if let Some(v) = mate {
            coarse_of[v] = next_coarse;
            matched[u] = v;
        }
        next_coarse += 1;
    }
    // Build the coarse graph.
    let mut adj_maps: Vec<std::collections::HashMap<usize, f64>> =
        vec![std::collections::HashMap::new(); next_coarse];
    let mut node_weight = vec![0.0; next_coarse];
    for u in 0..n {
        let cu = coarse_of[u];
        node_weight[cu] += level.node_weight[u];
        for &(v, w) in &level.adj[u] {
            let cv = coarse_of[v];
            if cu != cv {
                *adj_maps[cu].entry(cv).or_insert(0.0) += w;
            }
        }
    }
    let adj = adj_maps
        .into_iter()
        .map(|m| {
            let mut v: Vec<(usize, f64)> = m.into_iter().collect();
            v.sort_by_key(|&(j, _)| j);
            v
        })
        .collect();
    level.coarse_of = Some(coarse_of);
    Level {
        adj,
        node_weight,
        coarse_of: None,
    }
}

/// Total weight of edges crossing the partition.
fn edge_cut(level: &Level, part: &[usize]) -> f64 {
    let mut cut = 0.0;
    for (u, row) in level.adj.iter().enumerate() {
        for &(v, w) in row {
            if part[u] != part[v] {
                cut += w;
            }
        }
    }
    cut / 2.0
}

/// Farthest-point seeding: first seed random, each further seed maximizes
/// its BFS distance to the existing seeds (unreachable nodes count as
/// infinitely far, so disconnected components are seeded first).
fn farthest_point_seeds(level: &Level, k: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let n = level.adj.len();
    let mut seeds = vec![rng.gen_range(0..n)];
    while seeds.len() < k.min(n) {
        // Multi-source BFS from all current seeds.
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for &s in &seeds {
            dist[s] = 0;
            queue.push_back(s);
        }
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &level.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        let next = (0..n)
            .filter(|v| !seeds.contains(v))
            .max_by_key(|&v| dist[v])
            .expect("k <= n");
        seeds.push(next);
    }
    seeds
}

/// Greedy region growing from farthest-point seeds: BFS-grow parts one
/// node at a time, always extending the lightest part; unreached nodes
/// join the lightest part.
fn region_grow(level: &Level, k: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let n = level.adj.len();
    let k = k.min(n);
    let mut part = vec![usize::MAX; n];
    let seeds = farthest_point_seeds(level, k, rng);
    let mut weight = vec![0.0; k];
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (p, &s) in seeds.iter().take(k).enumerate() {
        part[s] = p;
        weight[p] += level.node_weight[s];
        frontier[p] = level.adj[s].iter().map(|&(v, _)| v).collect();
    }
    let mut assigned = k;
    while assigned < n {
        // Lightest part with a frontier.
        let p = (0..k)
            .filter(|&p| !frontier[p].is_empty())
            .min_by(|&a, &b| weight[a].partial_cmp(&weight[b]).expect("finite"));
        let Some(p) = p else { break };
        let mut grabbed = None;
        while let Some(v) = frontier[p].pop() {
            if part[v] == usize::MAX {
                grabbed = Some(v);
                break;
            }
        }
        if let Some(v) = grabbed {
            part[v] = p;
            weight[p] += level.node_weight[v];
            assigned += 1;
            frontier[p].extend(
                level.adj[v]
                    .iter()
                    .filter(|&&(u, _)| part[u] == usize::MAX)
                    .map(|&(u, _)| u),
            );
        }
    }
    #[allow(clippy::needless_range_loop)] // part is mutated inside the loop
    for v in 0..n {
        if part[v] == usize::MAX {
            let p = (0..k)
                .min_by(|&a, &b| weight[a].partial_cmp(&weight[b]).expect("finite"))
                .expect("k >= 1");
            part[v] = p;
            weight[p] += level.node_weight[v];
        }
    }
    part
}

/// Kernighan–Lin style refinement: greedily move boundary nodes to the
/// neighboring part with the largest positive gain, subject to balance.
fn refine(level: &Level, part: &mut [usize], k: usize, balance: f64, passes: usize) {
    let n = level.adj.len();
    let total: f64 = level.node_weight.iter().sum();
    let max_weight = total / k as f64 * balance;
    let mut weight = vec![0.0; k];
    for v in 0..n {
        weight[part[v]] += level.node_weight[v];
    }
    for _ in 0..passes {
        let mut moved = false;
        for v in 0..n {
            let current = part[v];
            // Connectivity of v to each part.
            let mut conn = vec![0.0; k];
            for &(u, w) in &level.adj[v] {
                conn[part[u]] += w;
            }
            let mut best = (current, 0.0f64);
            for p in 0..k {
                if p == current {
                    continue;
                }
                let gain = conn[p] - conn[current];
                if gain > best.1 && weight[p] + level.node_weight[v] <= max_weight {
                    best = (p, gain);
                }
            }
            if best.0 != current && weight[current] - level.node_weight[v] > 0.0 {
                weight[current] -= level.node_weight[v];
                weight[best.0] += level.node_weight[v];
                part[v] = best.0;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Guarantees exactly `k` non-empty sample parts by splitting the largest
/// part when some part ended up with no sample nodes.
fn ensure_k_parts(mut assignment: Vec<usize>, k: usize, samples: &[SignalSample]) -> Vec<usize> {
    loop {
        let mut counts = vec![0usize; k];
        for &p in &assignment {
            counts[p] += 1;
        }
        let Some(empty) = counts.iter().position(|&c| c == 0) else {
            return assignment;
        };
        let largest = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(p, _)| p)
            .expect("k >= 1");
        // Move half the largest part's samples (by id order) to the empty one.
        let members: Vec<usize> = (0..samples.len())
            .filter(|&i| assignment[i] == largest)
            .collect();
        for &i in members.iter().take(members.len() / 2) {
            assignment[i] = empty;
        }
        if members.len() < 2 {
            return assignment;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::{MacAddr, Rssi};

    fn sample(id: u32, macs: &[u64]) -> SignalSample {
        SignalSample::builder(id)
            .readings(
                macs.iter()
                    .map(|&m| (MacAddr::from_u64(m), Rssi::new(-50.0).unwrap())),
            )
            .build()
    }

    /// Two disconnected communities sharing no MACs.
    fn two_communities(per_side: u32) -> Vec<SignalSample> {
        let mut v = Vec::new();
        for i in 0..per_side {
            v.push(sample(i, &[1, 2, 3]));
        }
        for i in per_side..2 * per_side {
            v.push(sample(i, &[10, 11, 12]));
        }
        v
    }

    #[test]
    fn separates_disconnected_communities() {
        let samples = two_communities(10);
        let labels = Metis::new().cluster(&samples, 2).unwrap();
        for i in 0..10 {
            assert_eq!(labels[i], labels[0]);
            assert_eq!(labels[10 + i], labels[10]);
        }
        assert_ne!(labels[0], labels[10]);
    }

    #[test]
    fn produces_k_nonempty_parts() {
        let samples = two_communities(12);
        for k in 2..=4 {
            let labels = Metis::new().seed(3).cluster(&samples, k).unwrap();
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len(), k, "k={k} labels={labels:?}");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let samples = two_communities(8);
        let a = Metis::new().seed(5).cluster(&samples, 2).unwrap();
        let b = Metis::new().seed(5).cluster(&samples, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_k() {
        let samples = two_communities(3);
        assert!(Metis::new().cluster(&samples, 0).is_err());
        assert!(Metis::new().cluster(&samples, 100).is_err());
    }

    #[test]
    fn handles_large_enough_graph_to_coarsen() {
        // 200 samples forces at least one coarsening level. Each sample
        // hears two overlapping MACs so every community is connected.
        let mut samples = Vec::new();
        for i in 0..200u32 {
            let base = u64::from(i / 100) * 50;
            samples.push(sample(
                i,
                &[
                    base + u64::from(i % 5) + 1,
                    base + u64::from((i + 1) % 5) + 1,
                ],
            ));
        }
        let labels = Metis::new().seed(1).cluster(&samples, 2).unwrap();
        // Communities never share MACs, so the cut should be clean.
        let first = labels[0];
        assert!(labels[..100].iter().all(|&l| l == first));
        assert!(labels[100..].iter().all(|&l| l != first));
    }
}
