//! Classical multidimensional scaling + hierarchical clustering (§V-A).
//!
//! The paper's MDS baseline embeds the dense matrix representation using
//! pairwise `1 − cosine` distances and clusters the embedding
//! hierarchically. Classical MDS: double-center the squared distance
//! matrix, `B = −½ J D² J`, and embed with the top-`d` eigenpairs.
//! The top eigenpairs are extracted by subspace (orthogonal) iteration,
//! which is `O(n²·d·iters)` instead of the full Jacobi `O(n³)`.

use fis_linalg::{vec_ops, Matrix, SplitMix64};
use fis_types::SignalSample;

use crate::features::dense_matrix;
use crate::BaselineClusterer;

/// The MDS baseline.
#[derive(Debug, Clone)]
pub struct Mds {
    dim: usize,
    subspace_iters: usize,
}

impl Mds {
    /// Creates the baseline with target embedding dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            subspace_iters: 60,
        }
    }

    /// Embeds samples into `dim` dimensions with classical MDS.
    ///
    /// # Errors
    ///
    /// Returns an error for empty input.
    pub fn embed(&self, samples: &[SignalSample]) -> Result<Matrix, String> {
        if samples.is_empty() {
            return Err("cannot embed zero samples".to_owned());
        }
        let n = samples.len();
        let (x, _) = dense_matrix(samples);
        // Pairwise squared 1 - cosine distances.
        let mut d2 = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = vec_ops::cosine_distance(x.row(i), x.row(j));
                d2[(i, j)] = d * d;
                d2[(j, i)] = d * d;
            }
        }
        // Double centering: B = -1/2 J D2 J with J = I - 11^T/n.
        let row_means: Vec<f64> = (0..n).map(|i| vec_ops::mean(d2.row(i))).collect();
        let grand = vec_ops::mean(&row_means);
        let b = Matrix::from_fn(n, n, |i, j| {
            -0.5 * (d2[(i, j)] - row_means[i] - row_means[j] + grand)
        });
        let dim = self.dim.min(n);
        let (vectors, values) = top_eigenpairs(&b, dim, self.subspace_iters);
        // Coordinates: v_k * sqrt(max(lambda_k, 0)).
        let mut out = Matrix::zeros(n, self.dim);
        for k in 0..dim {
            let scale = values[k].max(0.0).sqrt();
            for i in 0..n {
                out[(i, k)] = vectors[(i, k)] * scale;
            }
        }
        Ok(out)
    }
}

impl BaselineClusterer for Mds {
    fn name(&self) -> &'static str {
        "MDS"
    }

    fn cluster(&self, samples: &[SignalSample], k: usize) -> Result<Vec<usize>, String> {
        let emb = self.embed(samples)?;
        let points: Vec<Vec<f64>> = (0..emb.rows()).map(|r| emb.row(r).to_vec()).collect();
        fis_cluster::average_linkage(&points, k)
    }
}

/// Top-`d` eigenpairs of a symmetric matrix by subspace iteration with
/// Gram–Schmidt re-orthogonalization. Returns `(vectors, values)` with
/// vectors as columns, sorted by descending Rayleigh quotient.
fn top_eigenpairs(b: &Matrix, d: usize, iters: usize) -> (Matrix, Vec<f64>) {
    let n = b.rows();
    let mut rng = SplitMix64::new(0x5EED);
    let mut q = Matrix::from_fn(n, d, |_, _| rng.uniform(-1.0, 1.0));
    orthonormalize(&mut q);
    for _ in 0..iters {
        let z = b.matmul(&q);
        q = z;
        orthonormalize(&mut q);
    }
    // Rayleigh quotients as eigenvalue estimates.
    let bq = b.matmul(&q);
    let mut pairs: Vec<(f64, usize)> = (0..d)
        .map(|k| {
            let col_q = q.col(k);
            let col_bq = bq.col(k);
            (vec_ops::dot(&col_q, &col_bq), k)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));
    let vectors = Matrix::from_fn(n, d, |i, c| q[(i, pairs[c].1)]);
    let values = pairs.iter().map(|&(v, _)| v).collect();
    (vectors, values)
}

/// In-place modified Gram–Schmidt on the columns.
fn orthonormalize(q: &mut Matrix) {
    let (n, d) = q.shape();
    for k in 0..d {
        for prev in 0..k {
            let mut proj = 0.0;
            for i in 0..n {
                proj += q[(i, k)] * q[(i, prev)];
            }
            for i in 0..n {
                q[(i, k)] -= proj * q[(i, prev)];
            }
        }
        let norm: f64 = (0..n).map(|i| q[(i, k)] * q[(i, k)]).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for i in 0..n {
                q[(i, k)] /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_linalg::symmetric_eigen;
    use fis_types::{MacAddr, Rssi};

    fn sample(id: u32, readings: &[(u64, f64)]) -> SignalSample {
        SignalSample::builder(id)
            .readings(
                readings
                    .iter()
                    .map(|&(m, r)| (MacAddr::from_u64(m), Rssi::new(r).unwrap())),
            )
            .build()
    }

    #[test]
    fn subspace_iteration_matches_jacobi() {
        let raw = Matrix::from_fn(8, 8, |i, j| ((i * 3 + j * 7) % 11) as f64);
        let sym = Matrix::from_fn(8, 8, |i, j| 0.5 * (raw[(i, j)] + raw[(j, i)]));
        let exact = symmetric_eigen(&sym, 1e-12, 100);
        let (_, values) = top_eigenpairs(&sym, 3, 200);
        for (k, &value) in values.iter().enumerate().take(3) {
            assert!(
                (value - exact.values[k]).abs() < 1e-6,
                "k={k}: {} vs {}",
                value,
                exact.values[k]
            );
        }
    }

    #[test]
    fn mds_separates_two_signal_groups() {
        // Group A hears MACs 1-3, group B hears MACs 10-12.
        let mut samples = Vec::new();
        for i in 0..6u32 {
            let base: u64 = if i < 3 { 1 } else { 10 };
            samples.push(sample(
                i,
                &[(base, -50.0), (base + 1, -60.0), (base + 2, -70.0)],
            ));
        }
        let labels = Mds::new(4).cluster(&samples, 2).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn rejects_empty() {
        assert!(Mds::new(4).embed(&[]).is_err());
    }

    #[test]
    fn dim_larger_than_n_is_padded() {
        let samples = vec![sample(0, &[(1, -50.0)]), sample(1, &[(2, -50.0)])];
        let emb = Mds::new(8).embed(&samples).unwrap();
        assert_eq!(emb.shape(), (2, 8));
        assert!(emb.is_finite());
    }
}
