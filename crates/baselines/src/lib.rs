//! Baseline clustering algorithms from the FIS-ONE evaluation (§V-A).
//!
//! The paper compares against four clustering schemes, adapted to floor
//! identification by feeding their cluster output into FIS-ONE's own
//! indexing stage:
//!
//! - [`Sdcn`]: Structural Deep Clustering Network (Bo et al., WWW'20) —
//!   an autoencoder over the dense RSS matrix combined with
//!   graph-structure smoothing and DEC-style self-supervised clustering.
//! - [`Daegc`]: Deep Attentional Embedded Graph Clustering (Wang et al.,
//!   IJCAI'19) — a graph autoencoder whose embeddings are refined by a
//!   KL self-training clustering loss.
//! - [`Metis`]: multilevel graph partitioning (Karypis & Kumar, SISC'98) —
//!   heavy-edge-matching coarsening, greedy initial partition, and
//!   Kernighan–Lin style refinement, applied to the bipartite graph.
//! - [`Mds`]: classical multidimensional scaling over `1 − cosine`
//!   distances of the dense matrix representation (missing entries filled
//!   with −120 dBm, Figure 3), followed by hierarchical clustering.
//!
//! These are from-scratch re-implementations that preserve each method's
//! *objective structure* (what makes it win or lose on this task) at
//! model sizes suited to per-building corpora; see `DESIGN.md` §4.
//!
//! All baselines implement [`BaselineClusterer`], so the experiment
//! harness can sweep them uniformly.

pub mod daegc;
pub mod features;
pub mod mds;
pub mod metis;
pub mod sdcn;

use fis_types::SignalSample;

pub use daegc::Daegc;
pub use mds::Mds;
pub use metis::Metis;
pub use sdcn::Sdcn;

/// A clustering baseline: samples in, compact cluster labels out.
pub trait BaselineClusterer {
    /// Short display name ("SDCN", "MDS", ...).
    fn name(&self) -> &'static str;

    /// Clusters `samples` into exactly `k` clusters.
    ///
    /// # Errors
    ///
    /// Returns a message when the algorithm cannot produce `k` non-empty
    /// clusters for the given input.
    fn cluster(&self, samples: &[SignalSample], k: usize) -> Result<Vec<usize>, String>;
}

/// All four baselines with the given embedding dimension and seed
/// (convenience for experiment sweeps). METIS has no embedding dimension —
/// the paper plots it for consistency anyway (§V-D note).
pub fn all_baselines(dim: usize, seed: u64) -> Vec<Box<dyn BaselineClusterer>> {
    vec![
        Box::new(Sdcn::new(dim).seed(seed)),
        Box::new(Daegc::new(dim).seed(seed)),
        Box::new(Metis::new().seed(seed)),
        Box::new(Mds::new(dim)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_distinct_names() {
        let names: Vec<&str> = all_baselines(8, 0).iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["SDCN", "DAEGC", "METIS", "MDS"]);
    }
}
