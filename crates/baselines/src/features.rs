//! Shared feature construction for the baselines.
//!
//! The matrix-based baselines (MDS, SDCN) consume the dense representation
//! of Figure 3: one row per sample over the superset of MACs, missing
//! entries filled with −120 dBm. The graph-based ones additionally use a
//! sample–sample affinity graph projected from the bipartite graph.

use std::collections::HashMap;

use fis_linalg::Matrix;
use fis_types::{MacAddr, SignalSample};

/// RSS value used for missing entries (dBm), per §V-A.
pub const MISSING_DBM: f64 = -120.0;

/// Builds the dense `n x m` matrix of Figure 3: rows are samples, columns
/// the union of observed MACs, entries raw dBm with missing readings at
/// −120 dBm. Returns the matrix and the column MAC order.
pub fn dense_matrix(samples: &[SignalSample]) -> (Matrix, Vec<MacAddr>) {
    let mut mac_index: HashMap<MacAddr, usize> = HashMap::new();
    let mut macs: Vec<MacAddr> = Vec::new();
    for s in samples {
        for (mac, _) in s.iter() {
            mac_index.entry(mac).or_insert_with(|| {
                macs.push(mac);
                macs.len() - 1
            });
        }
    }
    let mut x = Matrix::filled(samples.len(), macs.len().max(1), MISSING_DBM);
    for (i, s) in samples.iter().enumerate() {
        for (mac, rssi) in s.iter() {
            x[(i, mac_index[&mac])] = rssi.dbm();
        }
    }
    (x, macs)
}

/// Normalizes the dense matrix to `[0, 1]`: `(rss + 120) / 120`. Missing
/// entries become exactly 0, heard APs land in `(0, 1]` — the natural
/// input scaling for the autoencoder baselines.
pub fn normalized_features(samples: &[SignalSample]) -> Matrix {
    let (x, _) = dense_matrix(samples);
    x.map(|v| (v - MISSING_DBM) / -MISSING_DBM)
}

/// Sample–sample affinity: `w_ij = Σ_k min(f(rss_ik), f(rss_jk))` over
/// shared MACs (one-mode projection of the bipartite graph), sparsified to
/// the `knn` strongest neighbors per sample. Returned as symmetric
/// adjacency lists.
pub fn knn_projection(samples: &[SignalSample], knn: usize) -> Vec<Vec<(usize, f64)>> {
    let n = samples.len();
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    // Invert: mac -> [(sample, weight)]
    let mut by_mac: HashMap<MacAddr, Vec<(usize, f64)>> = HashMap::new();
    for (i, s) in samples.iter().enumerate() {
        for (mac, rssi) in s.iter() {
            by_mac.entry(mac).or_default().push((i, rssi.edge_weight()));
        }
    }
    let mut weights: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
    for members in by_mac.values() {
        for (a, &(i, wi)) in members.iter().enumerate() {
            for &(j, wj) in &members[a + 1..] {
                let w = wi.min(wj);
                *weights[i].entry(j).or_insert(0.0) += w;
                *weights[j].entry(i).or_insert(0.0) += w;
            }
        }
    }
    for (i, row) in weights.into_iter().enumerate() {
        let mut pairs: Vec<(usize, f64)> = row.into_iter().collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        pairs.truncate(knn);
        adj[i] = pairs;
    }
    // Symmetrize: keep an edge if either endpoint selected it.
    let mut sym: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
    for (i, row) in adj.iter().enumerate() {
        for &(j, w) in row {
            sym[i].entry(j).or_insert(w);
            sym[j].entry(i).or_insert(w);
        }
    }
    sym.into_iter()
        .map(|row| {
            let mut pairs: Vec<(usize, f64)> = row.into_iter().collect();
            pairs.sort_by_key(|&(j, _)| j);
            pairs
        })
        .collect()
}

/// Symmetric normalization `D^{-1/2} (A + I) D^{-1/2}` of an adjacency
/// list, returned dense — the GCN propagation operator used by SDCN.
pub fn normalized_adjacency(adj: &[Vec<(usize, f64)>]) -> Matrix {
    let n = adj.len();
    let mut a = Matrix::zeros(n, n);
    for (i, row) in adj.iter().enumerate() {
        a[(i, i)] = 1.0; // self loop
        for &(j, w) in row {
            a[(i, j)] = w.max(a[(i, j)]);
        }
    }
    // Symmetrize defensively.
    for i in 0..n {
        for j in (i + 1)..n {
            let m = a[(i, j)].max(a[(j, i)]);
            a[(i, j)] = m;
            a[(j, i)] = m;
        }
    }
    let deg: Vec<f64> = (0..n).map(|i| (0..n).map(|j| a[(i, j)]).sum()).collect();
    Matrix::from_fn(n, n, |i, j| {
        a[(i, j)] / (deg[i].sqrt() * deg[j].sqrt()).max(1e-12)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::Rssi;

    fn sample(id: u32, readings: &[(u64, f64)]) -> SignalSample {
        SignalSample::builder(id)
            .readings(
                readings
                    .iter()
                    .map(|&(m, r)| (MacAddr::from_u64(m), Rssi::new(r).unwrap())),
            )
            .build()
    }

    #[test]
    fn dense_matrix_fills_missing() {
        let samples = vec![sample(0, &[(1, -60.0)]), sample(1, &[(2, -50.0)])];
        let (x, macs) = dense_matrix(&samples);
        assert_eq!(x.shape(), (2, 2));
        assert_eq!(macs.len(), 2);
        // Sample 0 misses mac 2.
        let mac2_col = macs
            .iter()
            .position(|&m| m == MacAddr::from_u64(2))
            .unwrap();
        assert_eq!(x[(0, mac2_col)], MISSING_DBM);
        assert_eq!(x[(1, mac2_col)], -50.0);
    }

    #[test]
    fn normalized_features_in_unit_interval() {
        let samples = vec![
            sample(0, &[(1, -60.0), (2, 0.0)]),
            sample(1, &[(1, -119.0)]),
        ];
        let f = normalized_features(&samples);
        assert!(f.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((f[(0, 0)] - 0.5).abs() < 1e-12); // -60 -> 0.5
    }

    #[test]
    fn knn_projection_connects_shared_mac_samples() {
        let samples = vec![
            sample(0, &[(1, -50.0)]),
            sample(1, &[(1, -55.0)]),
            sample(2, &[(9, -40.0)]),
        ];
        let adj = knn_projection(&samples, 5);
        assert!(adj[0].iter().any(|&(j, _)| j == 1));
        assert!(adj[1].iter().any(|&(j, _)| j == 0));
        assert!(adj[2].is_empty());
    }

    #[test]
    fn knn_truncates_to_strongest() {
        // Sample 0 hears MAC 1 weakly; samples 1..=5 share a strong MAC 2
        // among themselves, so none of them selects sample 0 and no
        // backedge is re-added by symmetrization. Sample 0 keeps only its
        // own knn = 2 strongest picks.
        let mut samples = vec![sample(0, &[(1, -80.0)])];
        for i in 1..=5u32 {
            samples.push(sample(i, &[(1, -80.0), (2, -30.0)]));
        }
        let adj = knn_projection(&samples, 2);
        assert_eq!(adj[0].len(), 2, "kept {:?}", adj[0]);
    }

    #[test]
    fn normalized_adjacency_rows_bounded() {
        let samples = vec![
            sample(0, &[(1, -50.0)]),
            sample(1, &[(1, -55.0)]),
            sample(2, &[(1, -60.0)]),
        ];
        let adj = knn_projection(&samples, 3);
        let a = normalized_adjacency(&adj);
        assert!(a.is_finite());
        assert_eq!(a.shape(), (3, 3));
        for i in 0..3 {
            assert!(a[(i, i)] > 0.0, "self loop survives normalization");
        }
    }

    #[test]
    fn empty_scan_handled() {
        let samples = vec![SignalSample::builder(0).build()];
        let (x, macs) = dense_matrix(&samples);
        assert_eq!(macs.len(), 0);
        assert_eq!(x.shape(), (1, 1)); // padded to one column
        let adj = knn_projection(&samples, 3);
        assert!(adj[0].is_empty());
    }
}
