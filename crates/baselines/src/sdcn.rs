//! SDCN: Structural Deep Clustering Network (Bo et al., WWW'20), §V-A.
//!
//! SDCN couples an autoencoder over the dense feature matrix with a GCN
//! module over the input graph and a DEC-style self-supervised clustering
//! loss driven by cluster centroids. This re-implementation keeps that
//! objective structure at per-building scale:
//!
//! 1. Features are smoothed with one GCN propagation `X_s = Â X`
//!    (`Â = D^{-1/2}(A+I)D^{-1/2}` over the sample–sample projection of
//!    the bipartite graph) — the structural module.
//! 2. An autoencoder `Z = tanh(X_s W1)`, `X̂ = sigmoid(Z W2)` is
//!    pretrained on reconstruction.
//! 3. Cluster centroids initialized by k-means on `Z` drive the
//!    self-supervised loss `L = L_recon + α·KL(P ‖ Q)` with the
//!    Student-t soft assignment `Q` and sharpened target `P`, refreshed
//!    periodically — exactly the mechanism the paper identifies as SDCN's
//!    weakness ("the centers estimated during training may not provide
//!    good guidance", §V-B).
//!
//! The final assignment is the argmax of `Q`.

use std::sync::Arc;

use fis_autograd::tape::student_t_assignment;
use fis_autograd::{Adam, Tape};
use fis_cluster::{kmeans, KMeansConfig};
use fis_linalg::{init, Matrix};
use fis_types::SignalSample;

use crate::features::{knn_projection, normalized_adjacency, normalized_features};
use crate::BaselineClusterer;

/// The SDCN baseline.
#[derive(Debug, Clone)]
pub struct Sdcn {
    dim: usize,
    seed: u64,
    pretrain_epochs: usize,
    train_epochs: usize,
    refresh_interval: usize,
    alpha: f64,
    learning_rate: f64,
    knn: usize,
}

impl Sdcn {
    /// Creates the baseline with embedding dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            seed: 0,
            pretrain_epochs: 60,
            train_epochs: 40,
            refresh_interval: 10,
            alpha: 0.5,
            learning_rate: 0.01,
            knn: 10,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl BaselineClusterer for Sdcn {
    fn name(&self) -> &'static str {
        "SDCN"
    }

    fn cluster(&self, samples: &[SignalSample], k: usize) -> Result<Vec<usize>, String> {
        if samples.is_empty() {
            return Err("cannot cluster zero samples".to_owned());
        }
        if k == 0 || k > samples.len() {
            return Err(format!("invalid k = {k} for {} samples", samples.len()));
        }
        let x = normalized_features(samples);
        let adj = knn_projection(samples, self.knn);
        let a_norm = normalized_adjacency(&adj);
        let x_smooth = a_norm.matmul(&x); // structural module
        let (n, m) = x_smooth.shape();

        let mut w1 = init::xavier_uniform(m, self.dim, self.seed ^ 0x5D);
        let mut w2 = init::xavier_uniform(self.dim, m, self.seed ^ 0x5E);
        let mut opt = Adam::new(self.learning_rate);

        // Phase 1: reconstruction pretraining.
        for _ in 0..self.pretrain_epochs {
            let mut tape = Tape::new();
            let xv = tape.leaf(x_smooth.clone());
            let w1v = tape.leaf(w1.clone());
            let w2v = tape.leaf(w2.clone());
            let h = tape.matmul(xv, w1v);
            let z = tape.tanh(h);
            let out = tape.matmul(z, w2v);
            let xhat = tape.sigmoid(out);
            let diff = tape.sub(xhat, xv);
            let sq = tape.square(diff);
            let loss = tape.mean_all(sq);
            tape.backward(loss);
            opt.step("w1", &mut w1, tape.grad(w1v));
            opt.step("w2", &mut w2, tape.grad(w2v));
        }

        // Centroid initialization by k-means on the pretrained embedding.
        let embed = |w1: &Matrix| -> Matrix { x_smooth.matmul(w1).map(f64::tanh) };
        let z0 = embed(&w1);
        let points: Vec<Vec<f64>> = (0..n).map(|r| z0.row(r).to_vec()).collect();
        let init_assign = kmeans(&points, &KMeansConfig::new(k).seed(self.seed))?;
        let mut mu = centroids(&z0, &init_assign, k);

        // Phase 2: joint reconstruction + self-supervised clustering.
        let mut p = Arc::new(sharpen(&student_t_assignment(&z0, &mu)));
        for epoch in 0..self.train_epochs {
            if epoch > 0 && epoch % self.refresh_interval == 0 {
                let z = embed(&w1);
                p = Arc::new(sharpen(&student_t_assignment(&z, &mu)));
            }
            let mut tape = Tape::new();
            let xv = tape.leaf(x_smooth.clone());
            let w1v = tape.leaf(w1.clone());
            let w2v = tape.leaf(w2.clone());
            let muv = tape.leaf(mu.clone());
            let h = tape.matmul(xv, w1v);
            let z = tape.tanh(h);
            let out = tape.matmul(z, w2v);
            let xhat = tape.sigmoid(out);
            let diff = tape.sub(xhat, xv);
            let sq = tape.square(diff);
            let recon = tape.mean_all(sq);
            let kl = tape.dec_loss(z, muv, Arc::clone(&p));
            let kl_scaled = tape.scale(kl, self.alpha / n as f64);
            let loss = tape.add(recon, kl_scaled);
            tape.backward(loss);
            opt.step("w1", &mut w1, tape.grad(w1v));
            opt.step("w2", &mut w2, tape.grad(w2v));
            opt.step("mu", &mut mu, tape.grad(muv));
        }

        // Final assignment: argmax of the soft assignment.
        let z = embed(&w1);
        let q = student_t_assignment(&z, &mu);
        let assignment: Vec<usize> = (0..n)
            .map(|i| fis_linalg::vec_ops::argmax(q.row(i)).expect("k >= 1 columns"))
            .collect();
        Ok(fis_cluster::relabel_compact(&assignment))
    }
}

/// Mean embedding per cluster.
pub(crate) fn centroids(z: &Matrix, assignment: &[usize], k: usize) -> Matrix {
    let d = z.cols();
    let mut mu = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (i, &c) in assignment.iter().enumerate() {
        counts[c.min(k - 1)] += 1;
        fis_linalg::vec_ops::axpy(mu.row_mut(c.min(k - 1)), 1.0, z.row(i));
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0 {
            fis_linalg::vec_ops::scale(mu.row_mut(c), 1.0 / count as f64);
        }
    }
    mu
}

/// DEC target distribution `p_ij ∝ q_ij² / Σ_i q_ij`, rows renormalized.
pub(crate) fn sharpen(q: &Matrix) -> Matrix {
    let (n, k) = q.shape();
    let col_sums: Vec<f64> = (0..k).map(|j| (0..n).map(|i| q[(i, j)]).sum()).collect();
    let mut p = Matrix::zeros(n, k);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..k {
            let v = q[(i, j)] * q[(i, j)] / col_sums[j].max(1e-12);
            p[(i, j)] = v;
            row_sum += v;
        }
        for j in 0..k {
            p[(i, j)] /= row_sum.max(1e-12);
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::{MacAddr, Rssi};

    fn sample(id: u32, macs: &[u64]) -> SignalSample {
        SignalSample::builder(id)
            .readings(
                macs.iter()
                    .map(|&m| (MacAddr::from_u64(m), Rssi::new(-55.0).unwrap())),
            )
            .build()
    }

    fn two_groups(per_side: u32) -> Vec<SignalSample> {
        let mut v = Vec::new();
        for i in 0..per_side {
            v.push(sample(i, &[1, 2, 3, u64::from(i % 2) + 4]));
        }
        for i in per_side..2 * per_side {
            v.push(sample(i, &[10, 11, 12, u64::from(i % 2) + 13]));
        }
        v
    }

    #[test]
    fn separates_two_groups() {
        let samples = two_groups(12);
        let labels = Sdcn::new(4).seed(1).cluster(&samples, 2).unwrap();
        let first = labels[0];
        assert!(labels[..12].iter().all(|&l| l == first), "{labels:?}");
        assert!(labels[12..].iter().all(|&l| l != first), "{labels:?}");
    }

    #[test]
    fn deterministic() {
        let samples = two_groups(8);
        let a = Sdcn::new(4).seed(2).cluster(&samples, 2).unwrap();
        let b = Sdcn::new(4).seed(2).cluster(&samples, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Sdcn::new(4).cluster(&[], 2).is_err());
        let samples = two_groups(2);
        assert!(Sdcn::new(4).cluster(&samples, 0).is_err());
        assert!(Sdcn::new(4).cluster(&samples, 100).is_err());
    }

    #[test]
    fn centroids_average_members() {
        let z = Matrix::from_rows(&[&[0.0, 0.0], &[2.0, 2.0], &[10.0, 10.0]]);
        let mu = centroids(&z, &[0, 0, 1], 2);
        assert_eq!(mu.row(0), &[1.0, 1.0]);
        assert_eq!(mu.row(1), &[10.0, 10.0]);
    }

    #[test]
    fn sharpen_rows_remain_distributions() {
        let q = Matrix::from_rows(&[&[0.7, 0.3], &[0.4, 0.6]]);
        let p = sharpen(&q);
        for i in 0..2 {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // Sharpening pushes the dominant entry higher.
        assert!(p[(0, 0)] > q[(0, 0)]);
    }
}
