//! DAEGC: Deep Attentional Embedded Graph Clustering (Wang et al.,
//! IJCAI'19), §V-A baseline.
//!
//! DAEGC learns node embeddings with a graph attentional autoencoder that
//! reconstructs the adjacency structure, then refines them with a DEC-style
//! KL self-training loss against gradually-updated cluster centroids. This
//! re-implementation keeps both ingredients and, per §V-A, feeds it the
//! bipartite MAC×sample graph directly:
//!
//! 1. **Graph autoencoder**: bounded node embeddings `Z = tanh(W)` over
//!    all bipartite nodes are trained so `σ(z_i · z_j)` reconstructs the
//!    sample–MAC edges (positives) against random pairs (negatives).
//!    Unlike RF-GNN, every edge counts equally — spillover MACs tie
//!    adjacent-floor samples as strongly as same-floor ones, which is the
//!    structural reason DAEGC trails FIS-ONE here.
//! 2. **Self-training**: after pretraining, the loss adds `KL(P ‖ Q)` on
//!    the sample-node embeddings against centroids updated by gradient —
//!    whose centroid-quality sensitivity is precisely why the paper's
//!    multi-modal per-floor RF distributions hurt it (§V-B).

use std::sync::Arc;

use fis_autograd::tape::student_t_assignment;
use fis_autograd::{Adam, Tape};
use fis_cluster::{kmeans, KMeansConfig};
use fis_linalg::{init, Matrix};
use fis_types::SignalSample;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::sdcn::{centroids, sharpen};
use crate::BaselineClusterer;

/// The DAEGC baseline.
#[derive(Debug, Clone)]
pub struct Daegc {
    dim: usize,
    seed: u64,
    pretrain_epochs: usize,
    train_epochs: usize,
    refresh_interval: usize,
    gamma: f64,
    learning_rate: f64,
    negatives_per_edge: usize,
}

impl Daegc {
    /// Creates the baseline with embedding dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            seed: 0,
            pretrain_epochs: 60,
            train_epochs: 40,
            refresh_interval: 10,
            gamma: 0.5,
            learning_rate: 0.01,
            negatives_per_edge: 2,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Reconstruction loss over graph edges plus sampled negatives,
    /// returning the scalar loss var. `za`/`zb` index rows of `z`.
    fn recon_loss(
        tape: &mut Tape,
        z: fis_autograd::Var,
        pos: &[(usize, usize)],
        neg: &[(usize, usize)],
    ) -> fis_autograd::Var {
        let (pi, pj): (Vec<usize>, Vec<usize>) = pos.iter().copied().unzip();
        let (ni, nj): (Vec<usize>, Vec<usize>) = neg.iter().copied().unzip();
        let zi = tape.gather_rows(z, Arc::new(pi));
        let zj = tape.gather_rows(z, Arc::new(pj));
        let pos_scores = tape.rowwise_dot(zi, zj);
        let pos_losses = tape.neg_log_sigmoid(pos_scores);
        let pos_sum = tape.sum_all(pos_losses);
        let wi = tape.gather_rows(z, Arc::new(ni));
        let wj = tape.gather_rows(z, Arc::new(nj));
        let neg_scores = tape.rowwise_dot(wi, wj);
        let flipped = tape.scale(neg_scores, -1.0);
        let neg_losses = tape.neg_log_sigmoid(flipped);
        let neg_sum = tape.sum_all(neg_losses);
        let total = tape.add(pos_sum, neg_sum);
        tape.scale(total, 1.0 / (pos.len() + neg.len()).max(1) as f64)
    }
}

impl BaselineClusterer for Daegc {
    fn name(&self) -> &'static str {
        "DAEGC"
    }

    fn cluster(&self, samples: &[SignalSample], k: usize) -> Result<Vec<usize>, String> {
        if samples.is_empty() {
            return Err("cannot cluster zero samples".to_owned());
        }
        if k == 0 || k > samples.len() {
            return Err(format!("invalid k = {k} for {} samples", samples.len()));
        }
        // Per §V-A the bipartite graph itself is DAEGC's input: node
        // embeddings over samples AND MACs are trained to reconstruct the
        // sample–MAC edges. Spillover MACs connect samples of adjacent
        // floors with the same strength as same-floor MACs (DAEGC has no
        // RSS attention over them), which is what costs it accuracy here.
        let graph = fis_graph::BipartiteGraph::from_samples(samples).map_err(|e| e.to_string())?;
        let n = samples.len();
        let total_nodes = graph.n_nodes();

        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| graph.neighbors(i).iter().map(move |&(j, _)| (i, j)))
            .collect();
        if edges.is_empty() {
            return Err("bipartite graph has no edges".to_owned());
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        // Free node embeddings play the role of the attention encoder's
        // output; tanh keeps them bounded like the original's activations.
        let mut w = init::xavier_uniform(total_nodes, self.dim, self.seed ^ 0xDA);
        let mut opt = Adam::new(self.learning_rate);
        let embed =
            |w: &Matrix| -> Matrix { w.map(f64::tanh).gather_rows(&(0..n).collect::<Vec<_>>()) };

        // Phase 1: structure-reconstruction pretraining.
        for _ in 0..self.pretrain_epochs {
            let neg = self.draw_negatives(&mut rng, total_nodes, edges.len());
            let mut tape = Tape::new();
            let wv = tape.leaf(w.clone());
            let z = tape.tanh(wv);
            let loss = Self::recon_loss(&mut tape, z, &edges, &neg);
            tape.backward(loss);
            opt.step("w", &mut w, tape.grad(wv));
        }

        // Centroids from k-means on the pretrained embedding.
        let z0 = embed(&w);
        let points: Vec<Vec<f64>> = (0..n).map(|r| z0.row(r).to_vec()).collect();
        let init_assign = kmeans(&points, &KMeansConfig::new(k).seed(self.seed))?;
        let mut mu = centroids(&z0, &init_assign, k);

        // Phase 2: joint reconstruction + KL self-training.
        let mut p = Arc::new(sharpen(&student_t_assignment(&z0, &mu)));
        for epoch in 0..self.train_epochs {
            if epoch > 0 && epoch % self.refresh_interval == 0 {
                let z = embed(&w);
                p = Arc::new(sharpen(&student_t_assignment(&z, &mu)));
            }
            let neg = self.draw_negatives(&mut rng, total_nodes, edges.len());
            let mut tape = Tape::new();
            let wv = tape.leaf(w.clone());
            let muv = tape.leaf(mu.clone());
            let z = tape.tanh(wv);
            let recon = Self::recon_loss(&mut tape, z, &edges, &neg);
            let sample_idx: Vec<usize> = (0..n).collect();
            let z_samples = tape.gather_rows(z, Arc::new(sample_idx));
            let kl = tape.dec_loss(z_samples, muv, Arc::clone(&p));
            let kl_scaled = tape.scale(kl, self.gamma / n as f64);
            let loss = tape.add(recon, kl_scaled);
            tape.backward(loss);
            opt.step("w", &mut w, tape.grad(wv));
            opt.step("mu", &mut mu, tape.grad(muv));
        }

        let z = embed(&w);
        let q = student_t_assignment(&z, &mu);
        let assignment: Vec<usize> = (0..n)
            .map(|i| fis_linalg::vec_ops::argmax(q.row(i)).expect("k >= 1 columns"))
            .collect();
        Ok(fis_cluster::relabel_compact(&assignment))
    }
}

impl Daegc {
    fn draw_negatives(&self, rng: &mut ChaCha8Rng, n: usize, edges: usize) -> Vec<(usize, usize)> {
        (0..edges * self.negatives_per_edge)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|&(a, b)| a != b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::{MacAddr, Rssi};

    fn sample(id: u32, macs: &[u64]) -> SignalSample {
        SignalSample::builder(id)
            .readings(
                macs.iter()
                    .map(|&m| (MacAddr::from_u64(m), Rssi::new(-55.0).unwrap())),
            )
            .build()
    }

    fn two_groups(per_side: u32) -> Vec<SignalSample> {
        let mut v = Vec::new();
        for i in 0..per_side {
            v.push(sample(i, &[1, 2, 3, u64::from(i % 2) + 4]));
        }
        for i in per_side..2 * per_side {
            v.push(sample(i, &[10, 11, 12, u64::from(i % 2) + 13]));
        }
        v
    }

    #[test]
    fn separates_two_groups() {
        let samples = two_groups(12);
        let labels = Daegc::new(4).seed(1).cluster(&samples, 2).unwrap();
        let first = labels[0];
        assert!(labels[..12].iter().all(|&l| l == first), "{labels:?}");
        assert!(labels[12..].iter().all(|&l| l != first), "{labels:?}");
    }

    #[test]
    fn deterministic() {
        let samples = two_groups(8);
        let a = Daegc::new(4).seed(3).cluster(&samples, 2).unwrap();
        let b = Daegc::new(4).seed(3).cluster(&samples, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(Daegc::new(4).cluster(&[], 2).is_err());
        let disconnected = vec![
            SignalSample::builder(0).build(),
            SignalSample::builder(1).build(),
        ];
        assert!(Daegc::new(4).cluster(&disconnected, 2).is_err());
    }
}
