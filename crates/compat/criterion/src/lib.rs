//! Offline micro-benchmark harness with a `criterion`-compatible surface.
//!
//! Implements the subset of criterion's API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is warmed up briefly, then
//! timed over enough iterations to fill a small measurement window;
//! mean and best iteration times are printed to stdout.
//!
//! Set `CRITERION_QUICK=1` to shrink the measurement window (useful in
//! CI where only "does it run" matters). Set `CRITERION_JSON=path` to
//! additionally write a machine-readable report (bench name → median /
//! best / mean ns) when the harness finishes — the input of the CI
//! perf-regression gate (`fis-bench`'s `perf_gate` binary).

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn measurement_window() -> Duration {
    if std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1") {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(400)
    }
}

fn run_bench(name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: grow the iteration count until one batch takes a
    // measurable slice of the window.
    let window = measurement_window();
    let mut iters = 1u64;
    let mut batch;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        batch = b.elapsed;
        if batch >= window / 20 || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    // Measurement: repeat batches until the window is filled.
    let mut samples = vec![batch.as_secs_f64() / iters as f64];
    let started = Instant::now();
    while started.elapsed() < window && samples.len() < 50 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = {
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        sorted[sorted.len() / 2]
    };
    println!(
        "bench {name:<44} median {:>12}  best {:>12}  ({} samples x {iters} iters)",
        format_time(median),
        format_time(best),
        samples.len()
    );
    record_result(BenchResult {
        name: name.to_owned(),
        median_ns: median * 1e9,
        best_ns: best * 1e9,
        mean_ns: mean * 1e9,
        samples: samples.len(),
        iters,
    });
}

/// One finished benchmark, in nanoseconds per iteration.
struct BenchResult {
    name: String,
    median_ns: f64,
    best_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters: u64,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());
    &RESULTS
}

fn record_result(result: BenchResult) {
    results()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(result);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes the machine-readable report to the path in `CRITERION_JSON`,
/// if set. Called by [`criterion_main!`] after every group has run; a
/// no-op otherwise. Benches run in registration order, so the report is
/// deterministic up to the timings themselves.
pub fn write_json_report() {
    let Some(path) = std::env::var_os("CRITERION_JSON") else {
        return;
    };
    let results = results().lock().unwrap_or_else(|p| p.into_inner());
    let mode = if std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1") {
        "quick"
    } else {
        "full"
    };
    let mut body = String::new();
    let _ = write!(
        body,
        "{{\"schema\":\"fis-one/bench-report\",\"version\":1,\"mode\":\"{mode}\",\"stages\":{{"
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(
            body,
            "\"{}\":{{\"median_ns\":{:.1},\"best_ns\":{:.1},\"mean_ns\":{:.1},\
             \"samples\":{},\"iters\":{}}}",
            json_escape(&r.name),
            r.median_ns,
            r.best_ns,
            r.mean_ns,
            r.samples,
            r.iters
        );
    }
    body.push_str("}}\n");
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!(
            "criterion shim: could not write {}: {e}",
            std::path::Path::new(&path).display()
        );
    } else {
        println!(
            "criterion shim: wrote report to {}",
            std::path::Path::new(&path).display()
        );
    }
}

fn format_time(secs: f64) -> String {
    let mut s = String::new();
    if secs >= 1.0 {
        let _ = write!(s, "{secs:.3} s");
    } else if secs >= 1e-3 {
        let _ = write!(s, "{:.3} ms", secs * 1e3);
    } else if secs >= 1e-6 {
        let _ = write!(s, "{:.3} us", secs * 1e6);
    } else {
        let _ = write!(s, "{:.1} ns", secs * 1e9);
    }
    s
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark immediately.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under this group's prefix.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Runs one parameterized benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.full), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given benchmark groups, then flushing the
/// optional `CRITERION_JSON` machine-readable report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_and_ids_compose() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        let input = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn json_report_is_parseable_shape() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("shim/json_probe", |b| {
            b.iter(|| (0..10u64).product::<u64>())
        });
        let path = std::env::temp_dir().join("criterion_shim_report_test.json");
        std::env::set_var("CRITERION_JSON", &path);
        write_json_report();
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("{\"schema\":\"fis-one/bench-report\""));
        assert!(text.contains("\"shim/json_probe\""));
        assert!(text.contains("\"median_ns\""));
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("us"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
