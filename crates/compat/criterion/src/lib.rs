//! Offline micro-benchmark harness with a `criterion`-compatible surface.
//!
//! Implements the subset of criterion's API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is warmed up briefly, then
//! timed over enough iterations to fill a small measurement window;
//! mean and best iteration times are printed to stdout.
//!
//! Set `CRITERION_QUICK=1` to shrink the measurement window (useful in
//! CI where only "does it run" matters).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn measurement_window() -> Duration {
    if std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1") {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(400)
    }
}

fn run_bench(name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: grow the iteration count until one batch takes a
    // measurable slice of the window.
    let window = measurement_window();
    let mut iters = 1u64;
    let mut batch;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        batch = b.elapsed;
        if batch >= window / 20 || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    // Measurement: repeat batches until the window is filled.
    let mut samples = vec![batch.as_secs_f64() / iters as f64];
    let started = Instant::now();
    while started.elapsed() < window && samples.len() < 50 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {name:<44} mean {:>12}  best {:>12}  ({} samples x {iters} iters)",
        format_time(mean),
        format_time(best),
        samples.len()
    );
}

fn format_time(secs: f64) -> String {
    let mut s = String::new();
    if secs >= 1.0 {
        let _ = write!(s, "{secs:.3} s");
    } else if secs >= 1e-3 {
        let _ = write!(s, "{:.3} ms", secs * 1e3);
    } else if secs >= 1e-6 {
        let _ = write!(s, "{:.3} us", secs * 1e6);
    } else {
        let _ = write!(s, "{:.1} ns", secs * 1e9);
    }
    s
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark immediately.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark under this group's prefix.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Runs one parameterized benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.full), |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_and_ids_compose() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        let input = vec![1u64, 2, 3];
        g.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn format_time_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("us"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
