//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses.
//!
//! No shrinking, no persistence: each `proptest!` test runs its body for
//! `ProptestConfig::cases` deterministic pseudo-random inputs (seeded from
//! the test name), panicking on the first failure with the iteration
//! index. The supported surface is: `Strategy` (with `prop_map`), numeric
//! range strategies, tuple strategies, `proptest::collection::vec`, the
//! `proptest!`/`prop_assert*!` macros, and `ProptestConfig::with_cases`.

use std::ops::{Range, RangeInclusive};

/// Deterministic generator state handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds a generator; test harnesses derive the seed from the test
    /// name so every test gets an independent, stable stream.
    pub fn new(seed: u64) -> Self {
        Self(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// FNV-1a hash of a test name, used as the per-test seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128 - start as u128 + 1) as u64;
                start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        v.min(f32::from_bits(self.end.to_bits() - 1))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element count for [`vec()`]: an exact size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors with `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let n = self.size.min
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runtime configuration for `proptest!` blocks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Runs `body` for `config.cases` deterministic inputs. Used by the
/// `proptest!` macro expansion; not part of the public proptest API.
pub fn run_cases(test_name: &str, config: &ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    let mut rng = TestRng::new(seed_of(test_name));
    for case in 0..config.cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest case {case}/{} failed for `{test_name}`",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declares deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The commonly imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::generate(&(-1.0..1.0f64), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..100 {
            let v = Strategy::generate(&collection::vec(0u64..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::new(3);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&s, &mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trip(a in 0usize..10, v in collection::vec(-1.0..1.0f64, 1..4)) {
            prop_assert!(a < 10);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
