//! Offline ChaCha8-based RNG compatible with the vendored `rand` shim.
//!
//! Implements the real ChaCha stream cipher core (8 rounds) as the
//! randomness source. Output streams are deterministic and stable across
//! platforms but are not bit-compatible with the upstream `rand_chacha`
//! crate (the workspace only relies on internal reproducibility).

use rand::{RngCore, SeedableRng};

/// A cryptographically strong (ChaCha, 8 rounds) deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Constant + key + counter + nonce state.
    state: [u32; 16],
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word index into `buf`; 16 means exhausted.
    pos: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.pos = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        // counter = 0, nonce = 0
        Self {
            state,
            buf: [0; 16],
            pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_usage_compiles_and_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let k = rng.gen_range(0usize..10);
            assert!(k < 10);
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_not_all_equal() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let words: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(words.windows(2).any(|w| w[0] != w[1]));
    }
}
