//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand`'s surface it actually uses: [`RngCore`],
//! [`SeedableRng`] (with `seed_from_u64` matching `rand_core`'s SplitMix64
//! expansion), the [`Rng`] extension trait with `gen`, `gen_range`, and
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. Distribution semantics
//! follow upstream closely enough for simulation work (uniform floats use
//! 53 random mantissa bits; bounded integers use widening-multiply
//! rejection-free scaling), but streams are NOT bit-compatible with the
//! real crate — only internally reproducible.

/// Core randomness source: 64-bit output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable randomness source.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// `rand_core` uses) and seeds the RNG with it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sealed {
    /// Values `Rng::gen` can produce.
    pub trait Standard {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            // 53 random mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for f32 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Standard for u64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Standard for bool {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// A range of values `Rng::gen_range` can draw from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening multiply maps 64 random bits into [0, span).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + (self.end - self.start) * unit;
        if v >= self.end {
            // One ULP below `end`.
            f32::from_bits(self.end.to_bits() - 1)
        } else {
            v
        }
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the full
    /// range).
    fn gen<T: sealed::Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related randomness helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak but fine for shim self-tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=4u64);
            assert!(i <= 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = Counter(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
