//! Error type for domain-value validation.

use std::error::Error;
use std::fmt;

/// Error returned when constructing or parsing domain values.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypeError {
    /// A MAC address string did not have six `:`-separated hex octets.
    ParseMac(String),
    /// An RSS reading was outside the physically plausible range or NaN.
    InvalidRssi(String),
    /// A floor index was invalid for the building (e.g. out of range).
    InvalidFloor(String),
    /// A building-level structural invariant failed.
    InvalidBuilding(String),
    /// An I/O or serialization problem while loading/saving a dataset.
    Io(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::ParseMac(s) => write!(f, "invalid MAC address syntax: {s}"),
            TypeError::InvalidRssi(s) => write!(f, "invalid RSS reading: {s}"),
            TypeError::InvalidFloor(s) => write!(f, "invalid floor: {s}"),
            TypeError::InvalidBuilding(s) => write!(f, "invalid building: {s}"),
            TypeError::Io(s) => write!(f, "dataset i/o error: {s}"),
        }
    }
}

impl Error for TypeError {}

impl From<std::io::Error> for TypeError {
    fn from(e: std::io::Error) -> Self {
        TypeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = TypeError::ParseMac("xx".into());
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TypeError>();
    }
}
