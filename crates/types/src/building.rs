//! Buildings: collections of samples with ground-truth floor labels.

use crate::error::TypeError;
use crate::floor::FloorId;
use crate::json::{FromJson, Json, ToJson};
use crate::sample::{SampleId, SignalSample};

/// The single floor-labeled sample FIS-ONE is allowed to use.
///
/// The paper's core setting anchors the TSP ordering at the bottom floor;
/// §VI relaxes this to an arbitrary floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledAnchor {
    /// Which sample carries the label.
    pub sample: SampleId,
    /// The disclosed floor of that sample.
    pub floor: FloorId,
}

/// A building's worth of crowdsourced RF signal samples.
///
/// Ground-truth floor labels for *all* samples are stored for evaluation
/// (ARI/NMI/edit distance need them) and for selecting the single labeled
/// anchor; the identification pipeline itself only ever sees the anchor.
///
/// # Invariants
///
/// - `samples.len() == labels.len()`
/// - every label index is `< floors`
/// - sample ids are dense: `samples[i].id().index() == i`
///
/// These are enforced by [`Building::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct Building {
    name: String,
    floors: usize,
    samples: Vec<SignalSample>,
    labels: Vec<FloorId>,
}

impl Building {
    /// Creates a building after validating all structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InvalidBuilding`] if the sample/label lengths
    /// differ, a label is out of range, ids are not dense, or `floors == 0`.
    pub fn new(
        name: impl Into<String>,
        floors: usize,
        samples: Vec<SignalSample>,
        labels: Vec<FloorId>,
    ) -> Result<Self, TypeError> {
        let name = name.into();
        if floors == 0 {
            return Err(TypeError::InvalidBuilding(format!(
                "building {name} has zero floors"
            )));
        }
        if samples.len() != labels.len() {
            return Err(TypeError::InvalidBuilding(format!(
                "building {name}: {} samples but {} labels",
                samples.len(),
                labels.len()
            )));
        }
        for (i, s) in samples.iter().enumerate() {
            if s.id().index() != i {
                return Err(TypeError::InvalidBuilding(format!(
                    "building {name}: sample at position {i} has id {}",
                    s.id()
                )));
            }
        }
        if let Some(bad) = labels.iter().find(|l| l.index() >= floors) {
            return Err(TypeError::InvalidBuilding(format!(
                "building {name}: label {bad} exceeds floor count {floors}"
            )));
        }
        Ok(Self {
            name,
            floors,
            samples,
            labels,
        })
    }

    /// The building's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of floors.
    pub fn floors(&self) -> usize {
        self.floors
    }

    /// All samples, ordered by dense id.
    pub fn samples(&self) -> &[SignalSample] {
        &self.samples
    }

    /// Ground-truth floor labels, parallel to [`Building::samples`].
    ///
    /// Only the evaluation harness and anchor selection may use these.
    pub fn ground_truth(&self) -> &[FloorId] {
        &self.labels
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the building holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples on each floor (indexed by floor index).
    pub fn samples_per_floor(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.floors];
        for l in &self.labels {
            counts[l.index()] += 1;
        }
        counts
    }

    /// The first sample on the requested floor, as a labeled anchor.
    ///
    /// Deterministic (lowest sample id), which keeps experiments
    /// reproducible.
    pub fn anchor_on(&self, floor: FloorId) -> Option<LabeledAnchor> {
        self.labels
            .iter()
            .position(|&l| l == floor)
            .map(|i| LabeledAnchor {
                sample: self.samples[i].id(),
                floor,
            })
    }

    /// The anchor on the bottom floor — the paper's core setting.
    pub fn bottom_anchor(&self) -> Option<LabeledAnchor> {
        self.anchor_on(FloorId::BOTTOM)
    }

    /// Applies the paper's Microsoft-dataset filtering (§V-A): drops floors
    /// with fewer than `min_samples_per_floor` samples (re-indexing the
    /// remaining floors bottom-up) and returns `None` if fewer than
    /// `min_floors` floors remain (two-story buildings are excluded).
    pub fn filtered(&self, min_samples_per_floor: usize, min_floors: usize) -> Option<Building> {
        let counts = self.samples_per_floor();
        let kept: Vec<usize> = (0..self.floors)
            .filter(|&f| counts[f] >= min_samples_per_floor)
            .collect();
        if kept.len() < min_floors {
            return None;
        }
        let remap: Vec<Option<usize>> = (0..self.floors)
            .map(|f| kept.iter().position(|&k| k == f))
            .collect();
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for (s, &l) in self.samples.iter().zip(self.labels.iter()) {
            if let Some(new_floor) = remap[l.index()] {
                samples.push(s.clone().with_id(samples.len() as u32));
                labels.push(FloorId::from_index(new_floor));
            }
        }
        Some(
            Building::new(self.name.clone(), kept.len(), samples, labels)
                .expect("filtering preserves invariants"),
        )
    }
}

impl ToJson for Building {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("floors", Json::Num(self.floors as f64)),
            (
                "samples",
                Json::Arr(self.samples.iter().map(ToJson::to_json).collect()),
            ),
            (
                "labels",
                Json::Arr(self.labels.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Building {
    fn from_json(value: &Json) -> Result<Self, TypeError> {
        let name = value
            .field("name")?
            .as_str()
            .ok_or_else(|| TypeError::Io("building name must be a string".to_owned()))?;
        let floors = value.field("floors")?.as_usize().ok_or_else(|| {
            TypeError::Io("floor count must be a non-negative integer".to_owned())
        })?;
        let samples = value
            .field("samples")?
            .as_arr()
            .ok_or_else(|| TypeError::Io("samples must be an array".to_owned()))?
            .iter()
            .map(SignalSample::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let labels = value
            .field("labels")?
            .as_arr()
            .ok_or_else(|| TypeError::Io("labels must be an array".to_owned()))?
            .iter()
            .map(FloorId::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        // Building::new re-validates every structural invariant, so a
        // hand-edited corpus cannot smuggle in inconsistent data.
        Building::new(name, floors, samples, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;
    use crate::rssi::Rssi;

    fn sample(id: u32, macs: &[u64]) -> SignalSample {
        SignalSample::builder(id)
            .readings(
                macs.iter()
                    .map(|&m| (MacAddr::from_u64(m), Rssi::new(-50.0).unwrap())),
            )
            .build()
    }

    fn small_building() -> Building {
        // 3 floors; floor 0 has 2 samples, floor 1 has 2, floor 2 has 1.
        Building::new(
            "B",
            3,
            (0..5).map(|i| sample(i, &[u64::from(i) + 1])).collect(),
            vec![
                FloorId::from_index(0),
                FloorId::from_index(0),
                FloorId::from_index(1),
                FloorId::from_index(1),
                FloorId::from_index(2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let err = Building::new("B", 2, vec![sample(0, &[1])], vec![]);
        assert!(err.is_err());
    }

    #[test]
    fn new_validates_floor_range() {
        let err = Building::new("B", 1, vec![sample(0, &[1])], vec![FloorId::from_index(1)]);
        assert!(err.is_err());
    }

    #[test]
    fn new_validates_dense_ids() {
        let err = Building::new("B", 1, vec![sample(5, &[1])], vec![FloorId::BOTTOM]);
        assert!(err.is_err());
    }

    #[test]
    fn new_rejects_zero_floors() {
        assert!(Building::new("B", 0, vec![], vec![]).is_err());
    }

    #[test]
    fn samples_per_floor_counts() {
        let b = small_building();
        assert_eq!(b.samples_per_floor(), vec![2, 2, 1]);
    }

    #[test]
    fn anchors_are_deterministic() {
        let b = small_building();
        let a = b.bottom_anchor().unwrap();
        assert_eq!(a.sample, SampleId(0));
        assert_eq!(a.floor, FloorId::BOTTOM);
        let a2 = b.anchor_on(FloorId::from_index(2)).unwrap();
        assert_eq!(a2.sample, SampleId(4));
        assert!(b.anchor_on(FloorId::from_index(9)).is_none());
    }

    #[test]
    fn filtered_drops_thin_floors_and_reindexes() {
        let b = small_building();
        // floor 2 has only one sample -> dropped with threshold 2.
        let f = b.filtered(2, 2).unwrap();
        assert_eq!(f.floors(), 2);
        assert_eq!(f.len(), 4);
        assert_eq!(f.samples_per_floor(), vec![2, 2]);
        // ids re-densified
        for (i, s) in f.samples().iter().enumerate() {
            assert_eq!(s.id().index(), i);
        }
    }

    #[test]
    fn filtered_rejects_too_few_floors() {
        let b = small_building();
        assert!(b.filtered(2, 3).is_none()); // only 2 floors survive
    }

    #[test]
    fn json_round_trip() {
        let b = small_building();
        let json = b.to_json_string();
        let back = Building::from_json_str(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn json_load_revalidates_invariants() {
        // A corpus whose labels exceed the floor count must be rejected.
        let bad = r#"{"name":"x","floors":1,"samples":[{"id":0,"readings":[]}],"labels":[3]}"#;
        assert!(Building::from_json_str(bad).is_err());
    }
}
