//! MAC addresses of sensed access points.

use std::fmt;
use std::str::FromStr;

use crate::error::TypeError;
use crate::json::{FromJson, Json, ToJson};

/// A 48-bit media access control address identifying one AP radio.
///
/// Stored as six octets; ordered and hashable so it can key maps and be
/// interned into dense indices by the graph layer.
///
/// # Example
///
/// ```
/// use fis_types::MacAddr;
///
/// let mac: MacAddr = "aa:bb:cc:dd:ee:ff".parse()?;
/// assert_eq!(mac.to_string(), "aa:bb:cc:dd:ee:ff");
/// assert_eq!(MacAddr::from_u64(mac.to_u64()), mac);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// Creates a MAC address from its six octets.
    pub fn new(octets: [u8; 6]) -> Self {
        Self(octets)
    }

    /// The six octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Packs the address into the low 48 bits of a `u64`.
    pub fn to_u64(&self) -> u64 {
        self.0
            .iter()
            .fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
    }

    /// Unpacks a MAC address from the low 48 bits of a `u64`.
    ///
    /// The high 16 bits are ignored, which makes this convenient for
    /// generating synthetic distinct MACs from counters.
    pub fn from_u64(v: u64) -> Self {
        let mut o = [0u8; 6];
        for i in 0..6 {
            o[5 - i] = ((v >> (8 * i)) & 0xFF) as u8;
        }
        Self(o)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(TypeError::ParseMac(s.to_owned()));
        }
        let mut octets = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = u8::from_str_radix(p, 16).map_err(|_| TypeError::ParseMac(s.to_owned()))?;
        }
        Ok(Self(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        Self(octets)
    }
}

impl ToJson for MacAddr {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for MacAddr {
    fn from_json(value: &Json) -> Result<Self, TypeError> {
        value
            .as_str()
            .ok_or_else(|| TypeError::Io("MAC address must be a JSON string".to_owned()))?
            .parse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        let mac: MacAddr = "00:1a:2b:3c:4d:5e".parse().unwrap();
        assert_eq!(mac.to_string(), "00:1a:2b:3c:4d:5e");
        assert_eq!(mac.octets(), [0x00, 0x1a, 0x2b, 0x3c, 0x4d, 0x5e]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("aa:bb:cc:dd:ee".parse::<MacAddr>().is_err());
        assert!("aa:bb:cc:dd:ee:gg".parse::<MacAddr>().is_err());
        assert!("aa-bb-cc-dd-ee-ff".parse::<MacAddr>().is_err());
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 0xFFFF_FFFF_FFFF, 0x1234_5678_9ABC] {
            assert_eq!(MacAddr::from_u64(v).to_u64(), v);
        }
    }

    #[test]
    fn from_u64_ignores_high_bits() {
        assert_eq!(
            MacAddr::from_u64(0xFFFF_0000_0000_0001),
            MacAddr::from_u64(1)
        );
    }

    #[test]
    fn ordering_is_lexicographic_on_octets() {
        let a = MacAddr::from_u64(1);
        let b = MacAddr::from_u64(2);
        assert!(a < b);
    }

    #[test]
    fn json_round_trip() {
        let mac = MacAddr::from_u64(0xA1B2C3D4E5F6);
        let json = mac.to_json_string();
        assert_eq!(json, "\"a1:b2:c3:d4:e5:f6\"");
        let back = MacAddr::from_json_str(&json).unwrap();
        assert_eq!(back, mac);
    }
}
