//! Named corpora of buildings.

use crate::building::Building;

/// A named collection of buildings (a corpus).
///
/// Mirrors the paper's two evaluation corpora: the Microsoft open dataset
/// (152 buildings after filtering) and "Ours" (three shopping malls).
///
/// # Example
///
/// ```
/// use fis_types::Dataset;
///
/// let ds = Dataset::new("demo", vec![]);
/// assert!(ds.is_empty());
/// assert!(ds.floor_histogram(3, 10).iter().all(|&c| c == 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    buildings: Vec<Building>,
}

impl Dataset {
    /// Creates a dataset from a list of buildings.
    pub fn new(name: impl Into<String>, buildings: Vec<Building>) -> Self {
        Self {
            name: name.into(),
            buildings,
        }
    }

    /// The corpus name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The buildings in the corpus.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// Number of buildings.
    pub fn len(&self) -> usize {
        self.buildings.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.buildings.is_empty()
    }

    /// Adds a building.
    pub fn push(&mut self, building: Building) {
        self.buildings.push(building);
    }

    /// Histogram of buildings by floor count over `[min_floors, max_floors]`
    /// (the paper's Figure 7). Index 0 corresponds to `min_floors`.
    pub fn floor_histogram(&self, min_floors: usize, max_floors: usize) -> Vec<usize> {
        assert!(min_floors <= max_floors, "empty histogram range");
        let mut hist = vec![0usize; max_floors - min_floors + 1];
        for b in &self.buildings {
            if (min_floors..=max_floors).contains(&b.floors()) {
                hist[b.floors() - min_floors] += 1;
            }
        }
        hist
    }

    /// Total number of samples across all buildings.
    pub fn total_samples(&self) -> usize {
        self.buildings.iter().map(Building::len).sum()
    }

    /// Mean samples per floor across the corpus; `0.0` when empty.
    pub fn mean_samples_per_floor(&self) -> f64 {
        let floors: usize = self.buildings.iter().map(Building::floors).sum();
        if floors == 0 {
            0.0
        } else {
            self.total_samples() as f64 / floors as f64
        }
    }

    /// Applies [`Building::filtered`] to every building, dropping the ones
    /// that do not survive — the paper's §V-A preprocessing.
    pub fn filtered(&self, min_samples_per_floor: usize, min_floors: usize) -> Dataset {
        Dataset::new(
            self.name.clone(),
            self.buildings
                .iter()
                .filter_map(|b| b.filtered(min_samples_per_floor, min_floors))
                .collect(),
        )
    }
}

impl Extend<Building> for Dataset {
    fn extend<T: IntoIterator<Item = Building>>(&mut self, iter: T) {
        self.buildings.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floor::FloorId;
    use crate::mac::MacAddr;
    use crate::rssi::Rssi;
    use crate::sample::SignalSample;

    fn tiny_building(name: &str, floors: usize, per_floor: usize) -> Building {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for f in 0..floors {
            for _ in 0..per_floor {
                let id = samples.len() as u32;
                samples.push(
                    SignalSample::builder(id)
                        .reading(MacAddr::from_u64(f as u64 + 1), Rssi::new(-50.0).unwrap())
                        .build(),
                );
                labels.push(FloorId::from_index(f));
            }
        }
        Building::new(name, floors, samples, labels).unwrap()
    }

    #[test]
    fn floor_histogram_buckets_correctly() {
        let ds = Dataset::new(
            "d",
            vec![
                tiny_building("a", 3, 1),
                tiny_building("b", 3, 1),
                tiny_building("c", 5, 1),
            ],
        );
        assert_eq!(ds.floor_histogram(3, 10), vec![2, 0, 1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn histogram_ignores_out_of_range() {
        let ds = Dataset::new("d", vec![tiny_building("a", 2, 1)]);
        assert_eq!(ds.floor_histogram(3, 4), vec![0, 0]);
    }

    #[test]
    fn totals_and_means() {
        let ds = Dataset::new(
            "d",
            vec![tiny_building("a", 2, 3), tiny_building("b", 4, 3)],
        );
        assert_eq!(ds.total_samples(), 18);
        assert!((ds.mean_samples_per_floor() - 3.0).abs() < 1e-12);
        assert_eq!(Dataset::new("e", vec![]).mean_samples_per_floor(), 0.0);
    }

    #[test]
    fn filtered_removes_small_buildings() {
        let ds = Dataset::new(
            "d",
            vec![tiny_building("a", 2, 5), tiny_building("b", 4, 5)],
        );
        let f = ds.filtered(1, 3);
        assert_eq!(f.len(), 1);
        assert_eq!(f.buildings()[0].name(), "b");
    }

    #[test]
    fn extend_appends() {
        let mut ds = Dataset::new("d", vec![]);
        ds.extend([tiny_building("a", 3, 1)]);
        ds.push(tiny_building("b", 3, 1));
        assert_eq!(ds.len(), 2);
    }
}
