//! Domain types for crowdsourced RF signals.
//!
//! This crate defines the vocabulary shared by the whole FIS-ONE
//! reproduction:
//!
//! - [`MacAddr`]: an access point's media access control address.
//! - [`Rssi`]: a received signal strength reading in dBm, and the paper's
//!   positive edge-weight transform `f(RSS) = RSS + c` (§III-A).
//! - [`SignalSample`]: one crowdsourced RF record — the set of MACs heard in
//!   one scan with their RSS values.
//! - [`FloorId`]: a floor index within a building (`F1` = bottom).
//! - [`Building`]: a building's worth of samples with ground-truth labels
//!   (used only for evaluation and for choosing the single anchor label).
//! - [`Dataset`]: a named collection of buildings with corpus statistics.
//! - [`stats`]: spillover statistics (the Figure 1(b) histogram and
//!   per-floor-pair shared-MAC counts).
//!
//! # Example
//!
//! ```
//! use fis_types::{MacAddr, Rssi, SignalSample};
//!
//! let mac: MacAddr = "aa:bb:cc:dd:ee:01".parse()?;
//! let sample = SignalSample::builder(0)
//!     .reading(mac, Rssi::new(-62.0)?)
//!     .build();
//! assert_eq!(sample.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod building;
pub mod dataset;
pub mod error;
pub mod floor;
pub mod io;
pub mod json;
pub mod mac;
pub mod rssi;
pub mod sample;
pub mod stats;

pub use building::{Building, LabeledAnchor};
pub use dataset::Dataset;
pub use error::TypeError;
pub use floor::FloorId;
pub use mac::MacAddr;
pub use rssi::{Rssi, DEFAULT_RSS_OFFSET};
pub use sample::{SampleId, SignalSample, SignalSampleBuilder};
