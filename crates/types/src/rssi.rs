//! Received signal strength readings and the paper's edge-weight transform.

use std::fmt;

use crate::error::TypeError;
use crate::json::{FromJson, Json, ToJson};

/// Default offset `c` of the edge-weight transform `f(RSS) = RSS + c`.
///
/// The paper sets `c = 120 dBm` so that `f(RSS) > 0` for all observed
/// readings (§III-A).
pub const DEFAULT_RSS_OFFSET: f64 = 120.0;

/// Physically plausible lower bound for an RSS reading in dBm.
pub const MIN_DBM: f64 = -119.0;

/// Physically plausible upper bound for an RSS reading in dBm.
pub const MAX_DBM: f64 = 0.0;

/// A received signal strength reading in dBm.
///
/// Valid readings are finite and within `[-119, 0]` dBm, matching the range
/// reported by commodity WiFi radios and guaranteeing the paper's weight
/// transform with `c = 120` stays strictly positive.
///
/// # Example
///
/// ```
/// use fis_types::Rssi;
///
/// let r = Rssi::new(-60.0)?;
/// assert_eq!(r.dbm(), -60.0);
/// assert_eq!(r.edge_weight(), 60.0); // -60 + 120
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Rssi(f64);

impl Rssi {
    /// Creates a validated RSS reading.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::InvalidRssi`] if `dbm` is NaN, infinite, or
    /// outside `[-119, 0]`.
    pub fn new(dbm: f64) -> Result<Self, TypeError> {
        if !dbm.is_finite() || !(MIN_DBM..=MAX_DBM).contains(&dbm) {
            return Err(TypeError::InvalidRssi(format!(
                "{dbm} dBm outside [{MIN_DBM}, {MAX_DBM}]"
            )));
        }
        Ok(Self(dbm))
    }

    /// Creates a reading by clamping into the valid range (NaN becomes the
    /// weakest valid reading). Useful for synthetic generators where the
    /// propagation model can occasionally overshoot.
    pub fn clamped(dbm: f64) -> Self {
        if dbm.is_nan() {
            Self(MIN_DBM)
        } else {
            Self(dbm.clamp(MIN_DBM, MAX_DBM))
        }
    }

    /// The raw reading in dBm.
    pub fn dbm(&self) -> f64 {
        self.0
    }

    /// The paper's positive edge weight `f(RSS) = RSS + c` with the default
    /// `c = 120`.
    pub fn edge_weight(&self) -> f64 {
        self.edge_weight_with_offset(DEFAULT_RSS_OFFSET)
    }

    /// Edge weight with an explicit offset `c`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the resulting weight is not positive,
    /// which would violate the sampling-probability construction.
    pub fn edge_weight_with_offset(&self, c: f64) -> f64 {
        let w = self.0 + c;
        debug_assert!(
            w > 0.0,
            "edge weight must be positive (rss={}, c={c})",
            self.0
        );
        w
    }
}

impl ToJson for Rssi {
    fn to_json(&self) -> Json {
        Json::Num(self.0)
    }
}

impl FromJson for Rssi {
    fn from_json(value: &Json) -> Result<Self, TypeError> {
        let dbm = value
            .as_f64()
            .ok_or_else(|| TypeError::Io("RSSI must be a JSON number".to_owned()))?;
        Rssi::new(dbm)
    }
}

impl fmt::Display for Rssi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_range() {
        assert!(Rssi::new(-119.0).is_ok());
        assert!(Rssi::new(0.0).is_ok());
        assert!(Rssi::new(-60.5).is_ok());
    }

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Rssi::new(-120.5).is_err());
        assert!(Rssi::new(1.0).is_err());
        assert!(Rssi::new(f64::NAN).is_err());
        assert!(Rssi::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_saturates() {
        assert_eq!(Rssi::clamped(-500.0).dbm(), MIN_DBM);
        assert_eq!(Rssi::clamped(10.0).dbm(), MAX_DBM);
        assert_eq!(Rssi::clamped(f64::NAN).dbm(), MIN_DBM);
        assert_eq!(Rssi::clamped(-42.0).dbm(), -42.0);
    }

    #[test]
    fn edge_weight_positive_over_entire_range() {
        assert!(Rssi::new(MIN_DBM).unwrap().edge_weight() > 0.0);
        assert_eq!(Rssi::new(-60.0).unwrap().edge_weight(), 60.0);
        assert_eq!(Rssi::new(0.0).unwrap().edge_weight(), 120.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Rssi::new(-60.0).unwrap().to_string(), "-60.0 dBm");
    }

    #[test]
    fn json_is_transparent() {
        let r = Rssi::new(-77.5).unwrap();
        assert_eq!(r.to_json_string(), "-77.5");
        let back = Rssi::from_json_str("-77.5").unwrap();
        assert_eq!(back, r);
        // Out-of-range values are rejected on load too.
        assert!(Rssi::from_json_str("7.0").is_err());
    }
}
