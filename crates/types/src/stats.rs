//! Spillover statistics over buildings.
//!
//! These reproduce the empirical observations that motivate FIS-ONE:
//! Figure 1(b)'s histogram of how many floors each MAC is detected on, and
//! the per-floor-pair shared-MAC counts behind Figure 5.

use std::collections::{BTreeMap, BTreeSet};

use crate::building::Building;
use crate::mac::MacAddr;

/// For each MAC in the building, the set of floors it is detected on.
pub fn mac_floor_sets(building: &Building) -> BTreeMap<MacAddr, BTreeSet<usize>> {
    let mut map: BTreeMap<MacAddr, BTreeSet<usize>> = BTreeMap::new();
    for (sample, label) in building.samples().iter().zip(building.ground_truth()) {
        for (mac, _) in sample.iter() {
            map.entry(mac).or_default().insert(label.index());
        }
    }
    map
}

/// Figure 1(b): histogram over "number of floors a MAC is detected on".
///
/// Entry `k` (zero-based) counts MACs detected on exactly `k + 1` floors;
/// the histogram has `building.floors()` entries.
pub fn mac_floor_span_histogram(building: &Building) -> Vec<usize> {
    let mut hist = vec![0usize; building.floors()];
    for floors in mac_floor_sets(building).values() {
        let span = floors.len();
        debug_assert!(span >= 1 && span <= building.floors());
        hist[span - 1] += 1;
    }
    hist
}

/// Number of distinct MACs detected anywhere in the building.
pub fn total_macs(building: &Building) -> usize {
    mac_floor_sets(building).len()
}

/// Shared-MAC count matrix between floors: entry `(i, j)` is the number of
/// distinct MACs heard on both floor `i` and floor `j`.
///
/// The diagonal holds each floor's own MAC count. Adjacent floors should
/// show markedly higher off-diagonal counts than distant floors — the
/// signal spillover effect of Figure 5.
pub fn floor_shared_mac_matrix(building: &Building) -> Vec<Vec<usize>> {
    let f = building.floors();
    let mut per_floor: Vec<BTreeSet<MacAddr>> = vec![BTreeSet::new(); f];
    for (sample, label) in building.samples().iter().zip(building.ground_truth()) {
        for (mac, _) in sample.iter() {
            per_floor[label.index()].insert(mac);
        }
    }
    let mut matrix = vec![vec![0usize; f]; f];
    for i in 0..f {
        for j in 0..f {
            matrix[i][j] = per_floor[i].intersection(&per_floor[j]).count();
        }
    }
    matrix
}

/// Summary check of the spillover monotonicity: the mean shared-MAC count
/// between floors at distance 1 versus distance `>= far`.
///
/// Returns `(mean_adjacent, mean_far)`. A corpus with realistic spillover
/// has `mean_adjacent > mean_far`. Returns zeros when the building is too
/// short for the requested distance.
#[allow(clippy::needless_range_loop)] // triangular index walk reads best as-is
pub fn spillover_contrast(building: &Building, far: usize) -> (f64, f64) {
    let matrix = floor_shared_mac_matrix(building);
    let f = building.floors();
    let (mut adj_sum, mut adj_n, mut far_sum, mut far_n) = (0usize, 0usize, 0usize, 0usize);
    for i in 0..f {
        for j in (i + 1)..f {
            let d = j - i;
            if d == 1 {
                adj_sum += matrix[i][j];
                adj_n += 1;
            } else if d >= far {
                far_sum += matrix[i][j];
                far_n += 1;
            }
        }
    }
    let adj = if adj_n == 0 {
        0.0
    } else {
        adj_sum as f64 / adj_n as f64
    };
    let farv = if far_n == 0 {
        0.0
    } else {
        far_sum as f64 / far_n as f64
    };
    (adj, farv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floor::FloorId;
    use crate::rssi::Rssi;
    use crate::sample::SignalSample;

    /// Three floors. MAC 1 heard on floors 0,1; MAC 2 on floor 1 only;
    /// MAC 3 on all floors.
    fn building() -> Building {
        let r = Rssi::new(-60.0).unwrap();
        let mk = MacAddr::from_u64;
        let samples = vec![
            SignalSample::builder(0)
                .reading(mk(1), r)
                .reading(mk(3), r)
                .build(),
            SignalSample::builder(1)
                .reading(mk(1), r)
                .reading(mk(2), r)
                .reading(mk(3), r)
                .build(),
            SignalSample::builder(2).reading(mk(3), r).build(),
        ];
        let labels = vec![
            FloorId::from_index(0),
            FloorId::from_index(1),
            FloorId::from_index(2),
        ];
        Building::new("t", 3, samples, labels).unwrap()
    }

    #[test]
    fn floor_sets_are_correct() {
        let sets = mac_floor_sets(&building());
        assert_eq!(sets[&MacAddr::from_u64(1)], BTreeSet::from([0, 1]));
        assert_eq!(sets[&MacAddr::from_u64(2)], BTreeSet::from([1]));
        assert_eq!(sets[&MacAddr::from_u64(3)], BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn span_histogram_matches() {
        // MAC2 spans 1 floor, MAC1 spans 2, MAC3 spans 3.
        assert_eq!(mac_floor_span_histogram(&building()), vec![1, 1, 1]);
        assert_eq!(total_macs(&building()), 3);
    }

    #[test]
    fn shared_matrix_symmetric_with_diagonal_counts() {
        let m = floor_shared_mac_matrix(&building());
        assert_eq!(m[0][0], 2); // floor 0 hears MACs 1 and 3
        assert_eq!(m[1][1], 3);
        assert_eq!(m[2][2], 1);
        assert_eq!(m[0][1], 2); // shares MACs 1 and 3
        assert_eq!(m[0][2], 1); // shares only MAC 3
        for (i, row) in m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, m[j][i]);
            }
        }
    }

    #[test]
    fn contrast_favors_adjacent() {
        let (adj, far) = spillover_contrast(&building(), 2);
        assert!(adj > far, "adjacent {adj} should exceed far {far}");
    }
}
