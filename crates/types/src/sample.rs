//! Crowdsourced RF signal samples (records).

use crate::error::TypeError;
use crate::json::{FromJson, Json, ToJson};
use crate::mac::MacAddr;
use crate::rssi::Rssi;

/// Identifier of a signal sample within a building, dense from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SampleId(pub u32);

impl SampleId {
    /// The dense index as `usize`.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SampleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One crowdsourced RF record: the set of MAC addresses heard in a single
/// scan together with their RSS readings.
///
/// Readings are stored sorted by MAC with duplicates collapsed (the
/// strongest reading wins), so lookups are `O(log n)` and iteration order is
/// deterministic.
///
/// # Example
///
/// ```
/// use fis_types::{MacAddr, Rssi, SignalSample};
///
/// let m1 = MacAddr::from_u64(1);
/// let m2 = MacAddr::from_u64(2);
/// let s = SignalSample::builder(7)
///     .reading(m2, Rssi::new(-70.0)?)
///     .reading(m1, Rssi::new(-55.0)?)
///     .reading(m2, Rssi::new(-60.0)?) // duplicate: strongest kept
///     .build();
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.rssi_of(m2), Some(Rssi::new(-60.0)?));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSample {
    id: SampleId,
    readings: Vec<(MacAddr, Rssi)>,
}

impl SignalSample {
    /// Starts building a sample with the given dense id.
    pub fn builder(id: u32) -> SignalSampleBuilder {
        SignalSampleBuilder {
            id: SampleId(id),
            readings: Vec::new(),
        }
    }

    /// The sample's identifier.
    pub fn id(&self) -> SampleId {
        self.id
    }

    /// Number of distinct MACs heard.
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Whether the scan heard no APs at all.
    pub fn is_empty(&self) -> bool {
        self.readings.is_empty()
    }

    /// Iterates over `(mac, rssi)` readings in MAC order.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, Rssi)> + '_ {
        self.readings.iter().copied()
    }

    /// The RSS reading for `mac`, if heard.
    pub fn rssi_of(&self, mac: MacAddr) -> Option<Rssi> {
        self.readings
            .binary_search_by_key(&mac, |&(m, _)| m)
            .ok()
            .map(|i| self.readings[i].1)
    }

    /// Whether the sample heard `mac`.
    pub fn contains(&self, mac: MacAddr) -> bool {
        self.rssi_of(mac).is_some()
    }

    /// The strongest reading in the sample, if any.
    pub fn strongest(&self) -> Option<(MacAddr, Rssi)> {
        self.readings
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("Rssi is never NaN"))
    }

    /// Count of MACs shared with another sample.
    pub fn shared_macs(&self, other: &SignalSample) -> usize {
        // Merge walk over the two sorted lists.
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < self.readings.len() && j < other.readings.len() {
            match self.readings[i].0.cmp(&other.readings[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Re-numbers the sample (used when filtering corpora compacts ids).
    pub fn with_id(mut self, id: u32) -> SignalSample {
        self.id = SampleId(id);
        self
    }
}

impl ToJson for SignalSample {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Num(f64::from(self.id.0))),
            (
                "readings",
                Json::Arr(
                    self.readings
                        .iter()
                        .map(|(mac, rssi)| Json::Arr(vec![mac.to_json(), rssi.to_json()]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for SignalSample {
    fn from_json(value: &Json) -> Result<Self, TypeError> {
        // Ids ride the wire as JSON numbers (f64): anything past 2^32-1
        // is rejected here, *before* any floor-identification work, so
        // an id can never silently lose precision at the f64 boundary
        // (2^53) and collide with another scan's id in a response.
        let id = value
            .field("id")?
            .as_usize()
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| {
                TypeError::Io(format!(
                    "sample id must be an integer in 0..=4294967295, got {}",
                    value
                        .field("id")
                        .map_or_else(|_| "nothing".into(), Json::to_string)
                ))
            })?;
        let mut builder = SignalSample::builder(id);
        for pair in value
            .field("readings")?
            .as_arr()
            .ok_or_else(|| TypeError::Io("readings must be an array".to_owned()))?
        {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| TypeError::Io("reading must be a [mac, rssi] pair".to_owned()))?;
            builder = builder.reading(MacAddr::from_json(&pair[0])?, Rssi::from_json(&pair[1])?);
        }
        Ok(builder.build())
    }
}

/// Builder for [`SignalSample`]; see [`SignalSample::builder`].
#[derive(Debug, Clone)]
pub struct SignalSampleBuilder {
    id: SampleId,
    readings: Vec<(MacAddr, Rssi)>,
}

impl SignalSampleBuilder {
    /// Adds one `(mac, rssi)` reading. Duplicate MACs are collapsed at
    /// [`SignalSampleBuilder::build`] time, keeping the strongest reading.
    pub fn reading(mut self, mac: MacAddr, rssi: Rssi) -> Self {
        self.readings.push((mac, rssi));
        self
    }

    /// Adds many readings at once.
    pub fn readings(mut self, iter: impl IntoIterator<Item = (MacAddr, Rssi)>) -> Self {
        self.readings.extend(iter);
        self
    }

    /// Finalizes the sample: sorts by MAC and collapses duplicates keeping
    /// the strongest reading.
    pub fn build(mut self) -> SignalSample {
        self.readings
            .sort_by(|a, b| a.0.cmp(&b.0).then(b.1.partial_cmp(&a.1).expect("no NaN")));
        self.readings.dedup_by_key(|&mut (m, _)| m);
        SignalSample {
            id: self.id,
            readings: self.readings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rssi(v: f64) -> Rssi {
        Rssi::new(v).unwrap()
    }

    #[test]
    fn builder_sorts_and_dedups_keeping_strongest() {
        let m1 = MacAddr::from_u64(10);
        let m2 = MacAddr::from_u64(5);
        let s = SignalSample::builder(0)
            .reading(m1, rssi(-80.0))
            .reading(m2, rssi(-60.0))
            .reading(m1, rssi(-40.0))
            .build();
        assert_eq!(s.len(), 2);
        let macs: Vec<MacAddr> = s.iter().map(|(m, _)| m).collect();
        assert_eq!(macs, vec![m2, m1]); // sorted
        assert_eq!(s.rssi_of(m1), Some(rssi(-40.0))); // strongest kept
    }

    #[test]
    fn lookup_and_contains() {
        let m = MacAddr::from_u64(1);
        let other = MacAddr::from_u64(2);
        let s = SignalSample::builder(0).reading(m, rssi(-50.0)).build();
        assert!(s.contains(m));
        assert!(!s.contains(other));
        assert_eq!(s.rssi_of(other), None);
    }

    #[test]
    fn out_of_range_ids_are_rejected_at_parse_time() {
        // In-range boundary parses.
        let max = Json::parse(r#"{"id":4294967295,"readings":[]}"#).unwrap();
        assert_eq!(
            SignalSample::from_json(&max).unwrap().id().index(),
            u32::MAX as usize
        );
        // Everything that cannot round-trip as a u32 through an f64 wire
        // number is a parse error, not a silently mangled id: past u32,
        // past f64's 2^53 integer precision, fractional, or negative.
        for bad in [
            r#"{"id":4294967296,"readings":[]}"#,
            r#"{"id":9007199254740993,"readings":[]}"#,
            r#"{"id":18446744073709551615,"readings":[]}"#,
            r#"{"id":1.5,"readings":[]}"#,
            r#"{"id":-1,"readings":[]}"#,
            r#"{"id":"7","readings":[]}"#,
        ] {
            let err = SignalSample::from_json(&Json::parse(bad).unwrap())
                .expect_err(&format!("{bad} must be rejected"));
            assert!(
                err.to_string().contains("0..=4294967295"),
                "{bad}: error names the accepted range, got: {err}"
            );
        }
    }

    #[test]
    fn strongest_of_empty_is_none() {
        let s = SignalSample::builder(0).build();
        assert!(s.is_empty());
        assert_eq!(s.strongest(), None);
    }

    #[test]
    fn strongest_picks_max() {
        let s = SignalSample::builder(0)
            .reading(MacAddr::from_u64(1), rssi(-90.0))
            .reading(MacAddr::from_u64(2), rssi(-30.0))
            .reading(MacAddr::from_u64(3), rssi(-60.0))
            .build();
        assert_eq!(s.strongest().unwrap().0, MacAddr::from_u64(2));
    }

    #[test]
    fn shared_macs_counts_intersection() {
        let a = SignalSample::builder(0)
            .readings((1..=5).map(|i| (MacAddr::from_u64(i), rssi(-50.0))))
            .build();
        let b = SignalSample::builder(1)
            .readings((4..=8).map(|i| (MacAddr::from_u64(i), rssi(-50.0))))
            .build();
        assert_eq!(a.shared_macs(&b), 2);
        assert_eq!(b.shared_macs(&a), 2);
        assert_eq!(a.shared_macs(&a), 5);
    }

    #[test]
    fn json_round_trip() {
        let s = SignalSample::builder(3)
            .reading(MacAddr::from_u64(9), rssi(-66.0))
            .reading(MacAddr::from_u64(2), rssi(-41.5))
            .build();
        let json = s.to_json_string();
        let back = SignalSample::from_json_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn with_id_renumbers() {
        let s = SignalSample::builder(3).build().with_id(9);
        assert_eq!(s.id(), SampleId(9));
    }
}
