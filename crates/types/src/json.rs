//! Minimal JSON value type, parser, and writer.
//!
//! The dataset (de)serialization layer used to lean on `serde_json`; the
//! build environment vendors no external crates, so this module provides
//! the small JSON subset the JSONL corpus format needs. Numbers are
//! `f64` and are written with Rust's shortest-round-trip `Display`, so
//! `f64` values survive a save/load cycle bit-for-bit.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::TypeError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A number known to be exactly representable in `f32`, written with
    /// `f32`'s shortest-round-trip `Display` (≈9 significant digits
    /// instead of ≈17). This is what makes the compact `f32` model
    /// artifacts actually smaller on disk: printing an f32-valued number
    /// through `f64` would re-expand every mantissa.
    ///
    /// Write-side only: [`Json::parse`] always produces [`Json::Num`].
    /// The printed text is the *shortest* decimal that rounds to the f32,
    /// so re-parsing it as `f64` does not in general equal
    /// `f64::from(x)` — readers of f32-encoded fields must narrow first
    /// (`value as f32 as f64`) to recover the exact stored value.
    F32(f32),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Io`] describing the first syntax error.
    pub fn parse(text: &str) -> Result<Json, TypeError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (widening [`Json::F32`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::F32(n) => Some(f64::from(*n)),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Fetches a required object field, with a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Io`] naming the missing field.
    pub fn field(&self, key: &str) -> Result<&Json, TypeError> {
        self.get(key)
            .ok_or_else(|| TypeError::Io(format!("missing field `{key}`")))
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }
}

fn err(pos: usize, msg: &str) -> TypeError {
    TypeError::Io(format!("json error at byte {pos}: {msg}"))
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), TypeError> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{}`", ch as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, TypeError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, TypeError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, TypeError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, &format!("invalid number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, TypeError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = bytes
                    .get(*pos)
                    .ok_or_else(|| err(*pos, "unterminated escape"))?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        let scalar = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: a \uXXXX low surrogate must
                            // follow (standard JSON pair encoding).
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(err(*pos, "high surrogate not followed by \\u"));
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err(err(*pos, "unpaired low surrogate"));
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| err(*pos, "invalid unicode escape"))?,
                        );
                    }
                    other => return Err(err(*pos, &format!("bad escape `\\{}`", *other as char))),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "bad utf-8 in string"))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, TypeError> {
    let hex = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
    let hex = std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| err(*pos, "bad \\u escape"))?;
    *pos += 4;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, TypeError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, TypeError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's Display for f64 is shortest-round-trip.
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; degrade to null like serde_json.
                    write!(f, "null")
                }
            }
            Json::F32(n) => {
                if n.is_finite() {
                    // Shortest round-trip for f32: parsing the text back as
                    // f64 then narrowing to f32 recovers the exact value.
                    write!(f, "{n}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for ch in s.chars() {
        match ch {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Json;

    /// Serializes to a compact JSON string.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parses from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::Io`] when the value has the wrong shape and
    /// domain-specific errors when validation fails.
    fn from_json(value: &Json) -> Result<Self, TypeError>;

    /// Parses from a JSON string.
    ///
    /// # Errors
    ///
    /// See [`FromJson::from_json`].
    fn from_json_str(text: &str) -> Result<Self, TypeError> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_owned())
        );
    }

    #[test]
    fn parse_nested_structures() {
        let v = Json::parse(r#"{"name":"x","items":[1,2,{"k":true}],"empty":[]}"#).unwrap();
        assert_eq!(v.field("name").unwrap().as_str(), Some("x"));
        let items = v.field("items").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].as_usize(), Some(2));
        assert_eq!(items[2].get("k"), Some(&Json::Bool(true)));
        assert_eq!(v.field("empty").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"a":[1,2.5,-3],"b":"he said \"hi\"","c":null,"d":false}"#;
        let v = Json::parse(text).unwrap();
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
    }

    #[test]
    fn f64_round_trips_exactly() {
        for x in [0.1, -119.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let printed = Json::Num(x).to_string();
            let back = Json::parse(&printed).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} reprinted as {printed}");
        }
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("héllo ✓".to_owned());
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
        // \u escapes parse too.
        assert_eq!(
            Json::parse("\"\\u0041\"").unwrap(),
            Json::Str("A".to_owned())
        );
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_error() {
        // 😀 U+1F600 encoded the standard JSON way.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_owned())
        );
        assert!(Json::parse("\"\\ud83d\"").is_err()); // unpaired high
        assert!(Json::parse("\"\\ude00\"").is_err()); // unpaired low
        assert!(Json::parse("\"\\ud83dx\"").is_err()); // high + garbage
    }

    #[test]
    fn f32_prints_short_and_round_trips_via_f64() {
        for x in [0.1f32, -87.25, 1.0 / 3.0, f32::MIN_POSITIVE, 3.4e38] {
            let printed = Json::F32(x).to_string();
            // Narrow-then-widen is the documented reader contract: the
            // shortest decimal for an f32 need not reparse to f64::from(x).
            let back = Json::parse(&printed).unwrap().as_f64().unwrap();
            assert_eq!((back as f32).to_bits(), x.to_bits(), "{x} -> {printed}");
        }
        // Model-artifact magnitudes (RSSI, unit embeddings) stay short;
        // Display never switches to scientific notation, so only moderate
        // values get the size win.
        for x in [0.1f32, -87.25, 1.0 / 3.0, -0.021470382] {
            let printed = Json::F32(x).to_string();
            assert!(
                printed.len() <= 12,
                "f32 {x} printed as {printed} ({} bytes)",
                printed.len()
            );
        }
        assert_eq!(Json::F32(f32::NAN).to_string(), "null");
    }

    #[test]
    fn as_usize_guards_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_usize(), Some(3));
        assert_eq!(Json::Num(3.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
    }
}
