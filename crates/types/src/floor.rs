//! Floor identifiers.

use std::fmt;

use crate::error::TypeError;
use crate::json::{FromJson, Json, ToJson};

/// A floor within a building, counted from the bottom floor upward.
///
/// The paper indexes floors `F1, F2, ...` with `F1` the bottom floor where
/// the single labeled sample is collected. Internally this is a zero-based
/// index: `FloorId::from_index(0)` is `F1`.
///
/// # Example
///
/// ```
/// use fis_types::FloorId;
///
/// let f = FloorId::from_index(2);
/// assert_eq!(f.to_string(), "F3");
/// assert_eq!(f.index(), 2);
/// assert_eq!(f.number(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FloorId(usize);

impl FloorId {
    /// Bottom floor (`F1`).
    pub const BOTTOM: FloorId = FloorId(0);

    /// Creates a floor from its zero-based index.
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }

    /// Creates a floor from its one-based number (`F1` = 1).
    ///
    /// # Panics
    ///
    /// Panics if `number == 0`.
    pub fn from_number(number: usize) -> Self {
        assert!(number >= 1, "floor numbers are one-based");
        Self(number - 1)
    }

    /// Zero-based index (bottom floor is 0).
    pub fn index(&self) -> usize {
        self.0
    }

    /// One-based floor number (bottom floor is 1).
    pub fn number(&self) -> usize {
        self.0 + 1
    }

    /// Absolute distance in floors between two floors.
    pub fn distance(&self, other: FloorId) -> usize {
        self.0.abs_diff(other.0)
    }

    /// The floor directly above.
    pub fn above(&self) -> FloorId {
        FloorId(self.0 + 1)
    }

    /// The floor directly below, or `None` at the bottom.
    pub fn below(&self) -> Option<FloorId> {
        self.0.checked_sub(1).map(FloorId)
    }
}

impl ToJson for FloorId {
    fn to_json(&self) -> Json {
        Json::Num(self.0 as f64)
    }
}

impl FromJson for FloorId {
    fn from_json(value: &Json) -> Result<Self, TypeError> {
        value
            .as_usize()
            .map(FloorId)
            .ok_or_else(|| TypeError::Io("floor id must be a non-negative integer".to_owned()))
    }
}

impl fmt::Display for FloorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.number())
    }
}

impl From<usize> for FloorId {
    fn from(index: usize) -> Self {
        Self::from_index(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_number_round_trip() {
        assert_eq!(FloorId::from_number(1), FloorId::BOTTOM);
        assert_eq!(FloorId::from_index(4).number(), 5);
        assert_eq!(FloorId::from_number(7).index(), 6);
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn from_number_zero_panics() {
        let _ = FloorId::from_number(0);
    }

    #[test]
    fn distance_and_neighbors() {
        let f1 = FloorId::from_index(0);
        let f4 = FloorId::from_index(3);
        assert_eq!(f1.distance(f4), 3);
        assert_eq!(f4.distance(f1), 3);
        assert_eq!(f1.above(), FloorId::from_index(1));
        assert_eq!(f1.below(), None);
        assert_eq!(f4.below(), Some(FloorId::from_index(2)));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(FloorId::BOTTOM.to_string(), "F1");
        assert_eq!(FloorId::from_index(6).to_string(), "F7");
    }

    #[test]
    fn ordering_is_by_height() {
        assert!(FloorId::from_index(0) < FloorId::from_index(1));
    }
}
