//! Dataset (de)serialization: JSON Lines, one building per line.
//!
//! JSONL keeps memory bounded when streaming large corpora and diffs
//! cleanly under version control.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::building::Building;
use crate::dataset::Dataset;
use crate::error::TypeError;
use crate::json::{FromJson, Json, ToJson};

/// Writes a dataset as JSON Lines: a one-line header object followed by one
/// building object per line.
///
/// # Errors
///
/// Returns [`TypeError::Io`] on filesystem or serialization failure.
pub fn save_jsonl(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), TypeError> {
    let file = File::create(path.as_ref())?;
    let mut w = BufWriter::new(file);
    let header = Json::obj([
        ("name", Json::Str(dataset.name().to_owned())),
        ("buildings", Json::Num(dataset.len() as f64)),
    ]);
    writeln!(w, "{header}").map_err(TypeError::from)?;
    for b in dataset.buildings() {
        writeln!(w, "{}", b.to_json()).map_err(TypeError::from)?;
    }
    w.flush().map_err(TypeError::from)
}

/// Reads a dataset previously written by [`save_jsonl`].
///
/// # Errors
///
/// Returns [`TypeError::Io`] if the file is missing, the header is
/// malformed, or any building line fails to parse or validate.
pub fn load_jsonl(path: impl AsRef<Path>) -> Result<Dataset, TypeError> {
    let file = File::open(path.as_ref())?;
    let mut lines = BufReader::new(file).lines();
    let header_line = lines
        .next()
        .ok_or_else(|| TypeError::Io("empty dataset file".into()))??;
    let header = Json::parse(&header_line)?;
    let name = header
        .get("name")
        .and_then(|v| v.as_str())
        .ok_or_else(|| TypeError::Io("header missing dataset name".into()))?
        .to_owned();
    let mut buildings = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        buildings.push(Building::from_json_str(&line)?);
    }
    Ok(Dataset::new(name, buildings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floor::FloorId;
    use crate::mac::MacAddr;
    use crate::rssi::Rssi;
    use crate::sample::SignalSample;

    fn demo_dataset() -> Dataset {
        let s = SignalSample::builder(0)
            .reading(MacAddr::from_u64(5), Rssi::new(-42.0).unwrap())
            .build();
        let b = Building::new("bldg-1", 1, vec![s], vec![FloorId::BOTTOM]).unwrap();
        Dataset::new("demo", vec![b])
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("fis_types_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.jsonl");
        let ds = demo_dataset();
        save_jsonl(&ds, &path).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_jsonl("/nonexistent/definitely/missing.jsonl").is_err());
    }

    #[test]
    fn load_empty_file_errors() {
        let dir = std::env::temp_dir().join("fis_types_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(load_jsonl(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_garbage_building_errors() {
        let dir = std::env::temp_dir().join("fis_types_io_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{\"name\":\"x\",\"buildings\":1}\nnot json\n").unwrap();
        assert!(load_jsonl(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
