//! Property-based tests for the evaluation metrics.

use fis_metrics::{
    adjusted_rand_index, entropy, jaro, jaro_winkler, mutual_information,
    normalized_mutual_information,
};
use proptest::prelude::*;

fn labels(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, n)
}

proptest! {
    #[test]
    fn ari_of_identical_labelings_is_one(l in labels(30, 4)) {
        let ari = adjusted_rand_index(&l, &l).unwrap();
        prop_assert!((ari - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ari_symmetric(a in labels(25, 3), b in labels(25, 3)) {
        let x = adjusted_rand_index(&a, &b).unwrap();
        let y = adjusted_rand_index(&b, &a).unwrap();
        prop_assert!((x - y).abs() < 1e-9);
    }

    #[test]
    fn ari_invariant_to_label_permutation(l in labels(25, 3), offset in 1usize..10) {
        let renamed: Vec<usize> = l.iter().map(|&x| x * 7 + offset).collect();
        let ari = adjusted_rand_index(&renamed, &l).unwrap();
        prop_assert!((ari - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ari_bounded_above_by_one(a in labels(25, 4), b in labels(25, 4)) {
        let ari = adjusted_rand_index(&a, &b).unwrap();
        prop_assert!(ari <= 1.0 + 1e-9);
    }

    #[test]
    fn nmi_in_unit_interval(a in labels(25, 4), b in labels(25, 4)) {
        let nmi = normalized_mutual_information(&a, &b).unwrap();
        prop_assert!((0.0..=1.0).contains(&nmi));
    }

    #[test]
    fn nmi_symmetric(a in labels(20, 3), b in labels(20, 3)) {
        let x = normalized_mutual_information(&a, &b).unwrap();
        let y = normalized_mutual_information(&b, &a).unwrap();
        prop_assert!((x - y).abs() < 1e-9);
    }

    #[test]
    fn mi_bounded_by_min_entropy(a in labels(25, 4), b in labels(25, 4)) {
        let mi = mutual_information(&a, &b).unwrap();
        let ha = entropy(&a).unwrap();
        let hb = entropy(&b).unwrap();
        prop_assert!(mi <= ha.min(hb) + 1e-9);
        prop_assert!(mi >= -1e-12);
    }

    #[test]
    fn entropy_nonnegative_and_bounded(l in labels(30, 5)) {
        let h = entropy(&l).unwrap();
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (5.0f64).ln() + 1e-9);
    }

    #[test]
    fn jaro_winkler_bounded_and_reflexive(s in proptest::collection::vec(1usize..10, 1..8)) {
        prop_assert_eq!(jaro_winkler(&s, &s), 1.0);
        let rev: Vec<usize> = s.iter().rev().copied().collect();
        let j = jaro_winkler(&s, &rev);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn jaro_symmetric(a in proptest::collection::vec(1usize..8, 1..8),
                      b in proptest::collection::vec(1usize..8, 1..8)) {
        prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn winkler_bonus_never_decreases(a in proptest::collection::vec(1usize..8, 1..8),
                                     b in proptest::collection::vec(1usize..8, 1..8)) {
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
    }

    /// Single swap in a permutation must score strictly higher than a full
    /// reversal (for length >= 4): the metric must reward near-misses.
    #[test]
    fn near_miss_beats_reversal(n in 4usize..9, i in 0usize..3) {
        let truth: Vec<usize> = (1..=n).collect();
        let mut swapped = truth.clone();
        let j = (i + 1).min(n - 1);
        swapped.swap(i, j);
        let rev: Vec<usize> = truth.iter().rev().copied().collect();
        prop_assert!(jaro_winkler(&swapped, &truth) > jaro_winkler(&rev, &truth));
    }
}
