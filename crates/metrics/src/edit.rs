//! Jaro and Jaro–Winkler similarity on index sequences.
//!
//! The paper measures indexing quality with the Jaro–Winkler "edit
//! distance" (§V-A): how close the predicted floor ordering
//! `S_X = (1, 4, 3, 2, 5)` is to the ground truth `S_Y = (1, 2, 3, 4, 5)`,
//! counting matches `m` and transpositions `t`. Higher is better;
//! 1.0 means identical sequences.

/// Jaro similarity between two sequences:
///
/// ```text
/// J = 0                                   if m = 0
/// J = (m/|X| + m/|Y| + (m − t)/m) / 3     otherwise
/// ```
///
/// where `m` counts matches and `t` is half the number of out-of-order
/// matches.
///
/// Unlike string-matching Jaro, the match window spans the whole sequence:
/// the paper's floor orderings are permutations of `1..N`, and its worked
/// example (`(1,2,3,4,5)` vs `(1,4,3,2,5)` → `m = 5`, one transposition)
/// only holds with unbounded matching.
pub fn jaro(x: &[usize], y: &[usize]) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 1.0;
    }
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    let window = x.len().max(y.len());
    let mut x_matched = vec![false; x.len()];
    let mut y_matched = vec![false; y.len()];
    let mut m = 0usize;
    for (i, &xi) in x.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(y.len());
        for j in lo..hi {
            if !y_matched[j] && y[j] == xi {
                x_matched[i] = true;
                y_matched[j] = true;
                m += 1;
                break;
            }
        }
    }
    if m == 0 {
        return 0.0;
    }
    // Count transpositions among matched elements.
    let xs: Vec<usize> = x
        .iter()
        .zip(x_matched.iter())
        .filter_map(|(&v, &ok)| ok.then_some(v))
        .collect();
    let ys: Vec<usize> = y
        .iter()
        .zip(y_matched.iter())
        .filter_map(|(&v, &ok)| ok.then_some(v))
        .collect();
    let half_transpositions = xs.iter().zip(ys.iter()).filter(|(a, b)| a != b).count();
    let t = half_transpositions as f64 / 2.0;
    let m = m as f64;
    (m / x.len() as f64 + m / y.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity: [`jaro`] boosted by a common-prefix bonus
/// `J_W = J + ℓ·p·(1 − J)` with prefix length `ℓ ≤ 4` and scale `p = 0.1`.
///
/// This is the paper's edit-distance metric; a correct bottom-floor anchor
/// means predicted orderings usually share a prefix with the truth, which
/// the Winkler bonus rewards.
///
/// # Example
///
/// ```
/// let sim = fis_metrics::jaro_winkler(&[1, 2, 3, 4, 5], &[1, 4, 3, 2, 5]);
/// assert!(sim > 0.8 && sim < 1.0);
/// assert_eq!(fis_metrics::jaro_winkler(&[1, 2], &[1, 2]), 1.0);
/// ```
pub fn jaro_winkler(x: &[usize], y: &[usize]) -> f64 {
    let j = jaro(x, y);
    let prefix = x
        .iter()
        .zip(y.iter())
        .take(4)
        .take_while(|(a, b)| a == b)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_are_one() {
        assert_eq!(jaro(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaro_winkler(&[1, 2, 3], &[1, 2, 3]), 1.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(jaro(&[], &[]), 1.0);
        assert_eq!(jaro(&[1], &[]), 0.0);
        assert_eq!(jaro(&[], &[1]), 0.0);
    }

    #[test]
    fn disjoint_sequences_are_zero() {
        assert_eq!(jaro(&[1, 2, 3], &[4, 5, 6]), 0.0);
        assert_eq!(jaro_winkler(&[1, 2, 3], &[4, 5, 6]), 0.0);
    }

    #[test]
    fn paper_example_single_swap() {
        // §V-A worked example: ground truth (1,2,3,4,5) vs predicted
        // (1,4,3,2,5), one swap of 4 and 2. m = 5, two positions
        // mismatch -> t = 1.
        // Jaro = (1 + 1 + 4/5)/3 = 14/15 ≈ 0.9333.
        let j = jaro(&[1, 2, 3, 4, 5], &[1, 4, 3, 2, 5]);
        assert!((j - 14.0 / 15.0).abs() < 1e-12, "j={j}");
        // Winkler: shared prefix of length 1 -> + 0.1 * (1 - J).
        let jw = jaro_winkler(&[1, 2, 3, 4, 5], &[1, 4, 3, 2, 5]);
        assert!((jw - (14.0 / 15.0 + 0.1 * (1.0 / 15.0))).abs() < 1e-12);
    }

    #[test]
    fn prefix_bonus_caps_at_four() {
        let x = [1, 2, 3, 4, 5, 9];
        let y = [1, 2, 3, 4, 5, 8];
        let j = jaro(&x, &y);
        let jw = jaro_winkler(&x, &y);
        assert!((jw - (j + 4.0 * 0.1 * (1.0 - j))).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = [1, 3, 2, 4];
        let b = [1, 2, 3, 4];
        assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
        assert!((jaro_winkler(&a, &b) - jaro_winkler(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn bounded_zero_one() {
        let cases: &[(&[usize], &[usize])] = &[
            (&[1, 2, 3], &[3, 2, 1]),
            (&[1, 1, 1], &[1, 2, 3]),
            (&[5, 4, 3, 2, 1], &[1, 2, 3, 4, 5]),
        ];
        for (x, y) in cases {
            let j = jaro_winkler(x, y);
            assert!((0.0..=1.0).contains(&j), "{x:?} vs {y:?} -> {j}");
        }
    }

    #[test]
    fn reversal_is_heavily_penalized() {
        let fwd = jaro_winkler(&[1, 2, 3, 4, 5], &[1, 2, 3, 4, 5]);
        let rev = jaro_winkler(&[1, 2, 3, 4, 5], &[5, 4, 3, 2, 1]);
        assert!(fwd > rev);
    }
}
