//! Clustering and indexing quality metrics.
//!
//! Implements the three evaluation metrics of §V-A:
//!
//! - [`adjusted_rand_index`]: pairwise agreement between predicted and
//!   ground-truth clusterings, chance-corrected.
//! - [`normalized_mutual_information`]: `2·MI / (H(X) + H(Y))`, in `[0, 1]`.
//! - [`jaro_winkler`]: the paper's "edit distance" on floor-index
//!   sequences (higher is better, 1.0 = identical ordering).
//!
//! Plus the [`contingency::ContingencyTable`] shared by ARI/NMI,
//! [`summary`] mean/std helpers for the `mean(std)` cells of Table I,
//! the [`quantile::Quantiles`] bounded p50/p99 recorder behind the
//! serving daemon's latency metrics, the [`histogram::Histogram`]
//! log-bucketed exact distribution behind the `metrics` exposition op,
//! and the [`cache::CacheCounters`] hit/miss/eviction accounting behind
//! its assign answer cache.

pub mod ari;
pub mod cache;
pub mod contingency;
pub mod edit;
pub mod histogram;
pub mod nmi;
pub mod quantile;
pub mod summary;

pub use ari::adjusted_rand_index;
pub use cache::CacheCounters;
pub use contingency::ContingencyTable;
pub use edit::{jaro, jaro_winkler};
pub use histogram::Histogram;
pub use nmi::{entropy, mutual_information, normalized_mutual_information};
pub use quantile::Quantiles;
pub use summary::MeanStd;
