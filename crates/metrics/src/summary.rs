//! Mean/standard-deviation summaries for experiment tables.

use std::fmt;

/// Accumulates observations and reports `mean(std)` in the style of the
/// paper's Table I.
///
/// # Example
///
/// ```
/// use fis_metrics::MeanStd;
///
/// let mut acc = MeanStd::new();
/// acc.push(0.8);
/// acc.push(0.9);
/// assert!((acc.mean() - 0.85).abs() < 1e-12);
/// assert_eq!(format!("{acc}"), "0.850(0.050)");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeanStd {
    values: Vec<f64>,
}

impl MeanStd {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite — a NaN metric indicates an upstream
    /// bug and must not be silently averaged away.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite observation {v}");
        self.values.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation (0.0 with fewer than two values).
    pub fn std(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64)
            .sqrt()
    }

    /// The raw observations.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}({:.3})", self.mean(), self.std())
    }
}

impl Extend<f64> for MeanStd {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for MeanStd {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Self::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_zeros() {
        let acc = MeanStd::new();
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.std(), 0.0);
    }

    #[test]
    fn single_value_zero_std() {
        let acc: MeanStd = [0.7].into_iter().collect();
        assert_eq!(acc.mean(), 0.7);
        assert_eq!(acc.std(), 0.0);
        assert_eq!(acc.len(), 1);
    }

    #[test]
    fn known_mean_std() {
        let acc: MeanStd = [1.0, 3.0].into_iter().collect();
        assert_eq!(acc.mean(), 2.0);
        assert_eq!(acc.std(), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        MeanStd::new().push(f64::NAN);
    }

    #[test]
    fn display_table_format() {
        let acc: MeanStd = [0.856, 0.856].into_iter().collect();
        assert_eq!(acc.to_string(), "0.856(0.000)");
    }
}
