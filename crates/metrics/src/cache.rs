//! Cache effectiveness counters.
//!
//! A tiny shared vocabulary for the serving-path caches (today: the
//! registry's per-model assign answer cache): exact lifetime counters
//! plus the derived hit rate. Deliberately free of any cache policy —
//! the owner decides what counts as a hit; this type only adds.

/// Exact lifetime counters for one cache. All methods are O(1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the answer.
    pub misses: u64,
    /// Answers stored (at most one per miss; error answers may not be
    /// cached, so `insertions <= misses`).
    pub insertions: u64,
    /// Answers dropped to honor a capacity bound. Whole-cache
    /// invalidations (model evict/reload) are *not* counted here — they
    /// are visible through the owner's own eviction counters.
    pub evictions: u64,
}

impl CacheCounters {
    /// Records a lookup that was answered from the cache.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a lookup that had to compute the answer.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Records a stored answer.
    pub fn insertion(&mut self) {
        self.insertions += 1;
    }

    /// Records an answer dropped by the capacity bound.
    pub fn eviction(&mut self) {
        self.evictions += 1;
    }

    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits per lookup in `[0, 1]`; `0.0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Sums another scope's counters into this one (e.g. folding
    /// per-model caches into a global view).
    pub fn absorb(&mut self, other: CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_hit_rate() {
        let mut c = CacheCounters::default();
        assert_eq!(c.hit_rate(), 0.0);
        c.miss();
        c.insertion();
        c.hit();
        c.hit();
        c.eviction();
        assert_eq!(c.lookups(), 3);
        assert_eq!(c.hit_rate(), 2.0 / 3.0);
        assert_eq!(
            c,
            CacheCounters {
                hits: 2,
                misses: 1,
                insertions: 1,
                evictions: 1
            }
        );
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = CacheCounters {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
        };
        a.absorb(CacheCounters {
            hits: 10,
            misses: 20,
            insertions: 30,
            evictions: 40,
        });
        assert_eq!(
            a,
            CacheCounters {
                hits: 11,
                misses: 22,
                insertions: 33,
                evictions: 44
            }
        );
    }
}
