//! Log-bucketed deterministic latency histogram.
//!
//! [`Quantiles`](crate::Quantiles) answers "what is p99 right now" from
//! a decimated sample buffer; [`Histogram`] answers "what does the whole
//! distribution look like" in O(1) memory with *no* sampling: values are
//! counted into base-2 buckets (`(2^(i-1), 2^i]`), so the bucket counts
//! are exact for any stream length and two runs over the same stream are
//! byte-identical in every rendering. The trade-off is resolution —
//! quantiles read from a histogram are upper bucket bounds, at worst 2×
//! the true value — which is the standard Prometheus-histogram contract
//! and exactly what the serving `metrics` op exposes.
//!
//! Unlike `Quantiles::push` (which panics, because a NaN latency on the
//! recording path is an upstream bug), [`Histogram::record`] *rejects*
//! non-finite and negative values and counts them: the histogram also
//! ingests values relayed from untrusted journals where a bad value
//! must be visible but not fatal.

use std::collections::BTreeMap;

use fis_types::json::Json;

/// Number of base-2 buckets: bucket 0 holds `[0, 1]`, bucket `i` holds
/// `(2^(i-1), 2^i]`, and bucket 64 holds everything above `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Exact, bounded, deterministic base-2 histogram.
///
/// # Example
///
/// ```
/// use fis_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 3.0, 500.0, 700.0, 900.0] {
///     assert!(h.record(v));
/// }
/// assert!(!h.record(f64::NAN)); // rejected, not recorded
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.rejected(), 1);
/// // p50 reads the upper bound of the bucket holding the median.
/// assert_eq!(h.quantile(0.5), Some(512.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    rejected: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rejected: 0,
        }
    }

    /// The bucket index for a valid (finite, non-negative) value.
    fn bucket_of(v: f64) -> usize {
        if v <= 1.0 {
            return 0;
        }
        // ceil(log2(v)) via the bit width of the integer part: v in
        // (2^(i-1), 2^i] lands in bucket i. Values above 2^63 saturate
        // into the last bucket.
        if v > (1u64 << 63) as f64 {
            return HISTOGRAM_BUCKETS - 1;
        }
        let above = (v.ceil() as u64).saturating_sub(1);
        (64 - above.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `i` (`1, 2, 4, ...`), or
    /// `f64::INFINITY` for the overflow bucket.
    pub fn bucket_bound(i: usize) -> f64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            (1u64 << i) as f64
        }
    }

    /// Records one observation. Returns `false` — and increments the
    /// [`Histogram::rejected`] counter — for NaN, ±infinity, and
    /// negative values; such values never touch the distribution.
    pub fn record(&mut self, v: f64) -> bool {
        if !v.is_finite() || v < 0.0 {
            self.rejected += 1;
            return false;
        }
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        true
    }

    /// Total accepted observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observation was accepted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Observations refused by [`Histogram::record`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Exact sum of accepted observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile (`q` clamped to `[0, 1]`) read as the
    /// upper bound of the bucket containing that rank — an upper bound
    /// on the true quantile, tight to within one octave. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report a bound above the observed max (the last
                // occupied bucket's bound can overshoot it).
                return Some(Self::bucket_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Shorthand for [`Histogram::quantile`]`(0.50)`.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Shorthand for [`Histogram::quantile`]`(0.99)`.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Sums another histogram into this one (bucket-wise; min/max/sum/
    /// count/rejected all combine exactly).
    pub fn absorb(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.rejected += other.rejected;
    }

    /// Renders as a JSON object: exact scalars plus the non-empty
    /// buckets as `{"le": upper_bound, "count": cumulative}` pairs
    /// (cumulative, Prometheus-style). Deterministic: identical record
    /// sequences render byte-identically.
    pub fn to_json(&self) -> Json {
        let mut obj: BTreeMap<String, Json> = BTreeMap::new();
        obj.insert("count".into(), Json::Num(self.count as f64));
        obj.insert("rejected".into(), Json::Num(self.rejected as f64));
        obj.insert("sum".into(), Json::Num(self.sum));
        if let (Some(min), Some(max)) = (self.min(), self.max()) {
            obj.insert("min".into(), Json::Num(min));
            obj.insert("max".into(), Json::Num(max));
        }
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = Self::bucket_bound(i);
            buckets.push(Json::obj([
                (
                    "le",
                    if le.is_finite() {
                        Json::Num(le)
                    } else {
                        Json::Str("+Inf".into())
                    },
                ),
                ("count", Json::Num(cumulative as f64)),
            ]));
        }
        obj.insert("buckets".into(), Json::Arr(buckets));
        Json::Obj(obj)
    }

    /// Appends Prometheus text-format exposition lines for this
    /// histogram as metric `name` with the given label set (rendered
    /// verbatim inside `{}`, pass `""` for none). Emits the cumulative
    /// `_bucket{le=...}` series over non-empty buckets plus `+Inf`,
    /// `_sum`, and `_count`.
    pub fn render_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write;
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative += n;
            let le = Self::bucket_bound(i);
            if le.is_finite() {
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
                );
            }
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
            self.count
        );
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", self.sum);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.rejected(), 0);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        assert!(h.record(7.0));
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(7.0));
        assert_eq!(h.max(), Some(7.0));
        assert_eq!(h.mean(), Some(7.0));
        // 7 lands in (4, 8]; the bound is clamped to the observed max.
        assert_eq!(h.quantile(0.0), Some(7.0));
        assert_eq!(h.quantile(1.0), Some(7.0));
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(1.0), 0);
        assert_eq!(Histogram::bucket_of(1.5), 1);
        assert_eq!(Histogram::bucket_of(2.0), 1);
        assert_eq!(Histogram::bucket_of(2.1), 2);
        assert_eq!(Histogram::bucket_of(4.0), 2);
        assert_eq!(Histogram::bucket_of(1024.0), 10);
        assert_eq!(Histogram::bucket_of(1025.0), 11);
        assert_eq!(Histogram::bucket_of(f64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn non_finite_and_negative_rejected() {
        let mut h = Histogram::new();
        assert!(!h.record(f64::NAN));
        assert!(!h.record(f64::INFINITY));
        assert!(!h.record(f64::NEG_INFINITY));
        assert!(!h.record(-1.0));
        assert_eq!(h.rejected(), 4);
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        // Rejections leave the distribution untouched.
        assert_eq!(
            h.to_json().get("buckets").unwrap().as_arr().unwrap().len(),
            0
        );
    }

    #[test]
    fn quantiles_are_octave_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            assert!(h.record(v as f64));
        }
        assert_eq!(h.count(), 1000);
        // True p50 = 500, bucket (256, 512] upper bound:
        assert_eq!(h.p50(), Some(512.0));
        let p99 = h.p99().unwrap();
        assert!((990.0..=1000.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(1000.0));
        assert_eq!(h.mean(), Some(500.5));
    }

    #[test]
    fn identical_sequences_render_byte_identically() {
        let run = || {
            let mut h = Histogram::new();
            for v in 0..500u64 {
                h.record(((v * 97) % 4099) as f64);
            }
            h.record(f64::NAN);
            h.to_json().to_string()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"rejected\":1"));
    }

    #[test]
    fn absorb_matches_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..100u64 {
            let v = (v * 13 % 777) as f64;
            if v < 400.0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.absorb(&b);
        assert_eq!(a, both);
        assert_eq!(a.to_json().to_string(), both.to_json().to_string());
    }

    #[test]
    fn prometheus_rendering_shape() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(3.0);
        h.record(3.5);
        let mut out = String::new();
        h.render_prometheus(&mut out, "fis_latency_ns", "scope=\"global\"");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines,
            vec![
                "fis_latency_ns_bucket{scope=\"global\",le=\"1\"} 1",
                "fis_latency_ns_bucket{scope=\"global\",le=\"4\"} 3",
                "fis_latency_ns_bucket{scope=\"global\",le=\"+Inf\"} 3",
                "fis_latency_ns_sum{scope=\"global\"} 7.5",
                "fis_latency_ns_count{scope=\"global\"} 3",
            ]
        );
    }
}
