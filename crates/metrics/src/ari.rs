//! Adjusted Rand Index.

use crate::contingency::ContingencyTable;

fn choose2(n: usize) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index between a predicted and a ground-truth labeling.
///
/// `ARI = (Σ C(n_ij,2) − E) / (max − E)` with
/// `E = Σ C(|X_i|,2) Σ C(|Y_j|,2) / C(n,2)` — Rand (1971) with the
/// Hubert–Arabie chance correction, exactly the formula in §V-A.
///
/// Returns 1.0 for identical partitions (including the degenerate case
/// where both sides put everything in one cluster), values near 0 for
/// random labelings, and can be negative for adversarial ones.
///
/// # Errors
///
/// Returns an error if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// let ari = fis_metrics::adjusted_rand_index(&[0, 0, 1, 1], &[1, 1, 0, 0])?;
/// assert!((ari - 1.0).abs() < 1e-12); // permutation-invariant
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn adjusted_rand_index(predicted: &[usize], truth: &[usize]) -> Result<f64, String> {
    let t = ContingencyTable::new(predicted, truth)?;
    let sum_cells: f64 = t.cells().map(|(_, _, c)| choose2(c)).sum();
    let sum_rows: f64 = (0..t.n_predicted()).map(|i| choose2(t.row_sum(i))).sum();
    let sum_cols: f64 = (0..t.n_true()).map(|j| choose2(t.col_sum(j))).sum();
    let pairs = choose2(t.total());
    if pairs == 0.0 {
        // A single item: both partitions are trivially identical.
        return Ok(1.0);
    }
    let expected = sum_rows * sum_cols / pairs;
    let max = 0.5 * (sum_rows + sum_cols);
    let denom = max - expected;
    if denom.abs() < 1e-12 {
        // Both partitions are all-singletons or single-cluster: identical
        // structure, define ARI = 1.
        return Ok(1.0);
    }
    Ok((sum_cells - expected) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let ari = adjusted_rand_index(&[0, 0, 1, 1, 2], &[0, 0, 1, 1, 2]).unwrap();
        assert!((ari - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_invariant() {
        let a = adjusted_rand_index(&[0, 0, 1, 1], &[2, 2, 7, 7]).unwrap();
        assert!((a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_sklearn_value() {
        // sklearn.metrics.adjusted_rand_score([0,0,1,2], [0,0,1,1]) = 0.5714285714285715
        let ari = adjusted_rand_index(&[0, 0, 1, 2], &[0, 0, 1, 1]).unwrap();
        assert!((ari - 0.571_428_571_428_571_5).abs() < 1e-12, "ari={ari}");
    }

    #[test]
    fn single_cluster_both_sides() {
        let ari = adjusted_rand_index(&[0, 0, 0], &[5, 5, 5]).unwrap();
        assert!((ari - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adversarial_can_be_negative() {
        // sklearn: adjusted_rand_score([0,1,0,1], [0,0,1,1]) = -0.5
        let ari = adjusted_rand_index(&[0, 1, 0, 1], &[0, 0, 1, 1]).unwrap();
        assert!((ari + 0.5).abs() < 1e-12, "ari={ari}");
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(adjusted_rand_index(&[0], &[0, 1]).is_err());
        assert!(adjusted_rand_index(&[], &[]).is_err());
    }

    #[test]
    fn single_item_is_one() {
        assert_eq!(adjusted_rand_index(&[3], &[9]).unwrap(), 1.0);
    }
}
