//! Bounded quantile recorder for serving latencies.
//!
//! The serving daemon needs p50/p99 latency per model and globally, over
//! an unbounded request stream, without unbounded memory. [`Quantiles`]
//! records observations into a bounded sample buffer: once the buffer is
//! full it is compacted by *deterministic decimation* — every second
//! retained sample is dropped and the keep stride doubles, so the buffer
//! always holds an evenly spaced subsample of the stream. Count, mean,
//! min, and max stay exact; quantiles degrade gracefully (the subsample
//! stays uniform over arrival order, which is what a latency stream
//! needs).
//!
//! Everything is deterministic: the same observation sequence always
//! yields the same report, matching the workspace-wide reproducibility
//! contract.

/// Default sample-buffer capacity (observations retained for quantiles).
pub const DEFAULT_QUANTILE_CAPACITY: usize = 4096;

/// Bounded, deterministic quantile/mean/min/max recorder.
///
/// # Example
///
/// ```
/// use fis_metrics::Quantiles;
///
/// let mut q = Quantiles::new();
/// for v in 1..=100 {
///     q.push(v as f64);
/// }
/// assert_eq!(q.count(), 100);
/// assert_eq!(q.quantile(0.5), Some(50.0));
/// assert_eq!(q.quantile(0.99), Some(99.0));
/// assert_eq!(q.min(), Some(1.0));
/// assert_eq!(q.max(), Some(100.0));
/// ```
#[derive(Debug, Clone)]
pub struct Quantiles {
    samples: Vec<f64>,
    capacity: usize,
    /// Keep one observation in `stride`; doubles on each compaction.
    stride: u64,
    /// Observations skipped since the last retained one.
    skipped: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Quantiles {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_QUANTILE_CAPACITY)
    }
}

impl Quantiles {
    /// Creates a recorder with the default buffer capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder retaining at most `capacity` samples for the
    /// quantile estimate (minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::new(),
            capacity: capacity.max(2),
            stride: 1,
            skipped: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not finite — a NaN latency indicates an upstream
    /// bug and must not be silently ranked.
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "non-finite observation {v}");
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        // Decimated intake: keep one observation per stride.
        if self.skipped > 0 {
            self.skipped -= 1;
            return;
        }
        self.skipped = self.stride - 1;
        self.samples.push(v);
        if self.samples.len() >= self.capacity {
            // Compact: keep every second retained sample, double the
            // stride. The surviving samples remain evenly spaced over the
            // whole stream so far.
            let mut keep = 0;
            for i in (0..self.samples.len()).step_by(2) {
                self.samples[keep] = self.samples[i];
                keep += 1;
            }
            self.samples.truncate(keep);
            self.stride *= 2;
        }
    }

    /// Total observations recorded (exact, not just the retained buffer).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact minimum, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile over the retained sample buffer
    /// (`q` clamped to `[0, 1]`), or `None` when empty. Exact until the
    /// buffer first fills, an evenly spaced estimate afterwards.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: ceil(q * n), 1-based, so q=0.5 over 100 samples
        // picks rank 50.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Shorthand for [`Quantiles::quantile`]`(0.50)`.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Shorthand for [`Quantiles::quantile`]`(0.99)`.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Number of samples currently retained for the quantile estimate.
    pub fn retained(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_none() {
        let q = Quantiles::new();
        assert!(q.is_empty());
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.mean(), None);
        assert_eq!(q.min(), None);
        assert_eq!(q.max(), None);
    }

    #[test]
    fn exact_quantiles_before_first_compaction() {
        let mut q = Quantiles::with_capacity(1024);
        for v in (1..=100).rev() {
            q.push(v as f64);
        }
        assert_eq!(q.count(), 100);
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.p50(), Some(50.0));
        assert_eq!(q.quantile(0.90), Some(90.0));
        assert_eq!(q.p99(), Some(99.0));
        assert_eq!(q.quantile(1.0), Some(100.0));
        assert_eq!(q.mean(), Some(50.5));
    }

    #[test]
    fn compaction_keeps_exact_count_mean_min_max() {
        let mut q = Quantiles::with_capacity(64);
        for v in 0..10_000u64 {
            q.push(v as f64);
        }
        assert_eq!(q.count(), 10_000);
        assert_eq!(q.min(), Some(0.0));
        assert_eq!(q.max(), Some(9999.0));
        assert_eq!(q.mean(), Some(4999.5));
        assert!(q.retained() <= 64);
        // The decimated median of a uniform ramp stays near the middle.
        let p50 = q.p50().unwrap();
        assert!((p50 - 5000.0).abs() < 500.0, "p50 {p50}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut q = Quantiles::with_capacity(32);
            for v in 0..1000u64 {
                q.push(((v * 37) % 101) as f64);
            }
            (q.p50(), q.p99(), q.retained())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut q = Quantiles::new();
        q.push(42.5);
        assert_eq!(q.count(), 1);
        assert_eq!(q.retained(), 1);
        for quantile in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(q.quantile(quantile), Some(42.5), "q={quantile}");
        }
        assert_eq!(q.mean(), Some(42.5));
        assert_eq!(q.min(), Some(42.5));
        assert_eq!(q.max(), Some(42.5));
    }

    #[test]
    fn quantile_argument_is_clamped() {
        let mut q = Quantiles::new();
        q.push(1.0);
        q.push(2.0);
        assert_eq!(q.quantile(-3.0), Some(1.0));
        assert_eq!(q.quantile(7.0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        Quantiles::new().push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn infinity_rejected() {
        Quantiles::new().push(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn negative_infinity_rejected() {
        Quantiles::new().push(f64::NEG_INFINITY);
    }
}
