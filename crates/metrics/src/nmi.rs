//! Mutual information, entropy, and NMI.

use crate::contingency::ContingencyTable;

/// Shannon entropy (nats) of a labeling.
///
/// # Errors
///
/// Returns an error for an empty slice.
pub fn entropy(labels: &[usize]) -> Result<f64, String> {
    if labels.is_empty() {
        return Err("entropy of empty labeling".to_owned());
    }
    let t = ContingencyTable::new(labels, labels)?;
    let n = t.total() as f64;
    let mut h = 0.0;
    for i in 0..t.n_predicted() {
        let p = t.row_sum(i) as f64 / n;
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    Ok(h)
}

/// Mutual information (nats) between two labelings:
/// `MI = Σ_ij (n_ij/n) · ln(n·n_ij / (|X_i||Y_j|))` (§V-A).
///
/// # Errors
///
/// Returns an error if the slices differ in length or are empty.
pub fn mutual_information(predicted: &[usize], truth: &[usize]) -> Result<f64, String> {
    let t = ContingencyTable::new(predicted, truth)?;
    let n = t.total() as f64;
    let mut mi = 0.0;
    for (i, j, c) in t.cells() {
        if c == 0 {
            continue;
        }
        let nij = c as f64;
        mi += (nij / n) * ((n * nij) / (t.row_sum(i) as f64 * t.col_sum(j) as f64)).ln();
    }
    Ok(mi.max(0.0))
}

/// Normalized mutual information `2·MI / (H(X) + H(Y))`, in `[0, 1]`.
///
/// When both labelings are constant (zero entropy), they are identical
/// partitions and NMI is defined as 1.
///
/// # Errors
///
/// Returns an error if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// let nmi = fis_metrics::normalized_mutual_information(&[0, 0, 1, 1], &[1, 1, 0, 0])?;
/// assert!((nmi - 1.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn normalized_mutual_information(predicted: &[usize], truth: &[usize]) -> Result<f64, String> {
    let mi = mutual_information(predicted, truth)?;
    let hx = entropy(predicted)?;
    let hy = entropy(truth)?;
    if hx + hy == 0.0 {
        return Ok(1.0);
    }
    Ok((2.0 * mi / (hx + hy)).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_uniform_two_classes() {
        let h = entropy(&[0, 1, 0, 1]).unwrap();
        assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn entropy_constant_is_zero() {
        assert_eq!(entropy(&[7, 7, 7]).unwrap(), 0.0);
    }

    #[test]
    fn mi_of_identical_equals_entropy() {
        let labels = [0, 0, 1, 1, 2, 2];
        let mi = mutual_information(&labels, &labels).unwrap();
        let h = entropy(&labels).unwrap();
        assert!((mi - h).abs() < 1e-12);
    }

    #[test]
    fn mi_of_independent_is_zero() {
        // Every (pred, truth) combination appears equally often.
        let pred = [0, 0, 1, 1];
        let truth = [0, 1, 0, 1];
        let mi = mutual_information(&pred, &truth).unwrap();
        assert!(mi.abs() < 1e-12);
    }

    #[test]
    fn nmi_perfect_and_independent() {
        assert!(
            (normalized_mutual_information(&[0, 0, 1, 1], &[5, 5, 9, 9]).unwrap() - 1.0).abs()
                < 1e-12
        );
        assert!(
            normalized_mutual_information(&[0, 0, 1, 1], &[0, 1, 0, 1])
                .unwrap()
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn nmi_constant_both_sides_is_one() {
        assert_eq!(
            normalized_mutual_information(&[1, 1, 1], &[2, 2, 2]).unwrap(),
            1.0
        );
    }

    #[test]
    fn nmi_known_hand_computed_value() {
        // pred=[0,0,1,2], truth=[0,0,1,1]:
        // MI = ln 2, H(X) = 1.5 ln 2, H(Y) = ln 2
        // NMI = 2 ln2 / (2.5 ln2) = 0.8 (matches sklearn's arithmetic mean).
        let nmi = normalized_mutual_information(&[0, 0, 1, 2], &[0, 0, 1, 1]).unwrap();
        assert!((nmi - 0.8).abs() < 1e-12, "nmi={nmi}");
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(entropy(&[]).is_err());
        assert!(mutual_information(&[0], &[0, 1]).is_err());
        assert!(normalized_mutual_information(&[], &[]).is_err());
    }
}
