//! Contingency tables between two labelings.

/// Cross-tabulation of two labelings of the same items.
///
/// Entry `(i, j)` counts items with predicted label `i` and true label `j`
/// (`n_ij = |X_i ∩ Y_j|` in the paper's notation).
///
/// # Example
///
/// ```
/// use fis_metrics::ContingencyTable;
///
/// let t = ContingencyTable::new(&[0, 0, 1], &[1, 1, 0])?;
/// assert_eq!(t.total(), 3);
/// assert_eq!(t.count(0, 1), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContingencyTable {
    counts: Vec<Vec<usize>>,
    row_sums: Vec<usize>,
    col_sums: Vec<usize>,
    total: usize,
}

impl ContingencyTable {
    /// Builds the table from parallel label slices. Labels may be any
    /// `usize` values; they are compacted internally.
    ///
    /// # Errors
    ///
    /// Returns an error if the slices have different lengths or are empty.
    pub fn new(predicted: &[usize], truth: &[usize]) -> Result<Self, String> {
        if predicted.len() != truth.len() {
            return Err(format!(
                "label slices differ in length: {} vs {}",
                predicted.len(),
                truth.len()
            ));
        }
        if predicted.is_empty() {
            return Err("cannot build a contingency table from zero items".to_owned());
        }
        let compact = |labels: &[usize]| -> (Vec<usize>, usize) {
            let mut sorted: Vec<usize> = labels.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let mapped = labels
                .iter()
                .map(|l| sorted.binary_search(l).expect("label present"))
                .collect();
            (mapped, sorted.len())
        };
        let (pred, n_pred) = compact(predicted);
        let (tru, n_true) = compact(truth);
        let mut counts = vec![vec![0usize; n_true]; n_pred];
        for (&p, &t) in pred.iter().zip(tru.iter()) {
            counts[p][t] += 1;
        }
        let row_sums: Vec<usize> = counts.iter().map(|r| r.iter().sum()).collect();
        let col_sums: Vec<usize> = (0..n_true)
            .map(|j| counts.iter().map(|r| r[j]).sum())
            .collect();
        Ok(Self {
            counts,
            row_sums,
            col_sums,
            total: predicted.len(),
        })
    }

    /// Number of distinct predicted labels.
    pub fn n_predicted(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct true labels.
    pub fn n_true(&self) -> usize {
        self.col_sums.len()
    }

    /// Count of items in predicted cluster `i` and true cluster `j`.
    pub fn count(&self, i: usize, j: usize) -> usize {
        self.counts[i][j]
    }

    /// Size of predicted cluster `i`.
    pub fn row_sum(&self, i: usize) -> usize {
        self.row_sums[i]
    }

    /// Size of true cluster `j`.
    pub fn col_sum(&self, j: usize) -> usize {
        self.col_sums[j]
    }

    /// Total number of items.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Iterates over all `(i, j, count)` cells.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().map(move |(j, &c)| (i, j, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compacts_sparse_labels() {
        let t = ContingencyTable::new(&[10, 10, 99], &[5, 7, 7]).unwrap();
        assert_eq!(t.n_predicted(), 2);
        assert_eq!(t.n_true(), 2);
        assert_eq!(t.count(0, 0), 1); // label 10 ∩ label 5
        assert_eq!(t.count(0, 1), 1);
        assert_eq!(t.count(1, 1), 1);
    }

    #[test]
    fn sums_are_consistent() {
        let t = ContingencyTable::new(&[0, 0, 1, 1, 1], &[0, 1, 0, 1, 1]).unwrap();
        assert_eq!(t.total(), 5);
        assert_eq!((0..t.n_predicted()).map(|i| t.row_sum(i)).sum::<usize>(), 5);
        assert_eq!((0..t.n_true()).map(|j| t.col_sum(j)).sum::<usize>(), 5);
        let cell_total: usize = t.cells().map(|(_, _, c)| c).sum();
        assert_eq!(cell_total, 5);
    }

    #[test]
    fn rejects_mismatched_or_empty() {
        assert!(ContingencyTable::new(&[0], &[]).is_err());
        assert!(ContingencyTable::new(&[], &[]).is_err());
    }
}
