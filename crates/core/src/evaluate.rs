//! Evaluation against ground truth: ARI, NMI, edit distance (§V-A).

use fis_metrics::{adjusted_rand_index, jaro_winkler, normalized_mutual_information};
use fis_types::Building;

use crate::error::FisError;
use crate::pipeline::{FisOne, FloorPrediction};

/// The three §V-A metrics for one building.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Adjusted Rand Index of the predicted clustering vs ground truth.
    pub ari: f64,
    /// Normalized mutual information, in `[0, 1]`.
    pub nmi: f64,
    /// Jaro–Winkler similarity of the predicted floor ordering (higher is
    /// better; 1.0 = exact ordering).
    pub edit: f64,
}

/// Runs the full pipeline on `building` with its bottom-floor anchor and
/// scores the prediction.
///
/// # Errors
///
/// Returns a [`FisError`] if the building lacks a bottom-floor sample or
/// the pipeline fails.
pub fn evaluate_building(fis: &FisOne, building: &Building) -> Result<EvalResult, FisError> {
    let anchor = building.bottom_anchor().ok_or_else(|| {
        FisError::Evaluation(format!(
            "building {} has no sample on the bottom floor",
            building.name()
        ))
    })?;
    let prediction = fis.identify(building.samples(), building.floors(), anchor)?;
    score_prediction(&prediction, building)
}

/// Scores an existing prediction against a building's ground truth.
///
/// ARI and NMI compare the *clustering* (cluster ids vs true floors);
/// the edit distance compares the predicted floor *ordering*: each cluster
/// is mapped to its majority true floor, the clusters are read off in
/// predicted path order, and the resulting sequence is Jaro–Winkler
/// compared with `(1, 2, ..., N)` — exactly the paper's five-cluster
/// worked example.
///
/// # Errors
///
/// Returns [`FisError::Evaluation`] on length mismatches.
pub fn score_prediction(
    prediction: &FloorPrediction,
    building: &Building,
) -> Result<EvalResult, FisError> {
    let truth: Vec<usize> = building.ground_truth().iter().map(|f| f.index()).collect();
    if prediction.labels().len() != truth.len() {
        return Err(FisError::Evaluation(format!(
            "prediction covers {} samples, building has {}",
            prediction.labels().len(),
            truth.len()
        )));
    }
    let clusters = prediction.assignment();
    let ari = adjusted_rand_index(clusters, &truth).map_err(FisError::Evaluation)?;
    let nmi = normalized_mutual_information(clusters, &truth).map_err(FisError::Evaluation)?;

    let predicted_sequence = majority_floor_sequence(prediction, &truth, building.floors());
    let ground_sequence: Vec<usize> = (1..=building.floors()).collect();
    let edit = jaro_winkler(&predicted_sequence, &ground_sequence);
    Ok(EvalResult { ari, nmi, edit })
}

/// Maps each cluster (in predicted path order) to its majority true floor
/// *number* (one-based). Empty clusters map to 0, which can never match.
fn majority_floor_sequence(
    prediction: &FloorPrediction,
    truth: &[usize],
    floors: usize,
) -> Vec<usize> {
    prediction
        .cluster_order()
        .iter()
        .map(|&cluster| {
            let mut votes = vec![0usize; floors];
            for (i, &c) in prediction.assignment().iter().enumerate() {
                if c == cluster {
                    votes[truth[i]] += 1;
                }
            }
            votes
                .iter()
                .enumerate()
                .max_by_key(|&(_, &v)| v)
                .map(|(f, &v)| if v == 0 { 0 } else { f + 1 })
                .unwrap_or(0)
        })
        .collect()
}

/// Averages [`EvalResult`]s (used by corpus-level experiments).
pub fn mean_result(results: &[EvalResult]) -> EvalResult {
    if results.is_empty() {
        return EvalResult {
            ari: 0.0,
            nmi: 0.0,
            edit: 0.0,
        };
    }
    let n = results.len() as f64;
    EvalResult {
        ari: results.iter().map(|r| r.ari).sum::<f64>() / n,
        nmi: results.iter().map(|r| r.nmi).sum::<f64>() / n,
        edit: results.iter().map(|r| r.edit).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FisOneConfig, FloorPrediction};
    use fis_gnn::RfGnnConfig;
    use fis_synth::BuildingConfig;

    fn quick_pipeline(seed: u64) -> FisOne {
        let mut config = FisOneConfig::default().seed(seed);
        config.gnn = RfGnnConfig::new(16)
            .epochs(10)
            .walks_per_node(4)
            .neighbor_samples(vec![8, 4])
            .seed(seed);
        FisOne::new(config)
    }

    #[test]
    fn perfect_prediction_scores_ones() {
        let b = BuildingConfig::new("e", 3)
            .samples_per_floor(10)
            .aps_per_floor(6)
            .seed(31)
            .generate();
        // Oracle prediction straight from ground truth.
        let assignment: Vec<usize> = b.ground_truth().iter().map(|f| f.index()).collect();
        let pred = FloorPrediction::new(assignment, vec![0, 1, 2], vec![0, 1, 2]);
        let res = score_prediction(&pred, &b).unwrap();
        assert!((res.ari - 1.0).abs() < 1e-12);
        assert!((res.nmi - 1.0).abs() < 1e-12);
        assert!((res.edit - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swapped_ordering_hurts_edit_only() {
        let b = BuildingConfig::new("e", 4)
            .samples_per_floor(10)
            .aps_per_floor(6)
            .seed(32)
            .generate();
        let assignment: Vec<usize> = b.ground_truth().iter().map(|f| f.index()).collect();
        // Clustering perfect, but floors 2 and 3 (clusters 1 and 2) swapped
        // in the ordering.
        let pred = FloorPrediction::new(assignment, vec![0, 2, 1, 3], vec![0, 2, 1, 3]);
        let res = score_prediction(&pred, &b).unwrap();
        assert!((res.ari - 1.0).abs() < 1e-12, "ari unaffected by ordering");
        assert!((res.nmi - 1.0).abs() < 1e-12);
        assert!(res.edit < 1.0, "edit must drop: {}", res.edit);
    }

    #[test]
    fn end_to_end_scores_beat_chance() {
        let b = BuildingConfig::new("e", 3)
            .samples_per_floor(40)
            .aps_per_floor(10)
            .atrium_aps(0)
            .seed(33)
            .generate();
        let res = evaluate_building(&quick_pipeline(1), &b).unwrap();
        assert!(res.ari > 0.5, "ari={}", res.ari);
        assert!(res.nmi > 0.5, "nmi={}", res.nmi);
        assert!(res.edit > 0.6, "edit={}", res.edit);
    }

    #[test]
    fn mean_result_averages() {
        let a = EvalResult {
            ari: 0.8,
            nmi: 0.6,
            edit: 1.0,
        };
        let b = EvalResult {
            ari: 0.4,
            nmi: 0.2,
            edit: 0.5,
        };
        let m = mean_result(&[a, b]);
        assert!((m.ari - 0.6).abs() < 1e-12);
        assert!((m.nmi - 0.4).abs() < 1e-12);
        assert!((m.edit - 0.75).abs() < 1e-12);
        assert_eq!(mean_result(&[]).ari, 0.0);
    }
}
