//! Error type for the FIS-ONE pipeline.

use std::error::Error;
use std::fmt;

/// Error produced by the FIS-ONE pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FisError {
    /// The input samples could not form a usable graph.
    Graph(String),
    /// RF-GNN training failed (bad config, divergence, empty walks).
    Training(String),
    /// Clustering failed (too few samples for the requested floor count).
    Clustering(String),
    /// Cluster indexing / TSP solving failed.
    Indexing(String),
    /// The labeled anchor was inconsistent with the inputs.
    Anchor(String),
    /// Evaluation inputs were inconsistent.
    Evaluation(String),
    /// A fitted-model artifact failed to load or validate (corrupt JSON,
    /// schema mismatch, inconsistent shapes).
    Model(String),
    /// Streaming inference against a fitted model failed (e.g. the scan
    /// heard no MAC known to the model).
    Inference(String),
}

impl fmt::Display for FisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FisError::Graph(s) => write!(f, "graph construction failed: {s}"),
            FisError::Training(s) => write!(f, "rf-gnn training failed: {s}"),
            FisError::Clustering(s) => write!(f, "signal clustering failed: {s}"),
            FisError::Indexing(s) => write!(f, "cluster indexing failed: {s}"),
            FisError::Anchor(s) => write!(f, "invalid labeled anchor: {s}"),
            FisError::Evaluation(s) => write!(f, "evaluation failed: {s}"),
            FisError::Model(s) => write!(f, "fitted-model artifact invalid: {s}"),
            FisError::Inference(s) => write!(f, "streaming inference failed: {s}"),
        }
    }
}

impl Error for FisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_lowercase() {
        let e = FisError::Graph("x".into());
        assert!(e.to_string().starts_with(char::is_lowercase));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<FisError>();
    }
}
