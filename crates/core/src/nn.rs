//! Exact 1-nearest-neighbor search over reference embeddings.
//!
//! [`FittedModel::assign`](crate::model::FittedModel::assign) labels a
//! scan with the cluster of its nearest *reference* embedding. The
//! obvious implementation is a linear scan — O(refs × dim) per query —
//! which dominates serve latency on big buildings (100k+ reference
//! scans). This module provides a [`VpTree`] (vantage-point tree,
//! Yianilos 1993): a metric tree over the references, built once at
//! fit/load time, answering exact 1-NN queries in roughly O(log n)
//! distance computations on clustered data.
//!
//! # Exactness contract
//!
//! The tree is **not** an approximate index. Its answers are
//! bit-identical to the reference linear scan:
//!
//! - Distances are computed by the *same* function on the *same* values
//!   ([`fis_linalg::vec_ops::euclidean`] over full f64 rows), so every
//!   candidate's distance is the exact bits the linear scan would see.
//! - The best candidate is the lexicographic minimum of
//!   `(distance, point id)` — exactly what a linear scan with a strict
//!   `<` update produces (lowest id wins on exact distance ties).
//! - Subtree pruning uses the triangle-inequality lower bound with a
//!   conservative relative slack (`PRUNE_SLACK`, ~100× the worst-case
//!   f64 rounding error of the bound arithmetic), so a subtree that
//!   could contain a point at distance ≤ the current best — including
//!   an equal-distance point with a lower id — is never skipped.
//!
//! `tests/proptest_nn.rs` diffs the tree against the linear scan on
//! arbitrary point sets (duplicates and exact ties included), and the
//! golden fixtures lock the model-level behavior.
//!
//! # Determinism
//!
//! Construction is a pure function of the input points: vantage points
//! are picked by position, partitions sort by `(distance, id)` with
//! [`f64::total_cmp`]. Two processes building over the same references
//! produce the same tree — and regardless of tree shape, the exactness
//! contract above makes the *answer* independent of construction.

use fis_linalg::vec_ops::euclidean;

/// Subtrees whose triangle-inequality lower bound exceeds the current
/// best distance by more than `bound × PRUNE_SLACK` are pruned. The
/// bound is computed from two rounded f64 distances, each carrying a
/// relative error of at most ~(dim/2 + 2) ulp (≈ 1e-14 for dim ≤ 64);
/// 1e-12 covers that with two orders of magnitude to spare while
/// costing essentially no pruning power.
const PRUNE_SLACK: f64 = 1e-12;

/// Leaves hold up to this many points; below this size a scan beats
/// the bookkeeping of further splits.
const LEAF_SIZE: usize = 12;

/// Sentinel child index for an absent subtree.
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Node {
    /// Points `items[start .. start + len]`, scanned exhaustively.
    Leaf { start: u32, len: u32 },
    /// A vantage point splitting its subtree at radius `mu`: `inner`
    /// holds points with `d(x, vp) <= mu`, `outer` points with
    /// `d(x, vp) >= mu` (the median-distance point seeds `outer`, so
    /// both bounds are inclusive at `mu`).
    Split {
        vp: u32,
        mu: f64,
        inner: u32,
        outer: u32,
    },
}

/// A vantage-point tree answering exact, linear-scan-bit-identical 1-NN
/// queries. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct VpTree {
    dim: usize,
    /// Row-major coordinates of the indexed points, addressed by
    /// original point id (`coords[id*dim .. (id+1)*dim]`). Rows for
    /// excluded ids are left zeroed and never referenced.
    coords: Vec<f64>,
    /// Indexed point ids, permuted into tree order; leaves reference
    /// ranges of this array.
    items: Vec<u32>,
    nodes: Vec<Node>,
    root: u32,
}

impl VpTree {
    /// Builds a tree over `points`, indexing only the ids for which
    /// `include` returns `true` (the model excludes placeholder rows of
    /// empty training scans). Rows must share one dimension.
    ///
    /// # Panics
    ///
    /// Panics if included rows disagree on dimension, or if more than
    /// `u32::MAX` points are indexed.
    pub fn build(points: &[Vec<f64>], mut include: impl FnMut(usize) -> bool) -> Self {
        assert!(points.len() < u32::MAX as usize, "too many points");
        let items: Vec<u32> = (0..points.len() as u32)
            .filter(|&i| include(i as usize))
            .collect();
        let dim = items.first().map_or(0, |&i| points[i as usize].len());
        let mut coords = vec![0.0; points.len() * dim];
        for &id in &items {
            let row = &points[id as usize];
            assert_eq!(row.len(), dim, "point {id} disagrees on dimension");
            coords[id as usize * dim..(id as usize + 1) * dim].copy_from_slice(row);
        }
        let mut tree = Self {
            dim,
            coords,
            items,
            nodes: Vec::new(),
            root: NONE,
        };
        if !tree.items.is_empty() {
            // Take `items` out to split borrows; put it back after.
            let mut items = std::mem::take(&mut tree.items);
            let n = items.len();
            tree.root = tree.split(&mut items, 0, n);
            tree.items = items;
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The shared dimension of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The stored coordinates of point `id` (zeroed for excluded ids).
    pub fn point(&self, id: usize) -> &[f64] {
        &self.coords[id * self.dim..(id + 1) * self.dim]
    }

    /// Recursively splits `items[lo..hi]` and returns the node index.
    fn split(&mut self, items: &mut [u32], lo: usize, hi: usize) -> u32 {
        if lo == hi {
            return NONE;
        }
        if hi - lo <= LEAF_SIZE {
            self.nodes.push(Node::Leaf {
                start: lo as u32,
                len: (hi - lo) as u32,
            });
            return (self.nodes.len() - 1) as u32;
        }
        // Deterministic vantage point: the first item of the range (the
        // initial order is ascending ids; deeper ranges arrive sorted by
        // distance to the parent vantage point).
        let vp = items[lo];
        let mut rest: Vec<(f64, u32)> = items[lo + 1..hi]
            .iter()
            .map(|&id| {
                (
                    euclidean(self.point(vp as usize), self.point(id as usize)),
                    id,
                )
            })
            .collect();
        rest.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (slot, &(_, id)) in items[lo + 1..hi].iter_mut().zip(&rest) {
            *slot = id;
        }
        // Median split: inner gets the closer half (d <= mu), outer the
        // farther half (d >= mu), with the median point opening outer.
        let mid = rest.len() / 2;
        let mu = rest[mid].0;
        let inner = self.split(items, lo + 1, lo + 1 + mid);
        let outer = self.split(items, lo + 1 + mid, hi);
        self.nodes.push(Node::Split {
            vp,
            mu,
            inner,
            outer,
        });
        (self.nodes.len() - 1) as u32
    }

    /// Exact 1-NN: the id of the indexed point minimizing
    /// `(euclidean(query, point), id)` lexicographically — bit-identical
    /// to a linear scan with a strict `<` update. Returns `None` on an
    /// empty tree.
    ///
    /// The traversal is depth-first, nearer child first, pruning any
    /// subtree whose triangle-inequality lower bound (minus the rounding
    /// slack) exceeds the best distance so far. Traversal order cannot
    /// change the answer — the lexicographic minimum is order-invariant —
    /// only how much gets pruned.
    ///
    /// # Panics
    ///
    /// Panics if `query` has the wrong dimension.
    pub fn nearest(&self, query: &[f64]) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut best = Best {
            dist: f64::INFINITY,
            id: NONE,
        };
        self.search(self.root, query, &mut best);
        Some(best.id as usize)
    }

    /// Reference implementation: the same lexicographic minimum by
    /// exhaustive scan over the indexed points, in id order. Used by the
    /// property tests to diff the tree.
    pub fn nearest_linear(&self, query: &[f64]) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut sorted: Vec<u32> = self.items.clone();
        sorted.sort_unstable();
        let mut best = Best {
            dist: f64::INFINITY,
            id: NONE,
        };
        for &id in &sorted {
            best.consider(euclidean(query, self.point(id as usize)), id);
        }
        (best.id != NONE).then_some(best.id as usize)
    }

    fn search(&self, node: u32, query: &[f64], best: &mut Best) {
        match self.nodes[node as usize] {
            Node::Leaf { start, len } => {
                for &id in &self.items[start as usize..(start + len) as usize] {
                    best.consider(euclidean(query, self.point(id as usize)), id);
                }
            }
            Node::Split {
                vp,
                mu,
                inner,
                outer,
            } => {
                let d = euclidean(query, self.point(vp as usize));
                best.consider(d, vp);
                // Conservative triangle-inequality bounds: a point in
                // `inner` is no closer than d - mu, a point in `outer`
                // no closer than mu - d. The slack keeps f64 rounding
                // from ever pruning a true (or exactly tied) nearest
                // neighbor.
                let slack = (d + mu) * PRUNE_SLACK;
                let visit = |tree: &Self, child: u32, bound: f64, best: &mut Best| {
                    if child != NONE && bound <= best.dist + slack {
                        tree.search(child, query, best);
                    }
                };
                // Nearer side first, so the best distance tightens
                // before the far side's bound is tested.
                if d < mu {
                    visit(self, inner, d - mu, best);
                    visit(self, outer, mu - d, best);
                } else {
                    visit(self, outer, mu - d, best);
                    visit(self, inner, d - mu, best);
                }
            }
        }
    }
}

/// The running lexicographic minimum of `(distance, id)`.
struct Best {
    dist: f64,
    id: u32,
}

impl Best {
    #[inline]
    fn consider(&mut self, dist: f64, id: u32) {
        if dist < self.dist || (dist == self.dist && id < self.id) {
            self.dist = dist;
            self.id = id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic generator (splitmix64) so the tests need no
    /// RNG dependency.
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Clustered cloud: points snap to a coarse grid so exact distance
    /// ties (and duplicates) actually occur.
    fn cloud(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Mix(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| (rng.unit() * 8.0).floor() * 0.5).collect())
            .collect()
    }

    fn diff_against_linear(points: &[Vec<f64>], queries: &[Vec<f64>]) {
        let tree = VpTree::build(points, |_| true);
        for q in queries {
            assert_eq!(
                tree.nearest(q),
                tree.nearest_linear(q),
                "tree and linear scan disagree for query {q:?}"
            );
        }
    }

    #[test]
    fn matches_linear_scan_with_ties_and_duplicates() {
        for (n, dim, seed) in [(1, 3, 1), (2, 1, 2), (40, 2, 3), (300, 4, 4), (500, 8, 5)] {
            let points = cloud(n, dim, seed);
            let queries = cloud(60, dim, seed ^ 0xffff);
            diff_against_linear(&points, &queries);
            // Indexed points query to themselves (distance zero; lowest
            // duplicate id wins in both implementations).
            diff_against_linear(&points, &points[..n.min(50)]);
        }
    }

    #[test]
    fn exclusion_mask_is_honored() {
        let points = cloud(100, 3, 9);
        let tree = VpTree::build(&points, |i| i % 3 != 0);
        assert_eq!(
            tree.len(),
            points
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 != 0)
                .count()
        );
        let queries = cloud(40, 3, 10);
        for q in &queries {
            let got = tree.nearest(q).unwrap();
            assert_ne!(got % 3, 0, "excluded point {got} returned");
            assert_eq!(Some(got), tree.nearest_linear(q));
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = VpTree::build(&[], |_| true);
        assert!(empty.is_empty());
        assert_eq!(empty.nearest(&[]), None);

        let all_excluded = VpTree::build(&cloud(10, 2, 11), |_| false);
        assert!(all_excluded.is_empty());

        // All points identical: every query resolves to id 0.
        let same = vec![vec![1.0, 2.0]; 64];
        let tree = VpTree::build(&same, |_| true);
        assert_eq!(tree.nearest(&[0.0, 0.0]), Some(0));
        assert_eq!(tree.nearest(&[1.0, 2.0]), Some(0));
    }

    #[test]
    fn construction_is_deterministic() {
        let points = cloud(200, 4, 12);
        let a = VpTree::build(&points, |_| true);
        let b = VpTree::build(&points, |_| true);
        assert_eq!(a.items, b.items);
        assert_eq!(a.nodes.len(), b.nodes.len());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<VpTree>();
    }
}
