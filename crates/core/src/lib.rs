//! FIS-ONE: floor identification with one labeled sample.
//!
//! This crate assembles the full pipeline of the paper (Figure 2):
//!
//! 1. **Graph construction** — crowdsourced samples become a weighted
//!    bipartite graph (`fis-graph`).
//! 2. **RF-GNN** — attention-based representation learning (`fis-gnn`).
//! 3. **Signal clustering** — average-linkage hierarchical clustering of
//!    the sample embeddings into as many clusters as floors
//!    (`fis-cluster`, §IV-A).
//! 4. **Cluster indexing** — the signal-spillover similarity between
//!    clusters ([`similarity`], §IV-B eqs. 1–3) feeds a shortest
//!    Hamiltonian path problem ([`indexing`], Theorem 1) anchored at the
//!    cluster holding the single labeled sample.
//!
//! The §VI extension for an anchor on an arbitrary floor lives in
//! [`extension`] — alongside the *online* extension machinery behind
//! [`model::FittedModel::extend`] — and [`evaluate`] scores predictions
//! with ARI / NMI / Jaro–Winkler edit distance against ground truth.
//!
//! # Batch execution
//!
//! [`engine::FisEngine`] runs the pipeline over a whole corpus with
//! buildings dispatched concurrently across a configurable thread budget
//! (`FIS_THREADS`, [`fis_parallel::set_thread_budget`], or
//! [`engine::EngineConfig::threads`]). The workspace-wide determinism
//! contract applies: the tape is `Send + Sync`, every parallel kernel
//! partitions independent outputs without reassociating floating-point
//! reductions, and every building owns its seeded RNG — so a fixed seed
//! yields bit-identical predictions for 1 or N threads.
//!
//! # Serving
//!
//! [`model::FittedModel`] is the fit-once / serve-forever artifact:
//! [`FisOne::fit`] (or [`engine::FisEngine::fit_corpus`]) captures the
//! trained encoder, MAC vocabulary, centroids, and floor ordering into a
//! single JSON document, and [`model::FittedModel::assign`] labels new
//! scans without refitting.
//!
//! # Example
//!
//! ```no_run
//! use fis_core::{FisOne, FisOneConfig};
//! # fn building() -> fis_types::Building { unimplemented!() }
//!
//! let building = building();
//! let anchor = building.bottom_anchor().expect("bottom floor sampled");
//! let prediction = FisOne::new(FisOneConfig::default())
//!     .identify(building.samples(), building.floors(), anchor)?;
//! println!("first sample is on {}", prediction.labels()[0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod engine;
pub mod error;
pub mod evaluate;
pub mod extension;
pub mod indexing;
pub mod model;
pub mod nn;
pub mod pipeline;
pub mod similarity;

pub use engine::{
    BuildingFit, BuildingOutcome, BuildingRun, CorpusFit, CorpusRun, EngineConfig, FisEngine,
};
pub use error::FisError;
pub use evaluate::{evaluate_building, EvalResult};
pub use extension::{identify_with_arbitrary_anchor, ArbitraryAnchorOutcome, ExtensionReport};
pub use indexing::{index_clusters, ClusterIndexing, TspSolver};
pub use model::{
    FittedModel, Precision, MODEL_SCHEMA, MODEL_SCHEMA_VERSION, MODEL_SCHEMA_VERSION_EXTENDED,
    MODEL_SCHEMA_VERSION_F32,
};
pub use nn::VpTree;
pub use pipeline::{ClusteringMethod, FisOne, FisOneConfig, FloorPrediction};
pub use similarity::{ClusterMacProfile, SimilarityMethod};
