//! Cluster indexing via shortest Hamiltonian paths (§IV-B, Theorem 1).
//!
//! Given pairwise cluster similarities, build the complete graph with edge
//! weights `w_ij = 1 − Jⁿ_ij` and find the minimum-cost Hamiltonian path
//! starting at the cluster that holds the labeled sample. The visiting
//! order indexes the clusters with floor numbers.

use fis_tsp::{held_karp_fixed_start, two_opt_fixed_start, CostMatrix, PathSolution};

use crate::error::FisError;

/// Which Hamiltonian-path solver to use (Figure 9(c,d) ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TspSolver {
    /// Held–Karp exact dynamic programming, `O(N² 2^N)` (default; the
    /// paper's building heights never exceed 10 floors).
    #[default]
    Exact,
    /// Nearest-neighbor + 2-opt/or-opt local search.
    TwoOpt,
}

/// Result of indexing `k` clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterIndexing {
    /// `floor_of_cluster[c]` = zero-based floor index assigned to cluster `c`.
    pub floor_of_cluster: Vec<usize>,
    /// Visiting order: `order[p]` = cluster placed at path position `p`.
    pub order: Vec<usize>,
    /// Total path cost `Σ (1 − Jⁿ)` along the order.
    pub cost: f64,
}

/// Indexes clusters by solving the shortest Hamiltonian path from
/// `start_cluster` on the `1 − similarity` graph.
///
/// `similarity` must be a `k x k` symmetric matrix with entries in
/// `[0, 1]`. Position `p` along the optimal path receives floor index `p`
/// (the start cluster is the bottom floor).
///
/// # Errors
///
/// Returns [`FisError::Indexing`] if the matrix is malformed, the start is
/// out of bounds, or the solver fails.
pub fn index_clusters(
    similarity: &[Vec<f64>],
    start_cluster: usize,
    solver: TspSolver,
) -> Result<ClusterIndexing, FisError> {
    let solution = solve_path(similarity, start_cluster, solver)?;
    let k = similarity.len();
    let mut floor_of_cluster = vec![0usize; k];
    for (pos, &cluster) in solution.order.iter().enumerate() {
        floor_of_cluster[cluster] = pos;
    }
    Ok(ClusterIndexing {
        floor_of_cluster,
        order: solution.order,
        cost: solution.cost,
    })
}

/// Solves the Hamiltonian path for a given start without converting to
/// floor indices (used by the §VI all-starts extension).
///
/// # Errors
///
/// Returns [`FisError::Indexing`] under the same conditions as
/// [`index_clusters`].
pub fn solve_path(
    similarity: &[Vec<f64>],
    start_cluster: usize,
    solver: TspSolver,
) -> Result<PathSolution, FisError> {
    let cost = cost_matrix(similarity)?;
    let sol = match solver {
        TspSolver::Exact => held_karp_fixed_start(&cost, start_cluster),
        TspSolver::TwoOpt => two_opt_fixed_start(&cost, start_cluster),
    }
    .map_err(FisError::Indexing)?;
    Ok(sol)
}

/// Builds the validated `1 − similarity` cost matrix.
///
/// # Errors
///
/// Returns [`FisError::Indexing`] if the matrix is empty, ragged, or has
/// entries outside `[0, 1]`.
pub fn cost_matrix(similarity: &[Vec<f64>]) -> Result<CostMatrix, FisError> {
    let k = similarity.len();
    if k == 0 {
        return Err(FisError::Indexing("no clusters to index".to_owned()));
    }
    for (i, row) in similarity.iter().enumerate() {
        if row.len() != k {
            return Err(FisError::Indexing(format!(
                "similarity row {i} has length {} != {k}",
                row.len()
            )));
        }
        for (j, &s) in row.iter().enumerate() {
            if !s.is_finite() || !(0.0..=1.0).contains(&s) {
                return Err(FisError::Indexing(format!(
                    "similarity ({i},{j}) = {s} outside [0, 1]"
                )));
            }
        }
    }
    CostMatrix::from_fn(k, |i, j| if i == j { 0.0 } else { 1.0 - similarity[i][j] })
        .map_err(FisError::Indexing)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Similarity of a 4-floor chain: adjacent clusters similar.
    fn chain_similarity() -> Vec<Vec<f64>> {
        let decay = |d: usize| match d {
            0 => 1.0,
            1 => 0.6,
            2 => 0.2,
            _ => 0.05,
        };
        (0..4)
            .map(|i: usize| (0..4).map(|j: usize| decay(i.abs_diff(j))).collect())
            .collect()
    }

    #[test]
    fn chain_recovered_from_bottom() {
        let idx = index_clusters(&chain_similarity(), 0, TspSolver::Exact).unwrap();
        assert_eq!(idx.order, vec![0, 1, 2, 3]);
        assert_eq!(idx.floor_of_cluster, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chain_recovered_with_two_opt() {
        let idx = index_clusters(&chain_similarity(), 0, TspSolver::TwoOpt).unwrap();
        assert_eq!(idx.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn permuted_clusters_still_ordered() {
        // Clusters labeled in scrambled order: cluster 2 is the bottom
        // floor, then 0, 3, 1.
        let true_pos = [1usize, 3, 0, 2]; // cluster c sits at physical level true_pos[c]
        let decay = |d: usize| 1.0 / (1.0 + d as f64 * 2.0);
        let sim: Vec<Vec<f64>> = (0..4)
            .map(|i: usize| {
                (0..4)
                    .map(|j: usize| {
                        if i == j {
                            1.0
                        } else {
                            decay(true_pos[i].abs_diff(true_pos[j]))
                        }
                    })
                    .collect()
            })
            .collect();
        let idx = index_clusters(&sim, 2, TspSolver::Exact).unwrap();
        assert_eq!(idx.order, vec![2, 0, 3, 1]);
        // floor_of_cluster inverts the order.
        assert_eq!(idx.floor_of_cluster, vec![1, 3, 0, 2]);
    }

    #[test]
    fn single_cluster_trivial() {
        let idx = index_clusters(&[vec![1.0]], 0, TspSolver::Exact).unwrap();
        assert_eq!(idx.order, vec![0]);
        assert_eq!(idx.floor_of_cluster, vec![0]);
        assert_eq!(idx.cost, 0.0);
    }

    #[test]
    fn rejects_malformed_similarity() {
        assert!(index_clusters(&[], 0, TspSolver::Exact).is_err());
        assert!(index_clusters(&[vec![1.0, 0.5]], 0, TspSolver::Exact).is_err());
        assert!(index_clusters(&[vec![1.0, 2.0], vec![2.0, 1.0]], 0, TspSolver::Exact).is_err());
        assert!(index_clusters(&chain_similarity(), 9, TspSolver::Exact).is_err());
    }

    #[test]
    fn exact_cost_never_exceeds_two_opt() {
        let sim = chain_similarity();
        let exact = index_clusters(&sim, 0, TspSolver::Exact).unwrap();
        let approx = index_clusters(&sim, 0, TspSolver::TwoOpt).unwrap();
        assert!(exact.cost <= approx.cost + 1e-9);
    }
}
