//! The end-to-end FIS-ONE pipeline (Figure 2).

use fis_cluster::{average_linkage, kmeans, KMeansConfig};
use fis_gnn::{RfGnn, RfGnnConfig};
use fis_graph::BipartiteGraph;
use fis_linalg::Matrix;
use fis_obs::{self as obs, Level};
use fis_types::{FloorId, LabeledAnchor, SignalSample};

use crate::error::FisError;
use crate::indexing::{index_clusters, TspSolver};
use crate::similarity::{similarity_matrix, ClusterMacProfile, SimilarityMethod};

/// Which clustering algorithm groups the embeddings (Figure 8(c,d)
/// ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusteringMethod {
    /// Average-linkage agglomerative clustering (the paper's choice).
    #[default]
    Hierarchical,
    /// K-means with k-means++ initialization.
    KMeans,
}

/// Configuration of the full pipeline.
///
/// The default reproduces the paper's headline system: RF-GNN with
/// attention, hierarchical clustering, adapted Jaccard similarity, exact
/// Held–Karp indexing.
#[derive(Debug, Clone, PartialEq)]
pub struct FisOneConfig {
    /// RF-GNN hyperparameters.
    pub gnn: RfGnnConfig,
    /// Clustering algorithm.
    pub clustering: ClusteringMethod,
    /// Cluster-similarity measure.
    pub similarity: SimilarityMethod,
    /// Hamiltonian-path solver.
    pub solver: TspSolver,
}

impl Default for FisOneConfig {
    fn default() -> Self {
        Self {
            gnn: RfGnnConfig::new(16),
            clustering: ClusteringMethod::Hierarchical,
            similarity: SimilarityMethod::AdaptedJaccard,
            solver: TspSolver::Exact,
        }
    }
}

impl FisOneConfig {
    /// Sets the RNG seed on the embedded GNN config.
    pub fn seed(mut self, seed: u64) -> Self {
        self.gnn.seed = seed;
        self
    }

    /// A deliberately tiny training budget (dim 8, 2 epochs, 2 walks per
    /// node, neighbor fan-out [5, 3]) for tests, examples, and smoke
    /// runs: fits a small synthetic building in tens of milliseconds
    /// while exercising every pipeline stage. Not meant for accuracy.
    pub fn quick(seed: u64) -> Self {
        let mut config = Self::default().seed(seed);
        config.gnn = RfGnnConfig::new(8)
            .epochs(2)
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3])
            .seed(seed);
        config
    }
}

/// The floor identification system with one label.
///
/// See the crate docs for the pipeline stages; [`FisOne::identify`] runs
/// all of them.
#[derive(Debug, Clone, Default)]
pub struct FisOne {
    config: FisOneConfig,
}

/// Output of [`FisOne::identify`]: a floor label for every input sample
/// plus the intermediate clustering/indexing artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorPrediction {
    labels: Vec<FloorId>,
    assignment: Vec<usize>,
    order: Vec<usize>,
    floor_of_cluster: Vec<usize>,
}

impl FloorPrediction {
    pub(crate) fn new(
        assignment: Vec<usize>,
        order: Vec<usize>,
        floor_of_cluster: Vec<usize>,
    ) -> Self {
        let labels = assignment
            .iter()
            .map(|&c| FloorId::from_index(floor_of_cluster[c]))
            .collect();
        Self {
            labels,
            assignment,
            order,
            floor_of_cluster,
        }
    }

    /// Predicted floor for every sample, in sample-id order.
    pub fn labels(&self) -> &[FloorId] {
        &self.labels
    }

    /// Cluster id assigned to every sample.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Clusters in visiting order along the optimal path (bottom floor
    /// first).
    pub fn cluster_order(&self) -> &[usize] {
        &self.order
    }

    /// Zero-based floor index assigned to each cluster.
    pub fn floor_of_cluster(&self) -> &[usize] {
        &self.floor_of_cluster
    }
}

impl FisOne {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: FisOneConfig) -> Self {
        Self { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &FisOneConfig {
        &self.config
    }

    /// Runs the full pipeline: graph → RF-GNN → clustering → indexing.
    ///
    /// `anchor` must label a sample on the **bottom or top floor** (the
    /// paper's core setting); use
    /// [`crate::extension::identify_with_arbitrary_anchor`] for anchors on
    /// other floors.
    ///
    /// # Errors
    ///
    /// Returns a [`FisError`] if any stage fails or the anchor is
    /// inconsistent with the inputs.
    pub fn identify(
        &self,
        samples: &[SignalSample],
        floors: usize,
        anchor: LabeledAnchor,
    ) -> Result<FloorPrediction, FisError> {
        let mut span = obs::span(Level::Info, "pipeline", "identify");
        span.num("samples", samples.len() as f64)
            .num("floors", floors as f64);
        self.validate_anchor(samples, floors, anchor)?;
        self.validate_endpoint_anchor(floors, anchor)?;
        let (assignment, _embeddings) = self.cluster_samples(samples, floors)?;
        self.index_assignment(samples, &assignment, floors, anchor)
    }

    /// Pipeline stages 1–3: builds the graph, trains RF-GNN, embeds the
    /// samples, and clusters the embeddings into `floors` clusters.
    ///
    /// Exposed separately so experiments can reuse embeddings across
    /// ablations.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Graph`], [`FisError::Training`], or
    /// [`FisError::Clustering`].
    pub fn cluster_samples(
        &self,
        samples: &[SignalSample],
        floors: usize,
    ) -> Result<(Vec<usize>, Matrix), FisError> {
        let embeddings = self.embed(samples)?;
        let assignment = self.cluster_embeddings(&embeddings, floors)?;
        Ok((assignment, embeddings))
    }

    /// Stages 1–2 only: graph construction and RF-GNN embedding.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Graph`] or [`FisError::Training`].
    pub fn embed(&self, samples: &[SignalSample]) -> Result<Matrix, FisError> {
        let (graph, model) = self.train_model(samples)?;
        let _span = obs::span(Level::Debug, "pipeline", "embed");
        Ok(model.embed_samples(&graph))
    }

    /// Builds the bipartite graph and trains the RF-GNN, returning both so
    /// callers (e.g. [`FisOne::fit`]) can keep the trained encoder instead
    /// of only its embeddings.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Graph`] or [`FisError::Training`].
    pub fn train_model(
        &self,
        samples: &[SignalSample],
    ) -> Result<(BipartiteGraph, RfGnn), FisError> {
        let graph = {
            let mut span = obs::span(Level::Debug, "pipeline", "graph_build");
            span.num("samples", samples.len() as f64);
            let graph = BipartiteGraph::from_samples(samples)
                .map_err(|e| FisError::Graph(e.to_string()))?;
            span.num("macs", graph.macs().len() as f64);
            graph
        };
        let model = {
            let mut span = obs::span(Level::Debug, "pipeline", "gnn_train");
            span.num("epochs", self.config.gnn.epochs as f64);
            RfGnn::train(&graph, &self.config.gnn).map_err(FisError::Training)?
        };
        Ok((graph, model))
    }

    /// Stage 3 only: clusters embedding rows into `k` clusters with the
    /// configured algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Clustering`] if the clusterer fails or produces
    /// fewer than `k` non-empty clusters.
    pub fn cluster_embeddings(
        &self,
        embeddings: &Matrix,
        k: usize,
    ) -> Result<Vec<usize>, FisError> {
        let mut span = obs::span(Level::Debug, "pipeline", "cluster");
        span.num("rows", embeddings.rows() as f64)
            .num("k", k as f64);
        let points: Vec<Vec<f64>> = (0..embeddings.rows())
            .map(|r| embeddings.row(r).to_vec())
            .collect();
        let assignment = match self.config.clustering {
            ClusteringMethod::Hierarchical => {
                average_linkage(&points, k).map_err(FisError::Clustering)?
            }
            ClusteringMethod::KMeans => {
                kmeans(&points, &KMeansConfig::new(k).seed(self.config.gnn.seed))
                    .map_err(FisError::Clustering)?
            }
        };
        // Count distinct non-empty clusters: `max + 1` would accept
        // assignments with empty *middle* clusters (e.g. labels {0, 2}
        // for k = 3), which the indexing stage cannot handle.
        let mut seen = assignment.clone();
        seen.sort_unstable();
        seen.dedup();
        let found = seen.len();
        if found != k || seen.last() != Some(&(k - 1)) {
            return Err(FisError::Clustering(format!(
                "clustering produced {found} non-empty clusters \
                 (labels 0..={}), expected exactly {k}",
                seen.last().copied().unwrap_or(0)
            )));
        }
        Ok(assignment)
    }

    /// Stage 4: indexes an existing cluster assignment with floor numbers
    /// using spillover similarity and the TSP reduction.
    ///
    /// This is also the adapter the paper applies to the baseline
    /// algorithms ("once we have the clusters generated by the baselines,
    /// we use our cluster indexing method", §V-A).
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Anchor`] or [`FisError::Indexing`].
    pub fn index_assignment(
        &self,
        samples: &[SignalSample],
        assignment: &[usize],
        floors: usize,
        anchor: LabeledAnchor,
    ) -> Result<FloorPrediction, FisError> {
        let mut span = obs::span(Level::Debug, "pipeline", "floor_order");
        span.num("floors", floors as f64);
        self.validate_anchor(samples, floors, anchor)?;
        if assignment.len() != samples.len() {
            return Err(FisError::Indexing(format!(
                "assignment length {} != sample count {}",
                assignment.len(),
                samples.len()
            )));
        }
        let profiles = ClusterMacProfile::from_assignment(samples, assignment, floors);
        let sim = similarity_matrix(self.config.similarity, &profiles);
        let start = assignment[anchor.sample.index()];
        let indexing = index_clusters(&sim, start, self.config.solver)?;

        // Orient: the anchor cluster sits at path position 0. A bottom
        // anchor reads positions bottom-up; a top anchor reads them
        // top-down.
        let floor_of_cluster: Vec<usize> = if anchor.floor == FloorId::BOTTOM {
            indexing.floor_of_cluster.clone()
        } else if anchor.floor.index() == floors - 1 {
            indexing
                .floor_of_cluster
                .iter()
                .map(|&p| floors - 1 - p)
                .collect()
        } else {
            return Err(FisError::Anchor(format!(
                "index_assignment requires a bottom or top anchor, got {}",
                anchor.floor
            )));
        };
        Ok(FloorPrediction::new(
            assignment.to_vec(),
            indexing.order,
            floor_of_cluster,
        ))
    }

    /// Rejects anchors that are neither on the bottom nor the top floor —
    /// the gate shared by [`FisOne::identify`] and [`FisOne::fit`], so
    /// both report the identical error.
    pub(crate) fn validate_endpoint_anchor(
        &self,
        floors: usize,
        anchor: LabeledAnchor,
    ) -> Result<(), FisError> {
        if anchor.floor != FloorId::BOTTOM && anchor.floor.index() != floors - 1 {
            return Err(FisError::Anchor(format!(
                "anchor on {} is neither bottom nor top of {floors} floors; \
                 use identify_with_arbitrary_anchor",
                anchor.floor
            )));
        }
        Ok(())
    }

    pub(crate) fn validate_anchor(
        &self,
        samples: &[SignalSample],
        floors: usize,
        anchor: LabeledAnchor,
    ) -> Result<(), FisError> {
        if floors == 0 {
            return Err(FisError::Anchor("building has zero floors".to_owned()));
        }
        if samples.len() < floors {
            return Err(FisError::Clustering(format!(
                "{} samples cannot form {floors} clusters",
                samples.len()
            )));
        }
        if anchor.sample.index() >= samples.len() {
            return Err(FisError::Anchor(format!(
                "anchor sample {} out of bounds ({} samples)",
                anchor.sample,
                samples.len()
            )));
        }
        if anchor.floor.index() >= floors {
            return Err(FisError::Anchor(format!(
                "anchor floor {} exceeds {floors} floors",
                anchor.floor
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_synth::BuildingConfig;
    use fis_types::SampleId;

    fn quick_pipeline(seed: u64) -> FisOne {
        let mut config = FisOneConfig::default().seed(seed);
        config.gnn = RfGnnConfig::new(16)
            .epochs(10)
            .walks_per_node(4)
            .neighbor_samples(vec![8, 4])
            .seed(seed);
        FisOne::new(config)
    }

    fn easy_building(floors: usize, seed: u64) -> fis_types::Building {
        BuildingConfig::new("test", floors)
            .samples_per_floor(40)
            .aps_per_floor(10)
            .atrium_aps(0)
            .seed(seed)
            .generate()
    }

    #[test]
    fn identify_recovers_floors_on_easy_building() {
        let b = easy_building(3, 11);
        let anchor = b.bottom_anchor().unwrap();
        let pred = quick_pipeline(1)
            .identify(b.samples(), b.floors(), anchor)
            .unwrap();
        // Accuracy should be far above chance (1/3).
        let correct = pred
            .labels()
            .iter()
            .zip(b.ground_truth())
            .filter(|(p, t)| p == t)
            .count();
        let acc = correct as f64 / b.len() as f64;
        assert!(acc > 0.7, "accuracy {acc}");
        // The anchor itself must be on the bottom floor.
        assert_eq!(pred.labels()[anchor.sample.index()], FloorId::BOTTOM);
    }

    #[test]
    fn top_anchor_reverses_orientation() {
        let b = easy_building(3, 12);
        let top = FloorId::from_index(2);
        let anchor = b.anchor_on(top).unwrap();
        let pred = quick_pipeline(2)
            .identify(b.samples(), b.floors(), anchor)
            .unwrap();
        assert_eq!(pred.labels()[anchor.sample.index()], top);
    }

    #[test]
    fn middle_anchor_rejected_by_core_identify() {
        let b = easy_building(3, 13);
        let anchor = b.anchor_on(FloorId::from_index(1)).unwrap();
        let err = quick_pipeline(3)
            .identify(b.samples(), b.floors(), anchor)
            .unwrap_err();
        assert!(matches!(err, FisError::Anchor(_)));
    }

    #[test]
    fn anchor_out_of_bounds_rejected() {
        let b = easy_building(3, 14);
        let bogus = LabeledAnchor {
            sample: SampleId(99_999),
            floor: FloorId::BOTTOM,
        };
        let err = quick_pipeline(4)
            .identify(b.samples(), b.floors(), bogus)
            .unwrap_err();
        assert!(matches!(err, FisError::Anchor(_)));
    }

    #[test]
    fn too_few_samples_rejected() {
        let b = easy_building(3, 15);
        let anchor = b.bottom_anchor().unwrap();
        let err = quick_pipeline(5)
            .identify(&b.samples()[..2], 3, anchor)
            .unwrap_err();
        assert!(matches!(err, FisError::Clustering(_)));
    }

    #[test]
    fn index_assignment_with_oracle_clusters_is_near_perfect() {
        // Bypass learning: give the indexer the ground-truth clustering and
        // check that spillover alone orders the floors.
        let b = easy_building(5, 16);
        let truth: Vec<usize> = b.ground_truth().iter().map(|f| f.index()).collect();
        let anchor = b.bottom_anchor().unwrap();
        let pred = quick_pipeline(6)
            .index_assignment(b.samples(), &truth, b.floors(), anchor)
            .unwrap();
        // With oracle clusters the ordering must be exactly 0..floors.
        assert_eq!(pred.floor_of_cluster(), &[0, 1, 2, 3, 4]);
        assert_eq!(
            pred.labels(),
            b.ground_truth(),
            "oracle clustering + spillover indexing must recover all labels"
        );
    }

    #[test]
    fn kmeans_variant_runs() {
        let b = easy_building(3, 17);
        let anchor = b.bottom_anchor().unwrap();
        let mut pipeline = quick_pipeline(7);
        pipeline.config.clustering = ClusteringMethod::KMeans;
        let pred = pipeline.identify(b.samples(), b.floors(), anchor).unwrap();
        assert_eq!(pred.labels().len(), b.len());
    }

    #[test]
    fn plain_jaccard_and_two_opt_variants_run() {
        let b = easy_building(3, 18);
        let anchor = b.bottom_anchor().unwrap();
        let mut pipeline = quick_pipeline(8);
        pipeline.config.similarity = SimilarityMethod::PlainJaccard;
        pipeline.config.solver = TspSolver::TwoOpt;
        let pred = pipeline.identify(b.samples(), b.floors(), anchor).unwrap();
        assert_eq!(pred.labels().len(), b.len());
    }

    #[test]
    fn prediction_accessors_consistent() {
        let b = easy_building(3, 19);
        let anchor = b.bottom_anchor().unwrap();
        let pred = quick_pipeline(9)
            .identify(b.samples(), b.floors(), anchor)
            .unwrap();
        // order and floor_of_cluster are inverse permutations.
        for (pos, &cluster) in pred.cluster_order().iter().enumerate() {
            assert_eq!(pred.floor_of_cluster()[cluster], pos);
        }
        // labels follow assignment through floor_of_cluster.
        for (i, &c) in pred.assignment().iter().enumerate() {
            assert_eq!(
                pred.labels()[i],
                FloorId::from_index(pred.floor_of_cluster()[c])
            );
        }
    }
}
