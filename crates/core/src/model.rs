//! Fitted-model artifact and streaming inference.
//!
//! [`FisOne::identify`] refits a whole building from scratch on every
//! call, yet the paper's stated reason for an *inductive* RF-GNN is that
//! crowdsourced signals keep arriving. This module closes that gap with a
//! fit-once / serve-forever path:
//!
//! 1. [`FisOne::fit`] runs the full pipeline once and captures everything
//!    inference needs into a [`FittedModel`]: the trained GNN encoder, the
//!    MAC vocabulary and training scans (which rebuild the bipartite
//!    graph), per-cluster centroids in the *inference* embedding space,
//!    and the cluster → floor ordering from indexing.
//! 2. [`FittedModel::save`] / [`FittedModel::load`] persist the whole
//!    model as one JSON artifact via `fis_types::json`. The codec writes
//!    `f64` with shortest-round-trip precision and sorted object keys, so
//!    save → load → save is **byte-identical**.
//! 3. [`FittedModel::assign`] labels a new scan without refitting: it
//!    attaches the scan to the MAC nodes it heard, embeds it with the
//!    tape-free [`fis_gnn::RfGnn::infer_scan`] pass, and returns the
//!    cluster of the nearest *reference* embedding (the training scans'
//!    own inference embeddings, stored in the artifact).
//!    [`FittedModel::assign_by_centroid`] is the O(floors) nearest-centroid
//!    approximation of the same decision.
//!    [`FittedModel::assign_stream`] fans a batch out over
//!    [`fis_parallel`].
//!
//! # Determinism contract
//!
//! Each scan's inference RNG is seeded from the model seed and the scan's
//! *content* alone, so an assignment depends only on `(model, scan)` —
//! never on batch order, batch size, or thread count. The reference
//! embeddings and centroids are computed through the *same* content-seeded
//! inference path at fit time, so a training scan re-embeds **bit-identically**
//! to its stored reference (distance exactly zero). That is what makes
//! `fit` + `assign` reproduce `identify`'s labels exactly on the training
//! corpus — a guarantee nearest-centroid alone cannot give on cluster-boundary
//! scans — and it is locked by `tests/golden_fixtures.rs`.
//!
//! # Artifact schema (version 1)
//!
//! One JSON object with sorted keys:
//!
//! ```json
//! {
//!   "schema": "fis-one/fitted-model", "version": 1,
//!   "building": "hq", "floors": 4,
//!   "config": {"clustering": "...", "similarity": "...", "solver": "..."},
//!   "gnn": {"config": {...}, "features": {...}, "weights": [...]},
//!   "macs": ["aa:bb:cc:dd:ee:01", ...],
//!   "samples": [{"id": 0, "readings": [...]}, ...],
//!   "references": [[...], ...],
//!   "centroids": [[...], ...],
//!   "floor_of_cluster": [...], "cluster_order": [...],
//!   "assignment": [...]
//! }
//! ```
//!
//! # Artifact schema (version 2: online extension)
//!
//! [`FittedModel::extend`] grows a model with freshly served scans
//! without refitting. An extended model serializes as version `2`: the
//! version-1 object plus one `extension` field:
//!
//! ```json
//! {
//!   "...": "all version-1 fields, unchanged",
//!   "version": 2,
//!   "extension": {
//!     "samples": [{"id": 120, "readings": [...]}, ...],
//!     "assignment": [...],
//!     "references": [[...], ...]
//!   }
//! }
//! ```
//!
//! `extension.samples` continue the base sample numbering,
//! `extension.assignment` records the self-assigned cluster per extension
//! scan, and `extension.references` holds the extended-space embeddings of
//! *every* reference scan (base + extension). Everything else about the
//! extended path rebuilds deterministically at load. Unextended models
//! keep writing version 1 **byte-identically**.
//!
//! # Artifact schema (version 3: opt-in f32 serving artifact)
//!
//! [`FittedModel::save_f32`] writes a *quantized* copy of the model
//! ([`FittedModel::quantize_f32`]): every embedding, encoder weight,
//! centroid, and RSS reading is rounded to the nearest `f32` **at save
//! time** and the artifact declares version `3`. The layout is the
//! version-1 object with three representation changes:
//!
//! - `gnn.features` / `gnn.weights` matrix data and the `references` /
//!   `centroids` rows print as shortest-round-trip **f32** decimals
//!   (~9 significant digits instead of ~17);
//! - `samples[].readings` compact each `[mac, rssi]` pair to
//!   `[mac_index, rssi]`, where `mac_index` points into the artifact's
//!   own `macs` vocabulary (the MAC string appears once instead of per
//!   reading);
//! - no `extension` field is allowed: extended models cannot be
//!   quantized, and [`FittedModel::extend`] rejects f32 models — the
//!   f64 artifact remains the single mutable lineage.
//!
//! Loaders recover every stored float **exactly** by narrowing the
//! re-parsed `f64` back to `f32` (`value as f32 as f64` — re-parsing a
//! shortest-f32 decimal as `f64` alone does *not* reproduce the f32
//! bits), so v3 save → load → save is byte-identical like v1/v2. The
//! f64 path is the determinism reference: golden fixtures pin v1 bytes
//! and are untouched by this format. Inference over a loaded v3 model
//! still runs in f64 arithmetic on the quantized values, keeps the same
//! content-seeded determinism contract in `(model, scan)`, and — locked
//! by `tests/f32_artifact.rs` — reproduces the f64 model's floor labels
//! on the training corpus while the artifact shrinks to well under 60%
//! of the f64 bytes.
//!
//! Compatibility policy: loaders accept exactly the schema versions they
//! know (currently `1`, `2`, and `3`) and reject anything else with a
//! typed [`FisError::Model`]; any change to the serialized geometry or
//! the content-seed derivation must bump [`MODEL_SCHEMA_VERSION`].

use std::collections::HashMap;
use std::path::Path;

use fis_gnn::RfGnn;
use fis_graph::BipartiteGraph;
use fis_linalg::Matrix;
use fis_obs::{self as obs, Level};
use fis_types::json::{FromJson, Json, ToJson};
use fis_types::{FloorId, LabeledAnchor, MacAddr, Rssi, SignalSample};

use crate::engine::BudgetGuard;
use crate::error::FisError;
use crate::extension::{build_extended_state, ExtendedState, ExtensionReport};
use crate::indexing::TspSolver;
use crate::nn::VpTree;
use crate::pipeline::{ClusteringMethod, FisOne, FisOneConfig};
use crate::similarity::SimilarityMethod;

/// Identifier of the fitted-model artifact format.
pub const MODEL_SCHEMA: &str = "fis-one/fitted-model";

/// Current artifact schema version; see the module docs for the policy.
pub const MODEL_SCHEMA_VERSION: usize = 1;

/// Schema version written for models that carry an online extension
/// (see [`FittedModel::extend`]): version 2 = version 1 plus an
/// `extension` object `{samples, assignment, references}`. Unextended
/// models keep writing version 1 byte-identically, so pre-extension
/// artifacts and tooling are unaffected.
pub const MODEL_SCHEMA_VERSION_EXTENDED: usize = 2;

/// Schema version written for quantized f32 serving artifacts
/// ([`FittedModel::save_f32`]): the version-1 layout with f32-precision
/// floats and vocabulary-indexed readings. See the [module docs](self).
pub const MODEL_SCHEMA_VERSION_F32: usize = 3;

/// Numeric precision of a model's stored parameters.
///
/// `F64` is the determinism reference every fit produces; `F32` marks a
/// model quantized by [`FittedModel::quantize_f32`] (or loaded from a
/// version-3 artifact), whose parameters are all exactly
/// `f32`-representable `f64` values and which serializes as version 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Full-precision parameters (artifact versions 1 and 2).
    F64,
    /// Parameters rounded to `f32` at quantization time (version 3).
    F32,
}

/// Everything needed to label new scans for one building without
/// refitting; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct FittedModel {
    building: String,
    floors: usize,
    config: FisOneConfig,
    gnn: RfGnn,
    macs: Vec<MacAddr>,
    samples: Vec<SignalSample>,
    /// Inference embeddings of the training scans (all-zero rows for
    /// scans that heard nothing); the 1-NN references of `assign`.
    references: Vec<Vec<f64>>,
    centroids: Vec<Vec<f64>>,
    floor_of_cluster: Vec<usize>,
    cluster_order: Vec<usize>,
    assignment: Vec<usize>,
    /// Rebuilt from `samples` at fit/load time; never serialized twice.
    graph: BipartiteGraph,
    /// O(1) MAC → interned index lookup for streaming scans.
    mac_index: HashMap<MacAddr, usize>,
    /// Exact 1-NN index over the non-placeholder `references`, rebuilt
    /// at fit/load time (like `graph`); bit-identical to the linear scan
    /// by the [`crate::nn`] exactness contract.
    nn: VpTree,
    /// Online-extension state ([`FittedModel::extend`]); `None` until the
    /// model is extended. The base fields above stay frozen either way —
    /// that freeze is what keeps old-vocabulary answers bit-identical.
    extension: Option<ExtendedState>,
    /// Parameter precision; `F32` models serialize as version 3 and
    /// refuse [`FittedModel::extend`].
    precision: Precision,
}

/// Whether `FIS_ASSIGN_LINEAR=1` forces [`FittedModel::assign`] onto the
/// reference linear scan (read once; a diagnostics escape hatch, not a
/// per-call switch).
fn force_linear_assign() -> bool {
    use std::sync::OnceLock;
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("FIS_ASSIGN_LINEAR").is_some_and(|v| v == "1"))
}

impl FisOne {
    /// Fits a model on a building's corpus: runs the full pipeline
    /// (graph → RF-GNN → clustering → indexing) once, then precomputes
    /// the reference embeddings and per-cluster centroids in the
    /// content-seeded inference embedding space so [`FittedModel::assign`]
    /// can label new scans without refitting (one 1-NN scan over the
    /// references per query; [`FittedModel::assign_by_centroid`] for the
    /// O(floors) variant).
    ///
    /// `anchor` must label a bottom- or top-floor sample, exactly like
    /// [`FisOne::identify`].
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`FisOne::identify`] for any pipeline
    /// stage failure.
    pub fn fit(
        &self,
        building: &str,
        samples: &[SignalSample],
        floors: usize,
        anchor: LabeledAnchor,
    ) -> Result<FittedModel, FisError> {
        let mut fit_span = obs::span(Level::Info, "pipeline", "fit");
        fit_span
            .str("building", building)
            .num("samples", samples.len() as f64)
            .num("floors", floors as f64);
        // Same up-front gating as `identify`: reject bad inputs before the
        // expensive training stages, with identical errors.
        self.validate_anchor(samples, floors, anchor)?;
        self.validate_endpoint_anchor(floors, anchor)?;
        let (graph, gnn) = self.train_model(samples)?;
        let embeddings = gnn.embed_samples(&graph);
        let assignment = self.cluster_embeddings(&embeddings, floors)?;
        let prediction = self.index_assignment(samples, &assignment, floors, anchor)?;

        let mac_index: HashMap<MacAddr, usize> = graph
            .macs()
            .iter()
            .enumerate()
            .map(|(j, &m)| (m, j))
            .collect();
        let seed = self.config().gnn.seed;
        // Re-embed every training scan through the exact inference path a
        // streaming scan will take (virtual node + content seed). One scan
        // per work item with its own RNG, so the centroids are
        // bit-identical for any thread count.
        let reference_span = obs::span(Level::Debug, "pipeline", "reference_embed");
        let inference: Vec<Option<Vec<f64>>> = fis_parallel::par_map(samples, 1, |_, scan| {
            let nbrs = known_neighbors(&graph, &mac_index, scan);
            if nbrs.is_empty() {
                return None;
            }
            gnn.infer_scan(&graph, &nbrs, scan_seed(seed, scan)).ok()
        });
        drop(reference_span);
        let dim = gnn.dim();
        let mut centroids = vec![vec![0.0; dim]; floors];
        let mut counts = vec![0usize; floors];
        let mut references = Vec::with_capacity(samples.len());
        for (i, emb) in inference.into_iter().enumerate() {
            match emb {
                Some(emb) => {
                    let c = assignment[i];
                    for (slot, x) in centroids[c].iter_mut().zip(&emb) {
                        *slot += x;
                    }
                    counts[c] += 1;
                    references.push(emb);
                }
                // A scan that heard nothing has no inference embedding;
                // an all-zero row keeps the reference list aligned and is
                // excluded from the 1-NN search (see `assign`).
                None => references.push(vec![0.0; dim]),
            }
        }
        for (centroid, &n) in centroids.iter_mut().zip(&counts) {
            if n > 0 {
                for x in centroid.iter_mut() {
                    *x /= n as f64;
                }
            }
        }

        let nn = {
            let _span = obs::span(Level::Debug, "pipeline", "vptree_build");
            VpTree::build(&references, |i| !samples[i].is_empty())
        };
        Ok(FittedModel {
            building: building.to_owned(),
            floors,
            config: self.config().clone(),
            gnn,
            macs: graph.macs().to_vec(),
            samples: samples.to_vec(),
            references,
            centroids,
            floor_of_cluster: prediction.floor_of_cluster().to_vec(),
            cluster_order: prediction.cluster_order().to_vec(),
            assignment,
            graph,
            mac_index,
            nn,
            extension: None,
            precision: Precision::F64,
        })
    }
}

impl FittedModel {
    /// The building this model was fitted on.
    pub fn building(&self) -> &str {
        &self.building
    }

    /// Number of floors (= clusters = centroids).
    pub fn floors(&self) -> usize {
        self.floors
    }

    /// The pipeline configuration the model was fitted with.
    pub fn config(&self) -> &FisOneConfig {
        &self.config
    }

    /// The trained RF-GNN encoder.
    pub fn gnn(&self) -> &RfGnn {
        &self.gnn
    }

    /// The MAC vocabulary in interned (first-seen) order.
    pub fn macs(&self) -> &[MacAddr] {
        &self.macs
    }

    /// The training scans the model was fitted on.
    pub fn samples(&self) -> &[SignalSample] {
        &self.samples
    }

    /// Inference embeddings of the training scans, in sample order.
    pub fn references(&self) -> &[Vec<f64>] {
        &self.references
    }

    /// Per-cluster centroids in the inference embedding space.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Zero-based floor index assigned to each cluster.
    pub fn floor_of_cluster(&self) -> &[usize] {
        &self.floor_of_cluster
    }

    /// Clusters in visiting order along the indexed path.
    pub fn cluster_order(&self) -> &[usize] {
        &self.cluster_order
    }

    /// Cluster id of every training scan.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Floor labels of the training scans, in sample order — the same
    /// labels [`FisOne::identify`] produced during fitting.
    pub fn training_labels(&self) -> Vec<FloorId> {
        self.assignment
            .iter()
            .map(|&c| FloorId::from_index(self.floor_of_cluster[c]))
            .collect()
    }

    /// The model's RNG seed (drives the content-seeded inference passes).
    pub fn seed(&self) -> u64 {
        self.config.gnn.seed
    }

    /// Parameter precision: `F64` for every fit result, `F32` after
    /// [`FittedModel::quantize_f32`] or a version-3 artifact load.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Returns a copy of the model with every stored parameter —
    /// encoder features and weights, reference embeddings, centroids,
    /// and training-scan RSS values — rounded to the nearest `f32`
    /// (held in `f64` slots, so all inference arithmetic stays `f64`).
    /// The derived state (bipartite graph, VP-tree) is rebuilt from the
    /// quantized values, exactly as a version-3 artifact load would.
    ///
    /// The copy serializes as schema version 3 at roughly half the f64
    /// artifact size; the original is untouched and remains the
    /// determinism reference. The quantized model keeps the full
    /// `(model, scan)` determinism contract — only the parameter values
    /// move, each by at most half an f32 ULP.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Model`] for extended models: the f32 format
    /// is a frozen serving artifact and carries no `extension`; quantize
    /// the base model, or keep serving the f64 artifact.
    pub fn quantize_f32(&self) -> Result<Self, FisError> {
        if self.extension.is_some() {
            return Err(FisError::Model(
                "extended models cannot be quantized to f32: the version-3 artifact is a \
                 frozen serving format; quantize the base model or serve the f64 artifact"
                    .into(),
            ));
        }
        let gnn = RfGnn::from_parts(
            self.gnn.config().clone(),
            narrow_matrix_f32(self.gnn.features()),
            self.gnn.weights().iter().map(narrow_matrix_f32).collect(),
        )
        .map_err(|e| FisError::Model(format!("quantizing the encoder: {e}")))?;
        let samples = self
            .samples
            .iter()
            .map(quantize_sample_f32)
            .collect::<Result<Vec<_>, _>>()?;
        // Quantization moves RSS values, never MACs, so the rebuilt graph
        // interns the identical vocabulary in the identical order.
        let graph = BipartiteGraph::from_samples(&samples)
            .map_err(|e| FisError::Model(format!("quantized scans do not rebuild a graph: {e}")))?;
        debug_assert_eq!(graph.macs(), self.macs.as_slice());
        let references = narrow_rows_f32(&self.references);
        let centroids = narrow_rows_f32(&self.centroids);
        let nn = VpTree::build(&references, |i| !samples[i].is_empty());
        Ok(Self {
            building: self.building.clone(),
            floors: self.floors,
            config: self.config.clone(),
            gnn,
            macs: self.macs.clone(),
            samples,
            references,
            centroids,
            floor_of_cluster: self.floor_of_cluster.clone(),
            cluster_order: self.cluster_order.clone(),
            assignment: self.assignment.clone(),
            graph,
            mac_index: self.mac_index.clone(),
            nn,
            extension: None,
            precision: Precision::F32,
        })
    }

    /// [`FittedModel::quantize_f32`] followed by [`FittedModel::save`]:
    /// writes the opt-in version-3 f32 serving artifact to `path`
    /// (atomically, like `save`). The model itself is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Model`] when the model is extended or on
    /// filesystem failure.
    pub fn save_f32(&self, path: impl AsRef<Path>) -> Result<(), FisError> {
        self.quantize_f32()?.save(path)
    }

    /// Labels one scan: embeds it through the inductive inference pass and
    /// returns the cluster of the nearest stored reference embedding
    /// (1-NN over the training scans), found through the [`VpTree`] index
    /// in ~O(log refs) distance computations. `FIS_ASSIGN_LINEAR=1` forces
    /// the [`FittedModel::assign_linear`] reference path instead; both
    /// produce bit-identical answers (locked by property tests and the
    /// golden fixtures).
    ///
    /// Deterministic in `(model, scan)` alone, and **exact** on the
    /// training corpus: a training scan re-embeds bit-identically to its
    /// stored reference (distance zero), so it always receives the label
    /// `identify` gave it at fit time — see the [module docs](self).
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Inference`] when the scan contains no MAC known
    /// to the model (nothing to attach to) or the embedding fails.
    pub fn assign(&self, scan: &SignalSample) -> Result<FloorId, FisError> {
        if force_linear_assign() {
            return self.assign_linear(scan);
        }
        if self.uses_extension(scan) {
            return self.assign_extended(scan);
        }
        let emb = self.infer_embedding(scan)?;
        let best = self.nn.nearest(&emb).ok_or_else(no_reference_error)?;
        Ok(FloorId::from_index(
            self.floor_of_cluster[self.assignment[best]],
        ))
    }

    /// Reference implementation of [`FittedModel::assign`]: the same
    /// decision by exhaustive O(refs × dim) linear scan. Kept as the
    /// ground truth the index is diffed against; prefer `assign`.
    ///
    /// # Errors
    ///
    /// See [`FittedModel::assign`].
    pub fn assign_linear(&self, scan: &SignalSample) -> Result<FloorId, FisError> {
        if self.uses_extension(scan) {
            return self.assign_extended_linear(scan);
        }
        let emb = self.infer_embedding(scan)?;
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (i, reference) in self.references.iter().enumerate() {
            // Empty training scans have no real embedding; their all-zero
            // placeholder rows are not valid neighbors.
            if self.samples[i].is_empty() {
                continue;
            }
            let d = fis_linalg::vec_ops::euclidean(&emb, reference);
            // Strict `<` keeps the lowest sample index on exact ties.
            if d < best_d {
                best = Some(i);
                best_d = d;
            }
        }
        let best = best.ok_or_else(no_reference_error)?;
        Ok(FloorId::from_index(
            self.floor_of_cluster[self.assignment[best]],
        ))
    }

    /// True when `scan` hears a MAC that only the extension vocabulary
    /// knows. Such scans take the extended path; every other scan —
    /// in particular every scan expressible over the *old* vocabulary —
    /// takes exactly the frozen base path, which is what makes extension
    /// answer-preserving (see [`FittedModel::extend`]).
    fn uses_extension(&self, scan: &SignalSample) -> bool {
        match &self.extension {
            Some(ext) => scan.iter().any(|(mac, _)| {
                !self.mac_index.contains_key(&mac) && ext.mac_index.contains_key(&mac)
            }),
            None => false,
        }
    }

    /// Cluster of reference scan `i` in unified (base + extension) order.
    fn cluster_of_reference(&self, i: usize) -> usize {
        if i < self.assignment.len() {
            self.assignment[i]
        } else {
            let ext = self.extension.as_ref().expect("extended reference index");
            ext.assignment[i - self.assignment.len()]
        }
    }

    /// Extended-path [`FittedModel::assign`]: 1-NN over every reference
    /// re-embedded in the extended space, via that space's VP-tree.
    fn assign_extended(&self, scan: &SignalSample) -> Result<FloorId, FisError> {
        let ext = self.extension.as_ref().expect("routed to extended path");
        let emb = self.infer_embedding_extended(ext, scan)?;
        let best = ext.nn.nearest(&emb).ok_or_else(no_reference_error)?;
        Ok(FloorId::from_index(
            self.floor_of_cluster[self.cluster_of_reference(best)],
        ))
    }

    /// Linear-scan reference implementation of the extended path (the
    /// `FIS_ASSIGN_LINEAR=1` / [`FittedModel::assign_linear`] twin).
    fn assign_extended_linear(&self, scan: &SignalSample) -> Result<FloorId, FisError> {
        let ext = self.extension.as_ref().expect("routed to extended path");
        let emb = self.infer_embedding_extended(ext, scan)?;
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (i, reference) in ext.references.iter().enumerate() {
            let empty = if i < self.samples.len() {
                self.samples[i].is_empty()
            } else {
                ext.samples[i - self.samples.len()].is_empty()
            };
            if empty {
                continue;
            }
            let d = fis_linalg::vec_ops::euclidean(&emb, reference);
            // Strict `<` keeps the lowest sample index on exact ties.
            if d < best_d {
                best = Some(i);
                best_d = d;
            }
        }
        let best = best.ok_or_else(no_reference_error)?;
        Ok(FloorId::from_index(
            self.floor_of_cluster[self.cluster_of_reference(best)],
        ))
    }

    /// Embeds one scan in the extended space (content-seeded, like the
    /// base path).
    fn infer_embedding_extended(
        &self,
        ext: &ExtendedState,
        scan: &SignalSample,
    ) -> Result<Vec<f64>, FisError> {
        let nbrs = known_neighbors(&ext.graph, &ext.mac_index, scan);
        if nbrs.is_empty() {
            return Err(FisError::Inference(format!(
                "scan {} heard {} MAC(s), none known to the model for {}",
                scan.id(),
                scan.len(),
                self.building
            )));
        }
        ext.gnn
            .infer_scan(&ext.graph, &nbrs, scan_seed(self.seed(), scan))
            .map_err(FisError::Inference)
    }

    /// The exact-1-NN index over the reference embeddings.
    pub fn nn_index(&self) -> &VpTree {
        &self.nn
    }

    /// Nearest-centroid variant of [`FittedModel::assign`]: O(floors)
    /// distance computations instead of O(samples). Same determinism
    /// contract, but on cluster-boundary scans it may disagree with the
    /// 1-NN decision (and therefore with `identify` on the training
    /// corpus); use it when serving latency matters more than exactness.
    ///
    /// # Errors
    ///
    /// See [`FittedModel::assign`].
    pub fn assign_by_centroid(&self, scan: &SignalSample) -> Result<FloorId, FisError> {
        let emb = self.infer_embedding(scan)?;
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let d = fis_linalg::vec_ops::euclidean(&emb, centroid);
            // Strict `<` keeps the lowest cluster id on exact ties.
            if d < best_d {
                best = c;
                best_d = d;
            }
        }
        Ok(FloorId::from_index(self.floor_of_cluster[best]))
    }

    /// Embeds one scan through the content-seeded inference pass.
    fn infer_embedding(&self, scan: &SignalSample) -> Result<Vec<f64>, FisError> {
        let nbrs = known_neighbors(&self.graph, &self.mac_index, scan);
        if nbrs.is_empty() {
            return Err(FisError::Inference(format!(
                "scan {} heard {} MAC(s), none known to the model for {}",
                scan.id(),
                scan.len(),
                self.building
            )));
        }
        self.gnn
            .infer_scan(&self.graph, &nbrs, scan_seed(self.seed(), scan))
            .map_err(FisError::Inference)
    }

    /// Labels a batch of scans, fanned out across `threads` workers
    /// (`0` = the global [`fis_parallel::thread_budget`]). One scan per
    /// work item with a content-seeded RNG, so the output is bit-identical
    /// for any thread count and in input order. Per-scan failures land in
    /// their slot; they never abort the batch.
    pub fn assign_stream(
        &self,
        scans: &[SignalSample],
        threads: usize,
    ) -> Vec<Result<FloorId, FisError>> {
        let _budget_guard = (threads != 0).then(|| BudgetGuard::set(threads));
        fis_parallel::par_map(scans, 1, |_, scan| self.assign(scan))
    }

    /// Extends the model online with freshly served scans — the answer to
    /// drift (AP churn, renovations) without a full refit: the scans are
    /// self-labeled with the model's *current* answers, appended as new
    /// reference points, and any MACs the base survey never heard grow the
    /// vocabulary. The trained encoder weights are untouched.
    ///
    /// **Answer-preservation invariant:** the base model is frozen and
    /// only scans hearing at least one *extension-only* MAC take the new
    /// extended path, so every scan over the old vocabulary answers
    /// **bit-identically** before and after this call (including error
    /// cases). Repeated extensions compose: each call re-derives the
    /// extended state from the base model plus all extension scans so far.
    ///
    /// Scans that share no MAC with the **base** vocabulary are skipped
    /// (counted in [`ExtensionReport::skipped`]): with no anchor into the
    /// trained feature space there is nothing sound to attach them to.
    ///
    /// Cost: O(total scans) content-seeded re-embeddings in the extended
    /// space (no encoder retraining). The 1-NN VP-trees for both paths are
    /// rebuilt.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Model`] when the model is an f32 quantized
    /// artifact (frozen by design), `scans` is empty, any scan heard
    /// nothing, or every scan lacks a base-vocabulary MAC; propagates
    /// [`FisError::Inference`] if labeling or re-embedding fails. On error
    /// the model is left exactly as it was.
    pub fn extend(&mut self, scans: &[SignalSample]) -> Result<ExtensionReport, FisError> {
        let mut span = obs::span(Level::Info, "pipeline", "extend");
        span.str("building", self.building.clone())
            .num("scans", scans.len() as f64);
        if self.precision == Precision::F32 {
            return Err(FisError::Model(
                "f32 serving artifacts are frozen and cannot be extended: \
                 extend the f64 model and re-quantize"
                    .into(),
            ));
        }
        if scans.is_empty() {
            return Err(FisError::Model("extension needs at least one scan".into()));
        }
        if let Some(empty) = scans.iter().find(|s| s.is_empty()) {
            return Err(FisError::Model(format!(
                "extension scan {} heard no MAC",
                empty.id()
            )));
        }
        let mut accepted: Vec<&SignalSample> = Vec::new();
        let mut skipped = 0usize;
        for scan in scans {
            if scan
                .iter()
                .any(|(mac, _)| self.mac_index.contains_key(&mac))
            {
                accepted.push(scan);
            } else {
                skipped += 1;
            }
        }
        if accepted.is_empty() {
            return Err(FisError::Model(
                "no extension scan shares a MAC with the base vocabulary".into(),
            ));
        }

        // Self-label with the model's *current* answers (pre-extension),
        // so the extension can never rewrite served history.
        let mut floor_counts = vec![0usize; self.floors];
        let mut new_assignment = Vec::with_capacity(accepted.len());
        for scan in &accepted {
            let floor = self.assign(scan)?;
            floor_counts[floor.index()] += 1;
            new_assignment.push(self.cluster_order[floor.index()]);
        }

        // Compose with any earlier extension: the state is always derived
        // from (base model, all extension scans so far).
        let (mut ext_samples, mut ext_assignment) = match &self.extension {
            Some(ext) => (ext.samples.clone(), ext.assignment.clone()),
            None => (Vec::new(), Vec::new()),
        };
        let next_id = (self.samples.len() + ext_samples.len()) as u32;
        for (k, scan) in accepted.iter().enumerate() {
            // Ids continue the unified numbering so the combined graph
            // rebuilds (dense ids are a `BipartiteGraph` invariant).
            ext_samples.push((*scan).clone().with_id(next_id + k as u32));
        }
        ext_assignment.extend(new_assignment);

        let state = build_extended_state(
            &self.samples,
            &self.macs,
            &self.gnn,
            self.seed(),
            ext_samples,
            ext_assignment,
            None,
        )?;
        let report = ExtensionReport {
            appended: accepted.len(),
            skipped,
            new_macs: state.n_new_macs,
            total_scans: self.samples.len() + state.samples.len(),
            total_macs: self.macs.len() + state.n_new_macs,
            floor_counts,
        };
        self.extension = Some(state);
        Ok(report)
    }

    /// Whether the model carries an online extension.
    pub fn is_extended(&self) -> bool {
        self.extension.is_some()
    }

    /// Number of extension scans appended by [`FittedModel::extend`]
    /// (0 when unextended).
    pub fn extension_len(&self) -> usize {
        self.extension.as_ref().map_or(0, |e| e.samples.len())
    }

    /// Total reference scans: base survey plus extension.
    pub fn total_scans(&self) -> usize {
        self.samples.len() + self.extension_len()
    }

    /// Total MAC vocabulary: base plus extension-grown.
    pub fn total_macs(&self) -> usize {
        self.macs.len() + self.extension.as_ref().map_or(0, |e| e.n_new_macs)
    }

    /// Serializes the whole model into one JSON artifact string (single
    /// line, no trailing newline).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a model from an artifact string and revalidates every
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Model`] describing the first problem.
    pub fn from_json_str(text: &str) -> Result<Self, FisError> {
        let json = Json::parse(text).map_err(|e| FisError::Model(e.to_string()))?;
        Self::from_json(&json)
    }

    /// Writes the artifact to `path` (the JSON line plus a trailing
    /// newline) **atomically**: the bytes go to a sibling temp file
    /// first and are renamed into place, so a reader — in particular
    /// the `fis-serve` registry, which hot-reloads on `(mtime, len)`
    /// change — can never observe a half-written artifact when a model
    /// is refitted over a live serving directory.
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Model`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), FisError> {
        let path = path.as_ref();
        let mut text = self.to_json_string();
        text.push('\n');
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text)
            .map_err(|e| FisError::Model(format!("writing {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            FisError::Model(format!("renaming into {}: {e}", path.display()))
        })
    }

    /// Reads and validates an artifact written by [`FittedModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`FisError::Model`] if the file is unreadable, the JSON is
    /// corrupt, or any schema/shape invariant fails.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, FisError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| FisError::Model(format!("reading {}: {e}", path.as_ref().display())))?;
        Self::from_json_str(text.trim_end_matches('\n'))
    }

    fn from_json(json: &Json) -> Result<Self, FisError> {
        let model_err = |msg: String| FisError::Model(msg);
        let schema = json
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| model_err("missing `schema` marker".into()))?;
        if schema != MODEL_SCHEMA {
            return Err(model_err(format!(
                "unknown schema `{schema}` (expected `{MODEL_SCHEMA}`)"
            )));
        }
        let version = json
            .get("version")
            .and_then(Json::as_usize)
            .ok_or_else(|| model_err("missing `version`".into()))?;
        if version != MODEL_SCHEMA_VERSION
            && version != MODEL_SCHEMA_VERSION_EXTENDED
            && version != MODEL_SCHEMA_VERSION_F32
        {
            return Err(model_err(format!(
                "unsupported artifact version {version} (this build reads \
                 {MODEL_SCHEMA_VERSION}, {MODEL_SCHEMA_VERSION_EXTENDED}, \
                 and {MODEL_SCHEMA_VERSION_F32})"
            )));
        }
        // v3 floats print as shortest-round-trip f32 decimals; narrowing
        // the re-parsed f64 recovers the stored f32 bits exactly (the
        // `Json::F32` reader contract). v1/v2 floats pass through.
        let f32_artifact = version == MODEL_SCHEMA_VERSION_F32;
        let field = |key: &str| {
            json.get(key)
                .ok_or_else(|| model_err(format!("missing field `{key}`")))
        };
        let building = field("building")?
            .as_str()
            .ok_or_else(|| model_err("`building` must be a string".into()))?
            .to_owned();
        let floors = field("floors")?
            .as_usize()
            .filter(|&f| f > 0)
            .ok_or_else(|| model_err("`floors` must be a positive integer".into()))?;

        let gnn = {
            let wide = RfGnn::from_json(field("gnn")?).map_err(|e| model_err(e.to_string()))?;
            if f32_artifact {
                RfGnn::from_parts(
                    wide.config().clone(),
                    narrow_matrix_f32(wide.features()),
                    wide.weights().iter().map(narrow_matrix_f32).collect(),
                )
                .map_err(|e| model_err(e.to_string()))?
            } else {
                wide
            }
        };
        let config = pipeline_config_from_json(field("config")?, gnn.config().clone())?;

        let macs = usize_like_array(field("macs")?, "macs", |v| {
            MacAddr::from_json(v).map_err(|e| model_err(e.to_string()))
        })?;
        let samples = if f32_artifact {
            samples_from_json_f32(field("samples")?, &macs)?
        } else {
            usize_like_array(field("samples")?, "samples", |v| {
                SignalSample::from_json(v).map_err(|e| model_err(e.to_string()))
            })?
        };
        let graph = BipartiteGraph::from_samples(&samples)
            .map_err(|e| model_err(format!("training scans do not rebuild a graph: {e}")))?;
        if graph.macs() != macs.as_slice() {
            return Err(model_err(format!(
                "MAC vocabulary mismatch: artifact lists {} MACs, training scans intern {}",
                macs.len(),
                graph.n_macs()
            )));
        }
        if gnn.features().rows() != graph.n_nodes() {
            return Err(model_err(format!(
                "feature matrix has {} rows, graph has {} nodes",
                gnn.features().rows(),
                graph.n_nodes()
            )));
        }

        let mut references = float_rows(field("references")?, "references")?;
        if f32_artifact {
            references = narrow_rows_f32(&references);
        }
        if references.len() != samples.len() {
            return Err(model_err(format!(
                "{} reference embeddings for {} training scans",
                references.len(),
                samples.len()
            )));
        }
        if references.iter().any(|r| r.len() != gnn.dim()) {
            return Err(model_err(format!(
                "reference dimension disagrees with embedding dim {}",
                gnn.dim()
            )));
        }

        let mut centroids = float_rows(field("centroids")?, "centroids")?;
        if f32_artifact {
            centroids = narrow_rows_f32(&centroids);
        }
        if centroids.len() != floors {
            return Err(model_err(format!(
                "floor-count mismatch: artifact declares {floors} floors but carries {} centroids",
                centroids.len()
            )));
        }
        if centroids.iter().any(|c| c.len() != gnn.dim()) {
            return Err(model_err(format!(
                "centroid dimension disagrees with embedding dim {}",
                gnn.dim()
            )));
        }

        let floor_of_cluster = index_array(field("floor_of_cluster")?, "floor_of_cluster")?;
        let cluster_order = index_array(field("cluster_order")?, "cluster_order")?;
        if floor_of_cluster.len() != floors || cluster_order.len() != floors {
            return Err(model_err(format!(
                "floor-count mismatch: {floors} floors vs {} floor assignments / {} path entries",
                floor_of_cluster.len(),
                cluster_order.len()
            )));
        }
        let mut seen = floor_of_cluster.clone();
        seen.sort_unstable();
        if seen != (0..floors).collect::<Vec<_>>() {
            return Err(model_err(
                "`floor_of_cluster` is not a permutation of the floor indices".into(),
            ));
        }
        for (pos, &cluster) in cluster_order.iter().enumerate() {
            if cluster >= floors || floor_of_cluster[cluster] != pos {
                return Err(model_err(
                    "`cluster_order` is not the inverse of `floor_of_cluster`".into(),
                ));
            }
        }

        let assignment = index_array(field("assignment")?, "assignment")?;
        if assignment.len() != samples.len() {
            return Err(model_err(format!(
                "assignment covers {} scans, corpus has {}",
                assignment.len(),
                samples.len()
            )));
        }
        if assignment.iter().any(|&c| c >= floors) {
            return Err(model_err(
                "assignment references a cluster beyond the floor count".into(),
            ));
        }

        let extension = if version == MODEL_SCHEMA_VERSION_EXTENDED {
            let ext = field("extension")?;
            let efield = |key: &str| {
                ext.get(key)
                    .ok_or_else(|| model_err(format!("missing extension field `{key}`")))
            };
            let ext_samples = usize_like_array(efield("samples")?, "extension.samples", |v| {
                SignalSample::from_json(v).map_err(|e| model_err(e.to_string()))
            })?;
            if ext_samples.is_empty() {
                return Err(model_err(
                    "version 2 artifact carries an empty extension".into(),
                ));
            }
            let ext_assignment = index_array(efield("assignment")?, "extension.assignment")?;
            if ext_assignment.len() != ext_samples.len() {
                return Err(model_err(format!(
                    "extension assignment covers {} scans, extension has {}",
                    ext_assignment.len(),
                    ext_samples.len()
                )));
            }
            if ext_assignment.iter().any(|&c| c >= floors) {
                return Err(model_err(
                    "extension assignment references a cluster beyond the floor count".into(),
                ));
            }
            let ext_references = float_rows(efield("references")?, "extension.references")?;
            Some(build_extended_state(
                &samples,
                &macs,
                &gnn,
                gnn.config().seed,
                ext_samples,
                ext_assignment,
                Some(ext_references),
            )?)
        } else {
            // Versions 1 and 3 are extension-free by definition; a stray
            // `extension` field means the artifact was hand-edited or
            // mislabeled, and silently dropping it would change answers.
            if json.get("extension").is_some() {
                return Err(model_err(format!(
                    "version {version} artifact must not carry an `extension` field"
                )));
            }
            None
        };

        let mac_index = macs.iter().enumerate().map(|(j, &m)| (m, j)).collect();
        let nn = VpTree::build(&references, |i| !samples[i].is_empty());
        Ok(Self {
            building,
            floors,
            config,
            gnn,
            macs,
            samples,
            references,
            centroids,
            floor_of_cluster,
            cluster_order,
            assignment,
            graph,
            mac_index,
            nn,
            extension,
            precision: if f32_artifact {
                Precision::F32
            } else {
                Precision::F64
            },
        })
    }
}

impl ToJson for FittedModel {
    fn to_json(&self) -> Json {
        // Unextended f64 models keep writing version 1 byte-identically;
        // an extension bumps the artifact to version 2 and adds one
        // field; a quantized model writes the compact version 3 (never
        // extended — quantize_f32 rejects extensions).
        let f32_artifact = self.precision == Precision::F32;
        let version = if f32_artifact {
            MODEL_SCHEMA_VERSION_F32
        } else if self.extension.is_some() {
            MODEL_SCHEMA_VERSION_EXTENDED
        } else {
            MODEL_SCHEMA_VERSION
        };
        let gnn = if f32_artifact {
            Json::obj([
                ("config", self.gnn.config().to_json()),
                ("features", fis_gnn::matrix_to_json_f32(self.gnn.features())),
                (
                    "weights",
                    Json::Arr(
                        self.gnn
                            .weights()
                            .iter()
                            .map(fis_gnn::matrix_to_json_f32)
                            .collect(),
                    ),
                ),
            ])
        } else {
            self.gnn.to_json()
        };
        let samples = if f32_artifact {
            Json::Arr(
                self.samples
                    .iter()
                    .map(|s| sample_to_json_f32(s, &self.mac_index))
                    .collect(),
            )
        } else {
            Json::Arr(self.samples.iter().map(|s| s.to_json()).collect())
        };
        let float_rows = if f32_artifact {
            float_rows_to_json_f32
        } else {
            float_rows_to_json
        };
        let mut fields = vec![
            ("schema", Json::Str(MODEL_SCHEMA.to_owned())),
            ("version", Json::Num(version as f64)),
            ("building", Json::Str(self.building.clone())),
            ("floors", Json::Num(self.floors as f64)),
            ("config", pipeline_config_to_json(&self.config)),
            ("gnn", gnn),
            (
                "macs",
                Json::Arr(self.macs.iter().map(|m| m.to_json()).collect()),
            ),
            ("samples", samples),
            ("references", float_rows(&self.references)),
            ("centroids", float_rows(&self.centroids)),
            (
                "floor_of_cluster",
                Json::Arr(
                    self.floor_of_cluster
                        .iter()
                        .map(|&f| Json::Num(f as f64))
                        .collect(),
                ),
            ),
            (
                "cluster_order",
                Json::Arr(
                    self.cluster_order
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
            (
                "assignment",
                Json::Arr(
                    self.assignment
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
        ];
        if let Some(ext) = &self.extension {
            fields.push((
                "extension",
                Json::obj([
                    (
                        "samples",
                        Json::Arr(ext.samples.iter().map(|s| s.to_json()).collect()),
                    ),
                    (
                        "assignment",
                        Json::Arr(
                            ext.assignment
                                .iter()
                                .map(|&c| Json::Num(c as f64))
                                .collect(),
                        ),
                    ),
                    ("references", float_rows_to_json(&ext.references)),
                ]),
            ));
        }
        Json::obj(fields)
    }
}

/// The error both assign paths return when every training scan is empty
/// (identical messages keep the paths bit-identical on failures too).
fn no_reference_error() -> FisError {
    FisError::Inference("model has no non-empty training scan to compare against".into())
}

/// Maps a scan's readings onto the model's MAC nodes with `f(RSS)`
/// weights, dropping MACs outside the vocabulary. Shared with the
/// extended path (`crate::extension`), which passes its own graph/index.
pub(crate) fn known_neighbors(
    graph: &BipartiteGraph,
    mac_index: &HashMap<MacAddr, usize>,
    scan: &SignalSample,
) -> Vec<(usize, f64)> {
    scan.iter()
        .filter_map(|(mac, rssi)| {
            mac_index
                .get(&mac)
                .map(|&j| (graph.mac_node(j), rssi.edge_weight()))
        })
        .collect()
}

/// Derives the per-scan inference seed from the model seed and the scan's
/// readings (FNV-1a over MAC/RSSI bits). Content-only on purpose: the
/// same scan gets the same embedding no matter when, where, or next to
/// which other scans it is served.
pub(crate) fn scan_seed(model_seed: u64, scan: &SignalSample) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: [u8; 8]| {
        for b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    eat(model_seed.to_le_bytes());
    for (mac, rssi) in scan.iter() {
        eat(mac.to_u64().to_le_bytes());
        eat(rssi.dbm().to_bits().to_le_bytes());
    }
    h
}

fn float_rows_to_json(rows: &[Vec<f64>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| Json::Arr(row.iter().map(|&x| Json::Num(x)).collect()))
            .collect(),
    )
}

/// [`float_rows_to_json`] with f32-precision entries (version-3
/// artifacts); entries are already exactly f32-representable, so the
/// narrowing cast is lossless here.
fn float_rows_to_json_f32(rows: &[Vec<f64>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| Json::Arr(row.iter().map(|&x| Json::F32(x as f32)).collect()))
            .collect(),
    )
}

/// Rounds every matrix entry to the nearest `f32`, widened back into a
/// `f64` slot — the quantization primitive behind the version-3 format
/// and the exact-recovery step when reading one.
fn narrow_matrix_f32(m: &Matrix) -> Matrix {
    Matrix::from_vec(
        m.rows(),
        m.cols(),
        m.as_slice().iter().map(|&x| f64::from(x as f32)).collect(),
    )
}

/// [`narrow_matrix_f32`] over a row list (references, centroids).
fn narrow_rows_f32(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    rows.iter()
        .map(|row| row.iter().map(|&x| f64::from(x as f32)).collect())
        .collect()
}

/// Rounds a scan's RSS readings to the nearest `f32`. Safe on the RSSI
/// domain: the `[-119, 0]` dBm bounds are themselves exact `f32` values,
/// and round-to-nearest never crosses an exactly representable bound, so
/// a valid reading stays valid.
fn quantize_sample_f32(s: &SignalSample) -> Result<SignalSample, FisError> {
    let mut builder = SignalSample::builder(s.id().0);
    for (mac, rssi) in s.iter() {
        let q = Rssi::new(f64::from(rssi.dbm() as f32))
            .map_err(|e| FisError::Model(format!("quantizing scan {}: {e}", s.id())))?;
        builder = builder.reading(mac, q);
    }
    Ok(builder.build())
}

/// Version-3 compact scan encoding: readings become `[mac_index, rssi]`
/// pairs indexed into the artifact's `macs` vocabulary, so each MAC
/// string is written once per artifact instead of once per reading.
fn sample_to_json_f32(s: &SignalSample, mac_index: &HashMap<MacAddr, usize>) -> Json {
    Json::obj([
        ("id", Json::Num(f64::from(s.id().0))),
        (
            "readings",
            Json::Arr(
                s.iter()
                    .map(|(mac, rssi)| {
                        let j = mac_index[&mac];
                        Json::Arr(vec![Json::Num(j as f64), Json::F32(rssi.dbm() as f32)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses the version-3 `samples` array written by [`sample_to_json_f32`],
/// resolving vocabulary indices against `macs` (bounds-checked) and
/// narrowing each RSS value back to its stored f32.
fn samples_from_json_f32(value: &Json, macs: &[MacAddr]) -> Result<Vec<SignalSample>, FisError> {
    usize_like_array(value, "samples", |v| {
        let id = v
            .get("id")
            .and_then(Json::as_usize)
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| {
                FisError::Model("sample id must be an integer in 0..=4294967295".into())
            })?;
        let readings = v
            .get("readings")
            .and_then(Json::as_arr)
            .ok_or_else(|| FisError::Model("sample readings must be an array".into()))?;
        let mut builder = SignalSample::builder(id);
        for pair in readings {
            let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                FisError::Model("v3 reading must be a [mac_index, rssi] pair".into())
            })?;
            let mac = pair[0]
                .as_usize()
                .and_then(|j| macs.get(j))
                .copied()
                .ok_or_else(|| {
                    FisError::Model(format!(
                        "reading MAC index out of range for a {}-MAC vocabulary",
                        macs.len()
                    ))
                })?;
            let dbm = pair[1]
                .as_f64()
                .ok_or_else(|| FisError::Model("reading RSSI must be a number".into()))?;
            let rssi = Rssi::new(f64::from(dbm as f32))
                .map_err(|e| FisError::Model(format!("sample {id}: {e}")))?;
            builder = builder.reading(mac, rssi);
        }
        Ok(builder.build())
    })
}

fn float_rows(value: &Json, what: &str) -> Result<Vec<Vec<f64>>, FisError> {
    usize_like_array(value, what, |v| {
        let row = v
            .as_arr()
            .ok_or_else(|| FisError::Model(format!("`{what}` rows must be arrays")))?;
        row.iter()
            .map(|x| {
                x.as_f64()
                    .ok_or_else(|| FisError::Model(format!("`{what}` entries must be numbers")))
            })
            .collect::<Result<Vec<f64>, FisError>>()
    })
}

fn usize_like_array<T>(
    value: &Json,
    what: &str,
    parse: impl Fn(&Json) -> Result<T, FisError>,
) -> Result<Vec<T>, FisError> {
    value
        .as_arr()
        .ok_or_else(|| FisError::Model(format!("`{what}` must be an array")))?
        .iter()
        .map(parse)
        .collect()
}

fn index_array(value: &Json, what: &str) -> Result<Vec<usize>, FisError> {
    usize_like_array(value, what, |v| {
        v.as_usize().ok_or_else(|| {
            FisError::Model(format!("`{what}` entries must be non-negative integers"))
        })
    })
}

fn pipeline_config_to_json(config: &FisOneConfig) -> Json {
    let clustering = match config.clustering {
        ClusteringMethod::Hierarchical => "hierarchical",
        ClusteringMethod::KMeans => "kmeans",
    };
    let similarity = match config.similarity {
        SimilarityMethod::AdaptedJaccard => "adapted-jaccard",
        SimilarityMethod::PlainJaccard => "plain-jaccard",
    };
    let solver = match config.solver {
        TspSolver::Exact => "exact",
        TspSolver::TwoOpt => "two-opt",
    };
    Json::obj([
        ("clustering", Json::Str(clustering.to_owned())),
        ("similarity", Json::Str(similarity.to_owned())),
        ("solver", Json::Str(solver.to_owned())),
    ])
}

/// The GNN config travels inside the `gnn` object (single source of
/// truth); this reassembles the pipeline-level knobs around it.
fn pipeline_config_from_json(
    value: &Json,
    gnn: fis_gnn::RfGnnConfig,
) -> Result<FisOneConfig, FisError> {
    let pick = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| FisError::Model(format!("config `{key}` must be a string")))
    };
    let clustering = match pick("clustering")? {
        "hierarchical" => ClusteringMethod::Hierarchical,
        "kmeans" => ClusteringMethod::KMeans,
        other => {
            return Err(FisError::Model(format!(
                "unknown clustering method `{other}`"
            )))
        }
    };
    let similarity = match pick("similarity")? {
        "adapted-jaccard" => SimilarityMethod::AdaptedJaccard,
        "plain-jaccard" => SimilarityMethod::PlainJaccard,
        other => {
            return Err(FisError::Model(format!(
                "unknown similarity method `{other}`"
            )))
        }
    };
    let solver = match pick("solver")? {
        "exact" => TspSolver::Exact,
        "two-opt" => TspSolver::TwoOpt,
        other => return Err(FisError::Model(format!("unknown tsp solver `{other}`"))),
    };
    Ok(FisOneConfig {
        gnn,
        clustering,
        similarity,
        solver,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_gnn::RfGnnConfig;
    use fis_synth::BuildingConfig;
    use fis_types::Building;

    fn quick_fit(seed: u64) -> (Building, FittedModel) {
        let b = BuildingConfig::new("fit-test", 3)
            .samples_per_floor(20)
            .aps_per_floor(8)
            .atrium_aps(0)
            .seed(100 + seed)
            .generate();
        let mut config = FisOneConfig::default().seed(seed);
        config.gnn = RfGnnConfig::new(8)
            .epochs(3)
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3])
            .seed(seed);
        let anchor = b.bottom_anchor().unwrap();
        let model = FisOne::new(config)
            .fit(b.name(), b.samples(), b.floors(), anchor)
            .unwrap();
        (b, model)
    }

    #[test]
    fn fit_matches_identify_labels() {
        let (b, model) = quick_fit(1);
        let fis = FisOne::new(model.config().clone());
        let pred = fis
            .identify(b.samples(), b.floors(), b.bottom_anchor().unwrap())
            .unwrap();
        assert_eq!(model.training_labels(), pred.labels());
        assert_eq!(model.assignment(), pred.assignment());
        assert_eq!(model.floor_of_cluster(), pred.floor_of_cluster());
    }

    #[test]
    fn assign_reproduces_training_labels_on_training_scans() {
        let (b, model) = quick_fit(2);
        let labels = model.training_labels();
        for (scan, &expected) in b.samples().iter().zip(labels.iter()) {
            assert_eq!(model.assign(scan).unwrap(), expected, "scan {}", scan.id());
        }
    }

    #[test]
    fn assign_matches_linear_reference_on_training_scans() {
        let (b, model) = quick_fit(7);
        for scan in b.samples() {
            assert_eq!(
                model.assign(scan).unwrap(),
                model.assign_linear(scan).unwrap(),
                "index and linear scan disagree on scan {}",
                scan.id()
            );
        }
    }

    #[test]
    fn assign_stream_is_thread_invariant_and_ordered() {
        let (b, model) = quick_fit(3);
        let one = model.assign_stream(b.samples(), 1);
        let four = model.assign_stream(b.samples(), 4);
        assert_eq!(one.len(), b.len());
        for (a, b) in one.iter().zip(four.iter()) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let (_, model) = quick_fit(4);
        let first = model.to_json_string();
        let loaded = FittedModel::from_json_str(&first).unwrap();
        assert_eq!(loaded.to_json_string(), first);
        assert_eq!(loaded.building(), model.building());
        assert_eq!(loaded.floors(), model.floors());
    }

    #[test]
    fn loaded_model_assigns_identically() {
        let (b, model) = quick_fit(5);
        let loaded = FittedModel::from_json_str(&model.to_json_string()).unwrap();
        for scan in b.samples().iter().take(10) {
            assert_eq!(model.assign(scan).unwrap(), loaded.assign(scan).unwrap());
        }
    }

    #[test]
    fn unknown_macs_only_scan_is_typed_error() {
        let (_, model) = quick_fit(6);
        let alien = SignalSample::builder(0)
            .reading(
                MacAddr::from_u64(0xFFFF_FFFF_FF01),
                fis_types::Rssi::new(-50.0).unwrap(),
            )
            .build();
        assert!(matches!(
            model.assign(&alien).unwrap_err(),
            FisError::Inference(_)
        ));
        let empty = SignalSample::builder(1).build();
        assert!(matches!(
            model.assign(&empty).unwrap_err(),
            FisError::Inference(_)
        ));
    }

    /// Clones the first `n` training scans and adds one fresh (never
    /// surveyed) AP reading to each — the minimal churn-shaped input.
    fn churned_scans(b: &Building, n: usize) -> Vec<SignalSample> {
        b.samples()
            .iter()
            .take(n)
            .enumerate()
            .map(|(i, s)| {
                let mut readings: Vec<_> = s.iter().collect();
                readings.push((
                    MacAddr::from_u64(0xAB_0000 + i as u64),
                    fis_types::Rssi::new(-45.0).unwrap(),
                ));
                SignalSample::builder(i as u32).readings(readings).build()
            })
            .collect()
    }

    #[test]
    fn extend_preserves_old_vocab_answers_bit_identically() {
        let (b, mut model) = quick_fit(11);
        let before: Vec<FloorId> = b
            .samples()
            .iter()
            .map(|s| model.assign(s).unwrap())
            .collect();
        let report = model.extend(&churned_scans(&b, 6)).unwrap();
        assert_eq!(report.appended, 6);
        assert_eq!(report.new_macs, 6);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.total_scans, b.len() + 6);
        assert!(model.is_extended());
        let after: Vec<FloorId> = b
            .samples()
            .iter()
            .map(|s| model.assign(s).unwrap())
            .collect();
        assert_eq!(before, after, "old-vocabulary answers must not move");
    }

    #[test]
    fn extended_model_answers_new_mac_scans_and_round_trips() {
        let (b, mut model) = quick_fit(12);
        let ext = churned_scans(&b, 4);
        model.extend(&ext).unwrap();
        // A scan heard only through a brand-new AP is now answerable.
        let new_only = SignalSample::builder(9)
            .reading(
                MacAddr::from_u64(0xAB_0000),
                fis_types::Rssi::new(-50.0).unwrap(),
            )
            .build();
        let floor = model.assign(&new_only).unwrap();
        assert!(floor.index() < model.floors());
        assert_eq!(model.assign(&new_only).unwrap(), floor);
        // Extended artifacts stay byte-identical across save→load→save.
        let first = model.to_json_string();
        let loaded = FittedModel::from_json_str(&first).unwrap();
        assert!(loaded.is_extended());
        assert_eq!(loaded.to_json_string(), first);
        assert_eq!(loaded.assign(&new_only).unwrap(), floor);
        for scan in b.samples().iter().take(10) {
            assert_eq!(model.assign(scan).unwrap(), loaded.assign(scan).unwrap());
        }
    }

    #[test]
    fn repeated_extension_composes_and_keeps_old_answers() {
        let (b, mut model) = quick_fit(13);
        let before: Vec<FloorId> = b
            .samples()
            .iter()
            .map(|s| model.assign(s).unwrap())
            .collect();
        let ext = churned_scans(&b, 8);
        model.extend(&ext[..4]).unwrap();
        let mid = model.assign(&ext[0]).unwrap();
        let report = model.extend(&ext[4..]).unwrap();
        assert_eq!(report.appended, 4);
        assert_eq!(model.extension_len(), 8);
        // The first extension's scans still answer the same after the
        // second extension (their MACs stay in the extended vocabulary).
        assert_eq!(model.assign(&ext[0]).unwrap(), mid);
        let after: Vec<FloorId> = b
            .samples()
            .iter()
            .map(|s| model.assign(s).unwrap())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn extend_rejects_degenerate_inputs_with_typed_errors() {
        let (_, mut model) = quick_fit(14);
        // Empty batch.
        assert!(matches!(model.extend(&[]).unwrap_err(), FisError::Model(_)));
        // A scan that heard nothing.
        let empty = SignalSample::builder(0).build();
        assert!(matches!(
            model.extend(&[empty]).unwrap_err(),
            FisError::Model(_)
        ));
        // Scans sharing no MAC with the base vocabulary.
        let alien = SignalSample::builder(1)
            .reading(
                MacAddr::from_u64(0xFFFF_FFFF_FF02),
                fis_types::Rssi::new(-40.0).unwrap(),
            )
            .build();
        let err = model.extend(std::slice::from_ref(&alien)).unwrap_err();
        assert!(matches!(err, FisError::Model(_)), "{err}");
        assert!(!model.is_extended(), "failed extends must not mutate");
        // Mixed batch: the alien scan is skipped, not fatal.
        let (b2, mut model2) = quick_fit(14);
        let mut batch = churned_scans(&b2, 2);
        batch.push(alien);
        let report = model2.extend(&batch).unwrap();
        assert_eq!(report.appended, 2);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn quantized_model_round_trips_v3_byte_identically() {
        let (_, model) = quick_fit(21);
        let q = model.quantize_f32().unwrap();
        assert_eq!(q.precision(), Precision::F32);
        assert_eq!(model.precision(), Precision::F64);
        let first = q.to_json_string();
        assert!(first.contains("\"version\":3"), "artifact must declare v3");
        let loaded = FittedModel::from_json_str(&first).unwrap();
        assert_eq!(loaded.precision(), Precision::F32);
        assert_eq!(loaded.to_json_string(), first);
        // Quantization is idempotent: re-quantizing moves nothing.
        assert_eq!(q.quantize_f32().unwrap().to_json_string(), first);
    }

    #[test]
    fn quantized_artifact_is_small_and_loads_every_parameter_exactly() {
        let (_, model) = quick_fit(22);
        let f64_bytes = model.to_json_string().len();
        let q = model.quantize_f32().unwrap();
        let f32_bytes = q.to_json_string().len();
        assert!(
            f32_bytes * 10 <= f64_bytes * 6,
            "v3 artifact is {f32_bytes} bytes, f64 is {f64_bytes} — expected <= 60%"
        );
        let loaded = FittedModel::from_json_str(&q.to_json_string()).unwrap();
        assert_eq!(
            loaded.gnn().features().as_slice(),
            q.gnn().features().as_slice()
        );
        assert_eq!(loaded.references(), q.references());
        assert_eq!(loaded.centroids(), q.centroids());
        assert_eq!(loaded.samples(), q.samples());
    }

    #[test]
    fn quantized_model_keeps_training_labels_and_assigns_like_its_loaded_copy() {
        let (b, model) = quick_fit(23);
        let q = model.quantize_f32().unwrap();
        // The f32 artifact's job: identical floor labels on the corpus.
        for (scan, expected) in b.samples().iter().zip(model.training_labels()) {
            assert_eq!(q.assign(scan).unwrap(), expected, "scan {}", scan.id());
        }
        let loaded = FittedModel::from_json_str(&q.to_json_string()).unwrap();
        for scan in b.samples().iter().take(10) {
            assert_eq!(q.assign(scan).unwrap(), loaded.assign(scan).unwrap());
        }
    }

    #[test]
    fn f32_models_refuse_extension_and_extended_models_refuse_quantization() {
        let (b, mut model) = quick_fit(24);
        let mut q = model.quantize_f32().unwrap();
        let err = q.extend(&churned_scans(&b, 2)).unwrap_err();
        assert!(matches!(err, FisError::Model(_)), "{err}");
        assert!(!q.is_extended());
        model.extend(&churned_scans(&b, 2)).unwrap();
        let err = model.quantize_f32().unwrap_err();
        assert!(matches!(err, FisError::Model(_)), "{err}");
    }

    #[test]
    fn save_f32_writes_a_loadable_v3_artifact() {
        let (b, model) = quick_fit(25);
        let dir = std::env::temp_dir().join(format!("fis-f32-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model-f32.json");
        model.save_f32(&path).unwrap();
        let loaded = FittedModel::load(&path).unwrap();
        assert_eq!(loaded.precision(), Precision::F32);
        for (scan, expected) in b.samples().iter().zip(model.training_labels()) {
            assert_eq!(loaded.assign(scan).unwrap(), expected);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn middle_anchor_rejected_by_fit() {
        let b = BuildingConfig::new("mid", 3)
            .samples_per_floor(15)
            .aps_per_floor(6)
            .atrium_aps(0)
            .seed(9)
            .generate();
        let anchor = b.anchor_on(FloorId::from_index(1)).unwrap();
        let err = FisOne::default()
            .fit(b.name(), b.samples(), b.floors(), anchor)
            .unwrap_err();
        assert!(matches!(err, FisError::Anchor(_)));
    }
}
