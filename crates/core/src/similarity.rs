//! Spillover-based similarity between floor clusters (§IV-B, eqs. 1–3).
//!
//! The paper measures how strongly two clusters "hear each other" through
//! the signal spillover effect. Plain Jaccard over detected MAC sets
//! ignores coverage; the *adapted* Jaccard weighs each MAC by its
//! appearance frequency in each cluster:
//!
//! ```text
//! f_share_ij = Σ_k f_ik · f_jk                                  (1)
//! f_diff_ij  = Σ_k ( 1{f_ik=0} f_jk f̄_i + 1{f_jk=0} f_ik f̄_j ) (2)
//! Jⁿ_ij      = f_share_ij / (f_share_ij + f_diff_ij)            (3)
//! ```
//!
//! where `f_ik` counts samples of cluster `i` that detect MAC `k` and
//! `f̄_i` is the mean frequency over the `m` MACs detected in the two
//! clusters.

use std::collections::BTreeMap;

use fis_types::{MacAddr, SignalSample};

/// Which cluster-similarity measure to use (Figure 9(a,b) ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimilarityMethod {
    /// The paper's adapted Jaccard coefficient (default).
    #[default]
    AdaptedJaccard,
    /// Plain Jaccard over detected MAC sets.
    PlainJaccard,
}

/// MAC appearance frequencies for one cluster of signal samples.
///
/// `frequency(mac)` is the number of samples in the cluster that detect
/// `mac` — the paper's `f_ik`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterMacProfile {
    freq: BTreeMap<MacAddr, usize>,
    n_samples: usize,
}

impl ClusterMacProfile {
    /// Builds the profile of one cluster from its member samples.
    pub fn from_members<'a>(members: impl IntoIterator<Item = &'a SignalSample>) -> Self {
        let mut freq = BTreeMap::new();
        let mut n_samples = 0;
        for sample in members {
            n_samples += 1;
            for (mac, _) in sample.iter() {
                *freq.entry(mac).or_insert(0) += 1;
            }
        }
        Self { freq, n_samples }
    }

    /// Builds one profile per cluster from a compact assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != samples.len()` or a label is `>= k`.
    pub fn from_assignment(samples: &[SignalSample], assignment: &[usize], k: usize) -> Vec<Self> {
        assert_eq!(
            samples.len(),
            assignment.len(),
            "assignment length mismatch"
        );
        let mut profiles = vec![Self::default(); k];
        for (sample, &cluster) in samples.iter().zip(assignment.iter()) {
            assert!(cluster < k, "cluster label {cluster} out of range");
            profiles[cluster].n_samples += 1;
            for (mac, _) in sample.iter() {
                *profiles[cluster].freq.entry(mac).or_insert(0) += 1;
            }
        }
        profiles
    }

    /// Appearance frequency `f_ik` of a MAC in this cluster.
    pub fn frequency(&self, mac: MacAddr) -> usize {
        self.freq.get(&mac).copied().unwrap_or(0)
    }

    /// Number of distinct MACs detected in the cluster.
    pub fn n_macs(&self) -> usize {
        self.freq.len()
    }

    /// Number of samples in the cluster.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Iterates over `(mac, frequency)` pairs in MAC order.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, usize)> + '_ {
        self.freq.iter().map(|(&m, &f)| (m, f))
    }
}

/// The adapted Jaccard similarity `Jⁿ_ij` (eq. 3) between two clusters.
///
/// Returns a value in `[0, 1]`; `0` when the clusters share no MAC, and
/// defined as `0` when both clusters are empty.
pub fn adapted_jaccard(a: &ClusterMacProfile, b: &ClusterMacProfile) -> f64 {
    // Union of MACs detected in the two clusters = the paper's m MACs.
    let macs: Vec<MacAddr> = union_macs(a, b);
    let m = macs.len();
    if m == 0 {
        return 0.0;
    }
    let fa_bar: f64 = macs.iter().map(|&k| a.frequency(k) as f64).sum::<f64>() / m as f64;
    let fb_bar: f64 = macs.iter().map(|&k| b.frequency(k) as f64).sum::<f64>() / m as f64;
    let mut share = 0.0;
    let mut diff = 0.0;
    for &k in &macs {
        let fik = a.frequency(k) as f64;
        let fjk = b.frequency(k) as f64;
        share += fik * fjk;
        if fik == 0.0 {
            diff += fjk * fa_bar;
        }
        if fjk == 0.0 {
            diff += fik * fb_bar;
        }
    }
    if share + diff == 0.0 {
        0.0
    } else {
        share / (share + diff)
    }
}

/// Plain Jaccard `|A_i ∩ A_j| / |A_i ∪ A_j|` over detected MAC sets.
///
/// Defined as `0` when both clusters are empty.
pub fn plain_jaccard(a: &ClusterMacProfile, b: &ClusterMacProfile) -> f64 {
    let union = union_macs(a, b);
    if union.is_empty() {
        return 0.0;
    }
    let inter = union
        .iter()
        .filter(|&&k| a.frequency(k) > 0 && b.frequency(k) > 0)
        .count();
    inter as f64 / union.len() as f64
}

/// Similarity dispatch on [`SimilarityMethod`].
pub fn cluster_similarity(
    method: SimilarityMethod,
    a: &ClusterMacProfile,
    b: &ClusterMacProfile,
) -> f64 {
    match method {
        SimilarityMethod::AdaptedJaccard => adapted_jaccard(a, b),
        SimilarityMethod::PlainJaccard => plain_jaccard(a, b),
    }
}

/// Full pairwise similarity matrix over cluster profiles.
///
/// Internally the profiles are flattened onto a global sorted MAC
/// vocabulary as dense frequency rows, so each pair is two streaming
/// passes over flat `f64` slices instead of ~m BTreeMap lookups. The
/// extra vocabulary positions a pair never detects contribute exact
/// `+0.0` terms to non-negative accumulators, so every entry is
/// bit-identical to calling [`cluster_similarity`] on the pair (see
/// `dense_matrix_bit_identical_to_scalar_pairs`).
///
/// The upper triangle is computed row-parallel across the
/// [`fis_parallel`] thread budget (each worker owns whole rows) and
/// mirrored afterwards, so the matrix is exactly symmetric and identical
/// for any thread count.
pub fn similarity_matrix(
    method: SimilarityMethod,
    profiles: &[ClusterMacProfile],
) -> Vec<Vec<f64>> {
    let k = profiles.len();
    let mut vocab: Vec<MacAddr> = profiles
        .iter()
        .flat_map(|p| p.iter().map(|(m, _)| m))
        .collect();
    vocab.sort_unstable();
    vocab.dedup();
    let v = vocab.len();

    // Dense k x V frequency matrix, filled by merge-walking each
    // profile's sorted MAC iterator against the sorted vocabulary.
    let mut freq = vec![0.0f64; k * v];
    for (i, p) in profiles.iter().enumerate() {
        let row = &mut freq[i * v..(i + 1) * v];
        let mut pos = 0;
        for (mac, f) in p.iter() {
            while vocab[pos] != mac {
                pos += 1;
            }
            row[pos] = f as f64;
        }
    }
    // Ascending-vocabulary row sums. Restricted to any pair's MAC union
    // these are the numerators of f̄_i / f̄_j: positions outside the
    // union hold 0.0 and adding +0.0 to a non-negative partial sum is
    // exact.
    let row_sums: Vec<f64> = (0..k)
        .map(|i| freq[i * v..(i + 1) * v].iter().fold(0.0, |acc, &x| acc + x))
        .collect();

    let uppers: Vec<Vec<f64>> = fis_parallel::par_map(profiles, 2, |i, _pi| {
        let fi = &freq[i * v..(i + 1) * v];
        (i + 1..k)
            .map(|j| {
                let fj = &freq[j * v..(j + 1) * v];
                match method {
                    SimilarityMethod::AdaptedJaccard => {
                        adapted_jaccard_dense(fi, fj, row_sums[i], row_sums[j])
                    }
                    SimilarityMethod::PlainJaccard => plain_jaccard_dense(fi, fj),
                }
            })
            .collect()
    });
    let mut m = vec![vec![0.0; k]; k];
    for (i, upper) in uppers.into_iter().enumerate() {
        m[i][i] = 1.0;
        for (offset, s) in upper.into_iter().enumerate() {
            let j = i + 1 + offset;
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

/// [`adapted_jaccard`] over dense frequency rows sharing one global
/// vocabulary. `sum_i` / `sum_j` are the full ascending-order row sums.
///
/// Bit-compatibility with the scalar path: positions outside the pair's
/// MAC union have `f_ik == f_jk == 0.0`, contributing `+0.0` to `share`
/// and (through both zero-branches) `+0.0` to `diff`; both accumulators
/// are non-negative, so those terms change no bits, and in-union terms
/// arrive in the same ascending MAC order as `union_macs`.
fn adapted_jaccard_dense(fi: &[f64], fj: &[f64], sum_i: f64, sum_j: f64) -> f64 {
    let mut m = 0usize;
    for (&a, &b) in fi.iter().zip(fj.iter()) {
        if a > 0.0 || b > 0.0 {
            m += 1;
        }
    }
    if m == 0 {
        return 0.0;
    }
    let fa_bar = sum_i / m as f64;
    let fb_bar = sum_j / m as f64;
    let mut share = 0.0;
    let mut diff = 0.0;
    for (&fik, &fjk) in fi.iter().zip(fj.iter()) {
        share += fik * fjk;
        if fik == 0.0 {
            diff += fjk * fa_bar;
        }
        if fjk == 0.0 {
            diff += fik * fb_bar;
        }
    }
    if share + diff == 0.0 {
        0.0
    } else {
        share / (share + diff)
    }
}

/// [`plain_jaccard`] over dense frequency rows (integer set counts, so
/// trivially identical to the scalar path).
fn plain_jaccard_dense(fi: &[f64], fj: &[f64]) -> f64 {
    let mut inter = 0usize;
    let mut union = 0usize;
    for (&a, &b) in fi.iter().zip(fj.iter()) {
        let ia = a > 0.0;
        let ib = b > 0.0;
        if ia && ib {
            inter += 1;
        }
        if ia || ib {
            union += 1;
        }
    }
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

fn union_macs(a: &ClusterMacProfile, b: &ClusterMacProfile) -> Vec<MacAddr> {
    let mut macs: Vec<MacAddr> = a.iter().map(|(m, _)| m).collect();
    macs.extend(b.iter().map(|(m, _)| m));
    macs.sort_unstable();
    macs.dedup();
    macs
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_types::Rssi;

    fn sample(id: u32, macs: &[u64]) -> SignalSample {
        SignalSample::builder(id)
            .readings(
                macs.iter()
                    .map(|&m| (MacAddr::from_u64(m), Rssi::new(-50.0).unwrap())),
            )
            .build()
    }

    fn profile(samples: &[SignalSample]) -> ClusterMacProfile {
        ClusterMacProfile::from_members(samples.iter())
    }

    #[test]
    fn profile_counts_frequencies() {
        let p = profile(&[sample(0, &[1, 2]), sample(1, &[1])]);
        assert_eq!(p.frequency(MacAddr::from_u64(1)), 2);
        assert_eq!(p.frequency(MacAddr::from_u64(2)), 1);
        assert_eq!(p.frequency(MacAddr::from_u64(3)), 0);
        assert_eq!(p.n_macs(), 2);
        assert_eq!(p.n_samples(), 2);
    }

    #[test]
    fn from_assignment_groups_correctly() {
        let samples = vec![sample(0, &[1]), sample(1, &[2]), sample(2, &[1])];
        let profiles = ClusterMacProfile::from_assignment(&samples, &[0, 1, 0], 2);
        assert_eq!(profiles[0].frequency(MacAddr::from_u64(1)), 2);
        assert_eq!(profiles[1].frequency(MacAddr::from_u64(2)), 1);
    }

    #[test]
    fn identical_clusters_score_one() {
        let a = profile(&[sample(0, &[1, 2, 3])]);
        let b = profile(&[sample(0, &[1, 2, 3])]);
        assert!((adapted_jaccard(&a, &b) - 1.0).abs() < 1e-12);
        assert!((plain_jaccard(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_clusters_score_zero() {
        let a = profile(&[sample(0, &[1, 2])]);
        let b = profile(&[sample(0, &[3, 4])]);
        assert_eq!(adapted_jaccard(&a, &b), 0.0);
        assert_eq!(plain_jaccard(&a, &b), 0.0);
    }

    #[test]
    fn empty_clusters_score_zero() {
        let e = ClusterMacProfile::default();
        assert_eq!(adapted_jaccard(&e, &e), 0.0);
        assert_eq!(plain_jaccard(&e, &e), 0.0);
    }

    #[test]
    fn adapted_jaccard_in_unit_interval_and_symmetric() {
        let a = profile(&[sample(0, &[1, 2]), sample(1, &[2, 3])]);
        let b = profile(&[sample(0, &[2, 4]), sample(1, &[4, 5])]);
        let ab = adapted_jaccard(&a, &b);
        let ba = adapted_jaccard(&b, &a);
        assert!((0.0..=1.0).contains(&ab));
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn coverage_matters_for_adapted_but_not_plain() {
        // Shared MAC 1 heard by many samples in both clusters versus by one
        // sample each: plain Jaccard identical, adapted higher for wide
        // coverage.
        let wide_a = profile(&(0..10).map(|i| sample(i, &[1, 2])).collect::<Vec<_>>());
        let wide_b = profile(&(0..10).map(|i| sample(i, &[1, 3])).collect::<Vec<_>>());
        let narrow_a = profile(&{
            let mut v = vec![sample(0, &[1, 2])];
            v.extend((1..10).map(|i| sample(i, &[2])));
            v
        });
        let narrow_b = profile(&{
            let mut v = vec![sample(0, &[1, 3])];
            v.extend((1..10).map(|i| sample(i, &[3])));
            v
        });
        assert_eq!(
            plain_jaccard(&wide_a, &wide_b),
            plain_jaccard(&narrow_a, &narrow_b)
        );
        assert!(adapted_jaccard(&wide_a, &wide_b) > adapted_jaccard(&narrow_a, &narrow_b));
    }

    #[test]
    fn similarity_matrix_is_symmetric_with_unit_diagonal() {
        let profiles = vec![
            profile(&[sample(0, &[1, 2])]),
            profile(&[sample(0, &[2, 3])]),
            profile(&[sample(0, &[3, 4])]),
        ];
        let m = similarity_matrix(SimilarityMethod::AdaptedJaccard, &profiles);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
        // Adjacent overlap beats no overlap.
        assert!(m[0][1] > m[0][2]);
    }

    #[test]
    fn dense_matrix_bit_identical_to_scalar_pairs() {
        // Overlapping, disjoint, nested, and empty profiles: the dense
        // vocabulary path must reproduce the per-pair scalar functions
        // bit-for-bit, not merely approximately.
        let profiles = vec![
            profile(&[sample(0, &[1, 2, 5]), sample(1, &[2, 3])]),
            profile(&[sample(0, &[2, 4]), sample(1, &[4, 5]), sample(2, &[4])]),
            profile(&[sample(0, &[7, 8])]),
            ClusterMacProfile::default(),
            profile(&[sample(0, &[1, 2, 3, 4, 5, 7, 8])]),
        ];
        for method in [
            SimilarityMethod::AdaptedJaccard,
            SimilarityMethod::PlainJaccard,
        ] {
            let m = similarity_matrix(method, &profiles);
            for (i, pi) in profiles.iter().enumerate() {
                for (j, pj) in profiles.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let scalar = cluster_similarity(method, pi, pj);
                    assert_eq!(
                        m[i][j].to_bits(),
                        scalar.to_bits(),
                        "{method:?} entry ({i},{j}): dense {} vs scalar {scalar}",
                        m[i][j]
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_assignment_validates_labels() {
        let samples = vec![sample(0, &[1])];
        let _ = ClusterMacProfile::from_assignment(&samples, &[3], 2);
    }
}
